"""Ablations of design decisions DESIGN.md calls out.

* Flush-back-to-origin (Section 4.3): redirecting flushes to a random
  partition instead of the page's origin destroys the locality the
  gatherer built, and the cleaning cost rises back toward greedy
  levels.
* Write-buffer coalescing (Section 3.2): shrinking the SRAM buffer
  reduces hit rates on hot pages and increases Flash flush traffic.
"""

import random

import pytest

from repro.analysis import banner, format_table
from repro.cleaning import (GreedyPolicy, HybridPolicy, PolicySimulator,
                            measure_cleaning_cost)
from repro.workloads import BimodalWorkload

SEGMENTS = 64
PAGES = 128
LOCALITY = "10/90"


class ScatterHybridPolicy(HybridPolicy):
    """Hybrid with flush-back disabled: flushes scatter randomly."""

    name = "hybrid-scatter"

    def __init__(self, partition_segments, seed=13):
        super().__init__(partition_segments)
        self._scatter_rng = random.Random(seed)

    def flush(self, logical_page, origin):
        fake_origin = self._scatter_rng.randrange(
            self._store.num_positions)
        return super().flush(logical_page, fake_origin)


def run_flush_back_ablation():
    kwargs = dict(num_segments=SEGMENTS, pages_per_segment=PAGES,
                  turnovers=3, warmup_turnovers=8)
    faithful = measure_cleaning_cost(HybridPolicy(8), LOCALITY, **kwargs)
    scattered = measure_cleaning_cost(ScatterHybridPolicy(8), LOCALITY,
                                      **kwargs)
    greedy = measure_cleaning_cost(GreedyPolicy(), LOCALITY, **kwargs)
    return faithful, scattered, greedy


def run_buffer_ablation():
    results = {}
    for buffer_pages in (0, 32, 128, 512):
        simulator = PolicySimulator(HybridPolicy(8),
                                    num_segments=SEGMENTS,
                                    pages_per_segment=PAGES,
                                    utilization=0.8,
                                    buffer_pages=buffer_pages)
        live = simulator.store.num_logical_pages
        workload = BimodalWorkload(live, 0.02, 0.9, seed=21)
        result = simulator.run(workload, live * 2,
                               warmup_writes=live * 2)
        results[buffer_pages] = (result.buffer_hit_rate,
                                 result.flushes / result.host_writes)
    return results


def run_buffer_policy_ablation():
    """FIFO vs LRU eviction (Section 3.2's rejected complexity)."""
    results = {}
    for buffer_policy in ("fifo", "lru"):
        simulator = PolicySimulator(HybridPolicy(8),
                                    num_segments=SEGMENTS,
                                    pages_per_segment=PAGES,
                                    utilization=0.8, buffer_pages=128,
                                    buffer_policy=buffer_policy)
        live = simulator.store.num_logical_pages
        workload = BimodalWorkload(live, 0.02, 0.9, seed=21)
        result = simulator.run(workload, live * 2,
                               warmup_writes=live * 2)
        results[buffer_policy] = (result.buffer_hit_rate,
                                  result.flushes / result.host_writes)
    return results


def run_ablations():
    faithful, scattered, greedy = run_flush_back_ablation()
    buffers = run_buffer_ablation()
    buffer_policies = run_buffer_policy_ablation()
    flush_rows = [
        ["hybrid (flush back to origin)", f"{faithful.cleaning_cost:.2f}"],
        ["hybrid (flushes scattered)", f"{scattered.cleaning_cost:.2f}"],
        ["greedy (no origin tracking)", f"{greedy.cleaning_cost:.2f}"],
    ]
    buffer_rows = [[pages, f"{hit:.1%}", f"{flush_ratio:.2f}"]
                   for pages, (hit, flush_ratio) in buffers.items()]
    report = "\n".join([
        banner(f"Ablation: flush-back-to-origin ({LOCALITY} workload)"),
        format_table(["Variant", "Cleaning cost"], flush_rows),
        "",
        "Section 4.3: 'Care must be taken to prevent flushes from the",
        "SRAM write buffer from destroying locality.'",
        "",
        banner("Ablation: SRAM write-buffer coalescing (2/90 workload)"),
        format_table(["Buffer pages", "Write hit rate",
                      "Flushes per host write"], buffer_rows),
        "",
        "Section 3.2: retaining pages in SRAM reduces Flash traffic",
        "because repeated writes need no extra copy-on-write.",
        "",
        banner("Ablation: FIFO vs LRU buffer eviction (128-page "
               "buffer)"),
        format_table(
            ["Eviction", "Write hit rate", "Flushes per host write"],
            [[name, f"{hit:.1%}", f"{flush_ratio:.2f}"]
             for name, (hit, flush_ratio) in buffer_policies.items()]),
        "",
        "Section 3.2 rejected complex buffer management as hardware-",
        "hostile; the gap FIFO gives up to LRU is the price of that",
        "simplicity.",
    ])
    return (faithful, scattered, greedy, buffers,
            buffer_policies), report


def test_ablations(benchmark, record):
    (faithful, scattered, greedy, buffers, buffer_policies), report = \
        benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    record("ablations", report)
    # Scattering flushes destroys the gathered locality.
    assert scattered.cleaning_cost > faithful.cleaning_cost + 0.5
    # A bigger buffer absorbs more hot writes and flushes less.
    assert buffers[512][0] > buffers[32][0]
    assert buffers[512][1] < buffers[0][1]
    # LRU helps but only modestly: FIFO keeps most of the benefit, the
    # paper's hardware-simplicity argument.
    fifo_hit = buffer_policies["fifo"][0]
    lru_hit = buffer_policies["lru"][0]
    assert lru_hit >= fifo_hit
    assert fifo_hit > lru_hit - 0.15
