"""Validation — the closed-form capacity model vs the simulator.

The analytic model of ``repro.sim.analytic`` predicts the saturation
point, the cleaning cost, and the Section 5.3 time breakdown from the
configuration alone.  This benchmark checks it against measured
simulation at several utilizations: a reproduction is much more
trustworthy when an independent back-of-the-envelope lands on the same
numbers the event-driven path produces.
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig
from repro.sim import CapacityModel, TransactionProfile, simulate_tpca
from conftest import FULL_SCALE

UTILIZATIONS = [0.5, 0.8, 0.9]
PROBE_RATE = 80_000  # beyond saturation everywhere
DURATION = 0.2 if FULL_SCALE else 0.1


def model_for(utilization):
    config = EnvyConfig.scaled(num_segments=128, pages_per_segment=1024,
                               max_utilization=utilization)
    return CapacityModel(config, TransactionProfile(reads=82))


def run_validation():
    rows = []
    pairs = {}
    for utilization in UTILIZATIONS:
        predicted = model_for(utilization).saturation_tps()
        measured = simulate_tpca(PROBE_RATE, duration_s=DURATION,
                                 warmup_s=0.03, utilization=utilization,
                                 prewarm_turnovers=8).throughput_tps
        pairs[utilization] = (predicted, measured)
        rows.append([f"{utilization:.0%}", round(predicted),
                     round(measured),
                     f"{measured / predicted:.2f}x"])
    model = model_for(0.8)
    breakdown = model.time_breakdown_at_saturation()
    report = "\n".join([
        banner("Validation: analytic capacity model vs timed simulator"),
        format_table(["Utilization", "Predicted sat. TPS",
                      "Measured sat. TPS", "Ratio"], rows),
        "",
        f"model cleaning cost at 80%: {model.cleaning_cost:.2f} "
        f"(paper: 1.97)",
        "model breakdown at saturation: "
        + ", ".join(f"{k} {v:.0%}" for k, v in breakdown.items()),
        f"model SRAM-only speedup bound: "
        f"{model.sram_only_speedup():.2f}x (paper: ~2.5x)",
    ])
    return pairs, model, report


def test_analytic_model_validation(benchmark, record):
    pairs, model, report = benchmark.pedantic(run_validation, rounds=1,
                                              iterations=1)
    record("analytic_model", report)
    # Prediction within 30% of measurement at every utilization.
    for utilization, (predicted, measured) in pairs.items():
        assert measured == pytest.approx(predicted, rel=0.30), utilization
    # The model's internals land near the paper's reported values.
    assert model.cleaning_cost == pytest.approx(1.97, abs=0.6)
    assert 1.5 <= model.sram_only_speedup() <= 3.0
    breakdown = model.time_breakdown_at_saturation()
    assert 0.35 <= breakdown["read"] <= 0.6
    assert 0.15 <= breakdown["clean"] <= 0.4