#!/usr/bin/env python
"""Adversarial multi-tenancy benchmark entry point
(see ``repro.service.bench_attack``).

Runs each wear-attack family (targeted wear-out, cleaning-pressure
amplification, buffer squatting) through baseline -> attack ->
mitigated phases, gates detection accuracy (attacker flagged, zero
honest false positives) and the mitigation SLOs (honest p99 <= 2x and
projected lifetime >= 0.5x the no-attack baseline), and emits
``BENCH_ATTACK.json``:

    PYTHONPATH=src python benchmarks/bench_attack.py            # full
    PYTHONPATH=src python benchmarks/bench_attack.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_attack.py --smoke \\
        --output BENCH_ATTACK.current.json \\
        --compare BENCH_ATTACK.smoke.json

Like ``bench_service.py`` this is a plain script, not a pytest
benchmark: CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.bench_attack import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
