#!/usr/bin/env python
"""Backend-matrix benchmark entry point (see ``repro.backends.bench``).

Records one seeded TPC-A run, replays it against every registered
storage backend (simulated Flash, RAM-disk block device, file-backed
persistent store, ONFI NAND model) and gates on all of them producing
one logical page-state digest; checks ``backend="flash"`` is
bit-identical (digest *and* simulated ns) to the direct-construction
default; times trace replay through the default backend as the gated
wall number.  Emits ``BENCH_BACKENDS.json``:

    PYTHONPATH=src python benchmarks/bench_backends.py           # full
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke \\
        --output BENCH_BACKENDS.current.json \\
        --compare BENCH_BACKENDS.smoke.json --max-regression 0.25

Like ``bench_perf.py`` this is a plain script, not a pytest benchmark:
CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.backends.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
