"""Extension — which cleaning policy should the TPC-A system run?

The paper fixes the hybrid policy (partition 16) for its Section 5
simulations.  This experiment re-runs the saturation probe under each
policy.  TPC-A's flush stream is nearly uniform over the account pages
(the truly hot teller/branch pages coalesce in the SRAM buffer and
rarely flush), so by Figure 8's logic greedy/FIFO should be competitive
here and hybrid's advantage modest — evidence that the paper's choice is
about robustness across workloads, not about TPC-A specifically.
"""

import pytest

from repro.analysis import banner, format_table
from repro.sim import simulate_tpca
from conftest import FULL_SCALE

POLICIES = ["greedy", "fifo", "locality", "hybrid"]
PROBE_RATE = 60_000
DURATION = 0.2 if FULL_SCALE else 0.1


def run_experiment():
    results = {}
    for policy in POLICIES:
        stats = simulate_tpca(PROBE_RATE, duration_s=DURATION,
                              warmup_s=0.03, policy=policy,
                              prewarm_turnovers=8)
        results[policy] = stats
    rows = [[policy, round(stats.throughput_tps),
             f"{stats.cleaning_cost:.2f}",
             f"{stats.write_latency.mean_ns:.0f}"]
            for policy, stats in results.items()]
    report = "\n".join([
        banner("Extension: TPC-A saturation by cleaning policy "
               "(80% utilization)"),
        format_table(["Policy", "Peak TPS", "Cleaning cost",
                      "Write ns"], rows),
        "",
        "TPC-A's flush stream is nearly uniform (hot records coalesce",
        "in SRAM), so greedy/FIFO are competitive here; hybrid's case",
        "is robustness across localities (Figure 8), not this workload.",
    ])
    return results, report


def test_tpca_policy_choice(benchmark, record):
    results, report = benchmark.pedantic(run_experiment, rounds=1,
                                         iterations=1)
    record("ext_tpca_policies", report)
    peaks = {policy: stats.throughput_tps
             for policy, stats in results.items()}
    # Every policy sustains a healthy fraction of the best.
    best = max(peaks.values())
    for policy in ("greedy", "fifo", "hybrid"):
        assert peaks[policy] > best * 0.75, policy
    # Uniform-ish traffic: greedy at least matches locality gathering.
    assert peaks["greedy"] >= peaks["locality"] * 0.95
    # All policies keep the saturation point in the paper's band.
    for policy, stats in results.items():
        assert 20_000 <= stats.throughput_tps <= 60_000, policy
