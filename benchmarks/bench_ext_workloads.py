"""Extension experiments — cleaning cost beyond the paper's workloads.

The paper's locality axis is bimodal with a spatially contiguous hot
set.  These experiments probe the boundaries of the design:

* **Zipf skew, clustered** — hot ranks contiguous in the address space
  (like the paper's hot set): the Figure 8 ordering should carry over,
  with hybrid's advantage growing smoothly as skew rises.
* **Zipf skew, scattered** — hot pages randomly spread across the
  address space.  Segment-granularity statistics cannot see per-page
  hotness (the paper rejects per-page age tracking as "substantial
  storage overhead"), so the gatherer has nothing to gather and hybrid
  degrades to roughly greedy.  A real limitation, shared with the
  original design.
* **Sequential sweep** — greedy's best case (whole segments die
  together) and flush-back-to-origin's worst: returning each page to a
  segment that is mostly still live forces expensive cleans.  Locality
  preservation buys nothing when there is no reuse locality.
"""

import pytest

from repro.analysis import banner, format_table
from repro.cleaning import (GreedyPolicy, HybridPolicy,
                            LocalityGatheringPolicy, PolicySimulator)
from repro.workloads import SequentialWorkload
from repro.workloads.zipf import ZipfWorkload

SEGMENTS = 64
PAGES = 128
SKEWS = [0.0, 0.8, 1.2]


def live_pages():
    return int(SEGMENTS * PAGES * 0.8)


def cost_under(policy, workload, turnovers=3, warmup=8):
    simulator = PolicySimulator(policy, num_segments=SEGMENTS,
                                pages_per_segment=PAGES, utilization=0.8,
                                buffer_pages=0)
    result = simulator.run(workload, live_pages() * turnovers,
                           warmup_writes=live_pages() * warmup)
    return result.cleaning_cost


def run_zipf(scatter):
    rows = []
    for skew in SKEWS:
        greedy = cost_under(
            GreedyPolicy(),
            ZipfWorkload(live_pages(), skew, seed=1, scatter=scatter))
        hybrid = cost_under(
            HybridPolicy(8),
            ZipfWorkload(live_pages(), skew, seed=1, scatter=scatter))
        rows.append([f"{skew:g}", greedy, hybrid])
    return rows


def run_sequential():
    return [
        ["greedy", cost_under(GreedyPolicy(),
                              SequentialWorkload(live_pages()))],
        ["locality gathering",
         cost_under(LocalityGatheringPolicy(),
                    SequentialWorkload(live_pages()))],
        ["hybrid(8)", cost_under(HybridPolicy(8),
                                 SequentialWorkload(live_pages()))],
    ]


def run_experiment():
    clustered = run_zipf(scatter=False)
    scattered = run_zipf(scatter=True)
    sequential = run_sequential()
    report = "\n".join([
        banner("Extension: Zipf skew with a CLUSTERED hot set "
               f"({SEGMENTS} segments x {PAGES} pages)"),
        format_table(["Skew s", "Greedy", "Hybrid(8)"], clustered),
        "",
        banner("Extension: Zipf skew with a SCATTERED hot set"),
        format_table(["Skew s", "Greedy", "Hybrid(8)"], scattered),
        "",
        banner("Extension: sequential sweep"),
        format_table(["Policy", "Cleaning cost"], sequential),
        "",
        "Findings: with spatial clustering the Figure 8 ordering",
        "carries over to Zipf; with hot pages scattered, segment-level",
        "statistics cannot find them and hybrid ~= greedy (the paper's",
        "design explicitly declines per-page hotness tracking).",
        "Sequential sweeps favour greedy's fresh-segment placement;",
        "flush-back-to-origin pays for locality that does not exist.",
    ])
    return clustered, scattered, sequential, report


def test_ext_workloads(benchmark, record):
    clustered, scattered, sequential, report = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    record("ext_workloads", report)
    cl = {row[0]: (row[1], row[2]) for row in clustered}
    sc = {row[0]: (row[1], row[2]) for row in scattered}
    # Clustered: hybrid's advantage appears as skew grows.
    assert cl["1.2"][1] < cl["1.2"][0] - 0.4
    assert cl["1.2"][1] < cl["0"][1]
    # Scattered: no page-level knowledge -> hybrid roughly greedy.
    assert abs(sc["1.2"][1] - sc["1.2"][0]) < 1.0
    # Sequential: greedy cleans for free; origin-preserving policies pay.
    costs = dict((name, value) for name, value in sequential)
    assert costs["greedy"] < 0.3
    assert costs["locality gathering"] > 1.5
    assert costs["hybrid(8)"] > 1.0
