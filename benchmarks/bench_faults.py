"""Fault tolerance — TPC-A under injected device faults.

Not a paper figure: the paper's device model is benign (Section 2).
This experiment runs the Section 5.2 TPC-A database on a data-bearing
controller while the fault injector afflicts the array with transient
program/erase failures, read-path bit flips, and wear-correlated grown
bad blocks, and measures what the defences (ECC, bounded retry,
bad-block retirement) cost: transaction throughput and the controller
time breakdown as the fault rate escalates from none to abusive.

The zero-fault column doubles as a regression guard — it must match a
system built without any fault machinery, byte for byte.
"""

import dataclasses

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, EnvySystem, TpcParams
from repro.db import TpcaDatabase
from repro.faults import FaultPlan
from conftest import FULL_SCALE

ACCOUNTS = 4000 if FULL_SCALE else 1500
TRANSACTIONS = 6000 if FULL_SCALE else 2000
SEED = 29

#: Escalating fault environments.  "acceptance" exercises every defence
#: within this short run (~4.6k programs, ~18 erases, ~29k page reads):
#: rates are set so transient program/erase failures, correctable read
#: flips and at least two grown bad blocks all actually occur.  The
#: realistic late-life rates are the "light" preset.
PLANS = [
    ("none", None),
    ("acceptance", FaultPlan(seed=SEED, transient_program_rate=2e-3,
                             read_flip_rate=1e-7,
                             transient_erase_rate=0.15,
                             grown_bad_rate=0.3)),
    ("light", FaultPlan.light(seed=SEED)),
    ("harsh", dataclasses.replace(FaultPlan.harsh(seed=SEED),
                                  permanent_erase_rate=5e-4,
                                  grown_bad_rate=1e-3)),
]


def run_tpca_under(plan):
    config = EnvyConfig.small(num_segments=16, pages_per_segment=256,
                              fault_plan=plan, reserve_segments=6)
    system = EnvySystem(config)
    db = TpcaDatabase(system, TpcParams().scaled_to_accounts(ACCOUNTS))
    db.load(initial_balance=100)
    system.metrics.reset()
    system.array.fault_stats.reset()
    db.run(TRANSACTIONS, seed=SEED)
    system.drain()
    db.check_consistency()
    system.check_consistency()
    busy_ns = sum(system.metrics.busy_ns.values())
    return {
        "report": system.health_report(),
        "tps": TRANSACTIONS / (busy_ns / 1e9) if busy_ns else 0.0,
        "retry_ns": system.metrics.busy_ns.get("retry", 0),
        "busy_ns": busy_ns,
        "metrics": system.metrics,
    }


def run_experiment():
    results = {name: run_tpca_under(plan) for name, plan in PLANS}
    rows = []
    for name, result in results.items():
        report = result["report"]
        rows.append([
            name, f"{result['tps']:,.0f}",
            report["ecc_corrected_reads"],
            report["program_retries"] + report["erase_retries"],
            report["bad_blocks_retired"],
            report["ecc_uncorrectable_reads"] +
            report["silent_corrupt_reads"],
            f"{result['retry_ns'] / max(1, result['busy_ns']):.2%}",
        ])
    text = "\n".join([
        banner(f"TPC-A under device faults ({TRANSACTIONS:,} "
               f"transactions, {ACCOUNTS:,} accounts)"),
        format_table(["Fault plan", "eff. TPS", "ECC fixes",
                      "Retries", "Retired", "Data errors",
                      "Retry time"], rows),
        "",
        "Every run ends with a consistent database: ECC absorbs the",
        "read flips, bounded retry absorbs the transients, and grown",
        "bad blocks are retired onto the reserve pool with no data",
        "motion (retirement happens at erase time, when the segment",
        "is empty).",
    ])
    return results, text


def test_faults_tpca(benchmark, record):
    results, text = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    record("faults_tpca", text)
    acceptance = results["acceptance"]["report"]
    # The acceptance scenario: faults occurred and were all absorbed.
    assert acceptance["ecc_corrected_reads"] > 0
    assert acceptance["program_retries"] + acceptance["erase_retries"] > 0
    assert acceptance["bad_blocks_retired"] >= 2
    assert acceptance["ecc_uncorrectable_reads"] == 0
    assert acceptance["silent_corrupt_reads"] == 0
    assert acceptance["program_retry_exhausted"] == 0
    # Degradation is graceful: even the harsh plan loses little
    # throughput to retries at these rates.
    assert results["harsh"]["tps"] > 0.5 * results["none"]["tps"]


def test_faults_deterministic_replay(record):
    """Same seed, same workload -> identical health reports."""
    plan = dict(PLANS)["acceptance"]
    first = run_tpca_under(plan)["report"]
    second = run_tpca_under(plan)["report"]
    assert first == second
    record("faults_replay",
           banner("Fault-schedule determinism") +
           "\ntwo identical runs, identical health reports: " +
           f"{first['ecc_corrected_reads']} ECC fixes, "
           f"{first['program_retries']}+{first['erase_retries']} "
           f"retries, {first['bad_blocks_retired']} retired")


def test_zero_plan_is_bit_identical(record):
    """A None plan and an all-zero plan must behave like the seed."""
    none_metrics = run_tpca_under(None)["metrics"]
    zero_metrics = run_tpca_under(FaultPlan.none())["metrics"]
    assert none_metrics.busy_ns == zero_metrics.busy_ns
    assert none_metrics.read_latency.total_ns == \
        zero_metrics.read_latency.total_ns
    assert none_metrics.write_latency.total_ns == \
        zero_metrics.write_latency.total_ns
    record("faults_zero_parity",
           banner("Zero-fault parity") +
           "\nall-zero plan reproduces the fault-free time breakdown "
           "exactly")
