"""Figure 1 — Feature Comparison of Storage Technologies.

Regenerates the technology table and the three dollar claims derived
from it: the ~$70,000 eNVy system (Section 5.1), the ~$250,000 pure-SRAM
alternative, and the ~10% page-table overhead (Section 3.3).
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, system_cost
from repro.core.costmodel import TECHNOLOGIES


def build_report():
    rows = [TECHNOLOGIES[key].row
            for key in ("disk", "dram", "sram", "flash")]
    table = format_table(
        ["Technology", "Read", "Write", "Cost/MiB", "Retention/GiB"], rows)
    cost = system_cost(EnvyConfig.paper())
    lines = [
        banner("Figure 1: feature comparison of storage technologies"),
        table,
        "",
        f"2 GB eNVy system cost:   ${cost.total_dollars:,.0f}  "
        f"(paper: ~$70,000)",
        f"  flash array            ${cost.flash_dollars:,.0f}",
        f"  SRAM write buffer      ${cost.write_buffer_dollars:,.0f}",
        f"  SRAM page table        ${cost.page_table_dollars:,.0f}  "
        f"({cost.page_table_overhead:.1%} of flash; paper: ~10%)",
        f"pure SRAM alternative:   ${cost.sram_only_alternative():,.0f}  "
        f"(paper: ~$250,000)",
        f"eNVy saving factor:      {cost.savings_vs_sram:.2f}x  "
        f"(paper: ~4x / 'near 400% reduction')",
    ]
    return cost, "\n".join(lines)


def test_fig01_technology_table(benchmark, record):
    cost, report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    record("fig01_technology", report)
    assert cost.total_dollars == pytest.approx(70_000, rel=0.05)
    assert cost.sram_only_alternative() == pytest.approx(250_000, rel=0.05)
    assert cost.page_table_overhead == pytest.approx(0.10, abs=0.02)
