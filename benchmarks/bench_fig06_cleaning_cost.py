"""Figure 6 — Cleaning Costs for Various Flash Utilizations.

The analytic curve u/(1-u), validated against simulation: the "naive
cleaning scheme that keeps each segment at 80% utilization" (locality
gathering under uniform access) must measure a cleaning cost of ~4.
"""

import pytest

from repro.analysis import banner, format_table
from repro.cleaning import cleaning_cost
from repro.perf import run_sweep

UTILIZATIONS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
#: Utilizations where the naive fixed-utilization scheme is simulated.
SIMULATED = [0.5, 0.7, 0.8]


def run_figure():
    points = [dict(policy="locality", locality="50/50", num_segments=64,
                   pages_per_segment=128, utilization=utilization,
                   turnovers=3, warmup_turnovers=4)
              for utilization in SIMULATED]
    results = run_sweep("repro.perf.points:cleaning_cost_point", points)
    simulated = {utilization: result.cleaning_cost
                 for utilization, result in zip(SIMULATED, results)}
    rows = []
    for utilization in UTILIZATIONS:
        measured = simulated.get(utilization)
        rows.append([f"{utilization:.0%}", cleaning_cost(utilization),
                     f"{measured:.2f}" if measured is not None else "-"])
    report = "\n".join([
        banner("Figure 6: cleaning cost vs Flash utilization"),
        format_table(["Utilization", "Analytic u/(1-u)",
                      "Simulated (naive scheme)"], rows),
        "",
        "Paper: cost 4 at 80%; 'After about 80% utilization, the",
        "cleaning cost quickly reaches unreasonable levels.'",
    ])
    return simulated, report


def test_fig06_cleaning_cost(benchmark, record):
    simulated, report = benchmark.pedantic(run_figure, rounds=1,
                                           iterations=1)
    record("fig06_cleaning_cost", report)
    assert cleaning_cost(0.8) == pytest.approx(4.0)
    # The simulated naive scheme tracks the analytic curve.
    for utilization, measured in simulated.items():
        assert measured == pytest.approx(cleaning_cost(utilization),
                                         rel=0.25)
    # The cliff past 80%.
    assert cleaning_cost(0.95) > 4 * cleaning_cost(0.8)
