"""Figure 7 — Distribution of Space for Various Cleaning Methods.

The paper's conceptual diagram: under a hot/cold workload, greedy mixes
hot and cold data through every segment (uniform utilizations), while
locality gathering concentrates hot data (and free space) in the
low-numbered segments and packs cold data tightly; hybrid shows the same
shape at partition granularity.  This benchmark regenerates the diagram
as measured per-segment utilization and hot-page share.
"""

import pytest

from repro.analysis import banner, format_table
from repro.cleaning import (GreedyPolicy, HybridPolicy,
                            LocalityGatheringPolicy, PolicySimulator)
from repro.workloads import BimodalWorkload

SEGMENTS = 32
PAGES = 128
GROUP = 4  # segments summarised per row


def run_policy(policy):
    simulator = PolicySimulator(policy, num_segments=SEGMENTS,
                                pages_per_segment=PAGES, utilization=0.8,
                                buffer_pages=0, layout_seed=2)
    live = simulator.store.num_logical_pages
    workload = BimodalWorkload(live, 0.10, 0.90, seed=3)
    simulator.run(workload, live * 3, warmup_writes=live * 10)
    store = simulator.store
    utilizations = [position.utilization for position in store.positions]
    hot_share = [0.0] * SEGMENTS
    for page in range(workload.hot_pages):
        location = store.page_location[page]
        if location is not None and location[0] >= 0:
            hot_share[location[0]] += 1 / workload.hot_pages
    return utilizations, hot_share


def summarise(values):
    return [sum(values[i:i + GROUP]) / GROUP
            for i in range(0, SEGMENTS, GROUP)]


def run_figure():
    data = {}
    for policy in (GreedyPolicy(), LocalityGatheringPolicy(),
                   HybridPolicy(partition_segments=8)):
        data[policy.name] = run_policy(policy)
    rows = []
    for name, (utilizations, hot_share) in data.items():
        rows.append([name, "utilization"]
                    + [f"{value:.2f}" for value in summarise(utilizations)])
        rows.append([name, "hot share"]
                    + [f"{value:.2f}" for value in summarise(hot_share)])
    headers = (["Policy", "Metric"]
               + [f"seg {i}-{i + GROUP - 1}"
                  for i in range(0, SEGMENTS, GROUP)])
    report = "\n".join([
        banner("Figure 7: distribution of space per cleaning method "
               "(10/90 workload)"),
        format_table(headers, rows),
        "",
        "Paper (conceptual): greedy spreads hot+cold through all",
        "segments; locality gathering gathers hot data and free space",
        "at low-numbered segments with cold data packed tight.",
    ])
    return data, report


def test_fig07_space_distribution(benchmark, record):
    data, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig07_distribution", report)
    greedy_util, greedy_hot = data["greedy"]
    locality_util, locality_hot = data["locality"]
    # Greedy: roughly uniform hot-data spread (no gathering).
    first_half_hot = sum(greedy_hot[:SEGMENTS // 2])
    assert 0.25 <= first_half_hot <= 0.75
    # Locality gathering: hot data concentrated in the low half...
    assert sum(locality_hot[:SEGMENTS // 2]) > 0.9
    # ...and cold segments packed above the global 80% utilization.
    cold_avg = sum(locality_util[SEGMENTS // 2:]) / (SEGMENTS // 2)
    hot_avg = sum(locality_util[:SEGMENTS // 4]) / (SEGMENTS // 4)
    assert cold_avg > hot_avg
