"""Figure 8 — Comparison of Cleaning Algorithms.

Cleaning cost versus locality of reference for the greedy,
locality-gathering and hybrid (16 segments/partition) policies on a
128-segment array.  Expected shape (paper):

* greedy starts lowest under uniform access and *rises* with locality;
* locality gathering is pinned at ~4 under uniform access and *falls*
  as locality grows, crossing greedy mid-axis;
* hybrid tracks greedy under uniform access, consistently beats pure
  locality gathering, and wins outright at high locality.
"""

import pytest

from repro.analysis import banner, format_table, line_chart
from repro.perf import run_sweep
from conftest import FULL_SCALE

LOCALITIES = ["50/50", "40/60", "30/70", "20/80", "10/90", "5/95"]
SEGMENTS = 128
PAGES = 256 if FULL_SCALE else 128
TURNOVERS = 5 if FULL_SCALE else 3
WARMUP = 10 if FULL_SCALE else 8


def measure(policy, **policy_kwargs):
    """Cleaning cost per locality label, fanned out via the sweep
    runner (``ENVY_JOBS`` controls the worker count)."""
    points = [dict(policy=policy, policy_kwargs=policy_kwargs,
                   locality=locality, num_segments=SEGMENTS,
                   pages_per_segment=PAGES, turnovers=TURNOVERS,
                   warmup_turnovers=WARMUP)
              for locality in LOCALITIES]
    results = run_sweep("repro.perf.points:cleaning_cost_point", points)
    return {locality: result.cleaning_cost
            for locality, result in zip(LOCALITIES, results)}


def run_figure():
    greedy = measure("greedy")
    locality = measure("locality")
    hybrid = measure("hybrid", partition_segments=16)
    rows = [[label, greedy[label], locality[label], hybrid[label]]
            for label in LOCALITIES]
    # X axis: hot-access share (50 -> 95), like the paper's locality axis.
    axis = [50, 60, 70, 80, 90, 95]
    chart = line_chart(
        {"greedy": list(zip(axis, (greedy[l] for l in LOCALITIES))),
         "locality": list(zip(axis, (locality[l] for l in LOCALITIES))),
         "hybrid": list(zip(axis, (hybrid[l] for l in LOCALITIES)))},
        width=56, height=13, x_label="% of accesses to the hot set",
        y_min=0, y_max=5)
    report = "\n".join([
        banner(f"Figure 8: cleaning cost vs locality "
               f"({SEGMENTS} segments x {PAGES} pages, hybrid k=16)"),
        format_table(["Locality", "Greedy", "Locality gathering",
                      "Hybrid(16)"], rows),
        "",
        chart,
        "",
        "Paper shape: greedy rises with locality; locality gathering",
        "~4 flat at uniform then falls; hybrid close to greedy at",
        "uniform and consistently below pure locality gathering.",
    ])
    return (greedy, locality, hybrid), report


def test_fig08_policy_comparison(benchmark, record):
    (greedy, locality, hybrid), report = benchmark.pedantic(
        run_figure, rounds=1, iterations=1)
    record("fig08_policy_comparison", report)
    # Greedy degrades with locality (Section 4.2).
    assert greedy["5/95"] > greedy["50/50"] + 0.5
    # Locality gathering: pinned near 4 under uniform access...
    assert locality["50/50"] == pytest.approx(4.0, abs=0.7)
    # ...and improves with locality (Section 4.3).
    assert locality["5/95"] < locality["50/50"] - 1.0
    # Hybrid close to greedy at uniform (Section 4.4)...
    assert hybrid["50/50"] < locality["50/50"] - 1.0
    # ...and consistently beats pure locality gathering.
    for label in LOCALITIES:
        assert hybrid[label] < locality[label] + 0.2
    # Crossover: locality gathering beats greedy at high locality.
    assert locality["5/95"] < greedy["5/95"]
