"""Figure 9 — Cleaning Costs vs Partition Size.

Hybrid cleaning cost as a function of segments per partition on a
128-segment array.  The extremes degenerate to the pure algorithms
(1 = locality gathering, 128 = FIFO); the paper finds the sweet spot at
16 segments per partition, balancing locality separation against FIFO's
low uniform-access cost.
"""

import pytest

from repro.analysis import banner, format_table
from repro.perf import run_sweep
from conftest import FULL_SCALE

PARTITION_SIZES = [1, 2, 4, 8, 16, 32, 64, 128]
LOCALITIES = ["50/50", "30/70", "20/80", "10/90", "5/95"]
SEGMENTS = 128
PAGES = 128
TURNOVERS = 4 if FULL_SCALE else 3
WARMUP = 10 if FULL_SCALE else 8


def run_figure():
    grid = [(size, locality) for size in PARTITION_SIZES
            for locality in LOCALITIES]
    points = [dict(policy="hybrid",
                   policy_kwargs={"partition_segments": size},
                   locality=locality, num_segments=SEGMENTS,
                   pages_per_segment=PAGES, turnovers=TURNOVERS,
                   warmup_turnovers=WARMUP)
              for size, locality in grid]
    results = run_sweep("repro.perf.points:cleaning_cost_point", points)
    costs = {key: result.cleaning_cost
             for key, result in zip(grid, results)}
    rows = [[size] + [costs[(size, locality)] for locality in LOCALITIES]
            for size in PARTITION_SIZES]
    report = "\n".join([
        banner(f"Figure 9: hybrid cleaning cost vs segments/partition "
               f"({SEGMENTS} segments x {PAGES} pages)"),
        format_table(["Segs/partition"] + LOCALITIES, rows),
        "",
        "Paper: extremes behave like locality gathering (1) and FIFO",
        "(128); 'The lowest overall cleaning cost occurs with a",
        "partition size of 16.'",
    ])
    return costs, report


def test_fig09_partition_size(benchmark, record):
    costs, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig09_partition_size", report)
    # Partition of 1 behaves like locality gathering: ~4 at uniform.
    assert costs[(1, "50/50")] == pytest.approx(4.0, abs=0.8)
    # Uniform access improves monotonically-ish toward pure FIFO.
    assert costs[(128, "50/50")] < costs[(1, "50/50")] - 1.0
    # High locality: both extremes lose to the middle.
    for locality in ("10/90", "5/95"):
        middle = min(costs[(size, locality)] for size in (8, 16, 32))
        assert middle < costs[(1, locality)]
        assert middle < costs[(128, locality)]
    # The paper's chosen size 16 is within noise of the best for the
    # overall (summed) cost.
    totals = {size: sum(costs[(size, locality)]
                        for locality in LOCALITIES)
              for size in PARTITION_SIZES}
    best = min(totals.values())
    assert totals[16] <= best * 1.35
