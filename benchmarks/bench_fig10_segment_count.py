"""Figure 10 — Cleaning Costs vs Number of Segments.

A fixed-size array divided into ever more (smaller) segments, at a fixed
number of partitions (8), under the hybrid cleaner.  The paper: "Cleaning
efficiency does get better as the system is divided into more and more
segments.  However, after each segment represents less than 1% of the
array, further gains are marginal."
"""

import pytest

from repro.analysis import banner, format_table
from repro.perf import run_sweep
from conftest import FULL_SCALE

SEGMENT_COUNTS = [32, 64, 128, 256, 512]
LOCALITIES = ["50/50", "20/80", "10/90", "5/95"]
TOTAL_PAGES = 32_768 if FULL_SCALE else 16_384
PARTITIONS = 8
TURNOVERS = 3
WARMUP = 8


def run_figure():
    grid = [(count, locality) for count in SEGMENT_COUNTS
            for locality in LOCALITIES]
    points = [dict(policy="hybrid",
                   policy_kwargs={"partition_segments": count // PARTITIONS},
                   locality=locality, num_segments=count,
                   pages_per_segment=TOTAL_PAGES // count,
                   turnovers=TURNOVERS, warmup_turnovers=WARMUP)
              for count, locality in grid]
    results = run_sweep("repro.perf.points:cleaning_cost_point", points)
    costs = {key: result.cleaning_cost
             for key, result in zip(grid, results)}
    rows = [[count, f"{100 / count:.2f}%"]
            + [costs[(count, locality)] for locality in LOCALITIES]
            for count in SEGMENT_COUNTS]
    report = "\n".join([
        banner(f"Figure 10: cleaning cost vs number of segments "
               f"(fixed {TOTAL_PAGES}-page array, {PARTITIONS} "
               f"partitions)"),
        format_table(["Segments", "Segment/array"] + LOCALITIES, rows),
        "",
        "Paper: efficiency improves with more segments; gains become",
        "marginal once each segment is under ~1% of the array.",
    ])
    return costs, report


def test_fig10_segment_count(benchmark, record):
    costs, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig10_segment_count", report)
    # Finer segmentation helps: the coarsest array is never the best.
    for locality in ("50/50", "20/80"):
        finer = min(costs[(count, locality)]
                    for count in SEGMENT_COUNTS[1:])
        assert finer < costs[(32, locality)] + 0.4
    # Gains level off: the jump 32 -> 128 dwarfs 128 -> 512 on the
    # uniform workload.
    early_gain = costs[(32, "50/50")] - costs[(128, "50/50")]
    late_gain = costs[(128, "50/50")] - costs[(512, "50/50")]
    assert late_gain < early_gain + 0.3
