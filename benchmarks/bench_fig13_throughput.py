"""Figure 13 — Throughput for Increasing Request Rates.

TPC-A transactions against the timed simulator: completed transactions
per second tracks the request rate until the cleaning system's capacity
is exceeded, then flattens.  The paper's 2 GB system peaks around
30,000 TPS; the scaled simulation (same timing ratios, 1/64 capacity)
saturates in the same 30-45k band.
"""

import pytest

from repro.analysis import banner, format_table, line_chart
from repro.perf import run_sweep
from conftest import FULL_SCALE

RATES = [5_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000]
DURATION = 0.3 if FULL_SCALE else 0.15
WARMUP = 0.1 if FULL_SCALE else 0.04
PREWARM = 10


def run_figure():
    points = [dict(rate_tps=rate, duration_s=DURATION, warmup_s=WARMUP,
                   prewarm_turnovers=PREWARM) for rate in RATES]
    results = run_sweep("repro.perf.points:tpca_point", points)
    stats = dict(zip(RATES, results))
    rows = [[rate, round(s.throughput_tps), f"{s.cleaning_cost:.2f}",
             round(s.page_flush_rate), "yes" if s.saturated else "no"]
            for rate, s in stats.items()]
    chart = line_chart(
        {"completed kTPS": [(rate / 1000, s.throughput_tps / 1000)
                            for rate, s in stats.items()],
         "offered": [(rate / 1000, rate / 1000) for rate in RATES]},
        width=56, height=13, x_label="request rate (kTPS)", y_min=0)
    report = "\n".join([
        banner("Figure 13: throughput vs transaction request rate "
               "(TPC-A, 80% utilization)"),
        format_table(["Request TPS", "Completed TPS", "Cleaning cost",
                      "Pages flushed/s", "Saturated"], rows),
        "",
        chart,
        "",
        "Paper: throughput follows the request rate, peaking ~30,000",
        "TPS when the cleaning system saturates.",
    ])
    return stats, report


def test_fig13_throughput(benchmark, record):
    stats, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig13_throughput", report)
    # Below saturation throughput tracks the request rate.
    for rate in (5_000, 10_000, 20_000):
        assert stats[rate].throughput_tps == pytest.approx(rate, rel=0.1)
    # Above it, throughput flattens: 60k offered completes far less.
    peak = max(s.throughput_tps for s in stats.values())
    assert 25_000 <= peak <= 50_000  # the paper's ballpark
    assert stats[60_000].throughput_tps < 60_000 * 0.9
    # The flush rate is ~1 page per transaction (write coalescing).
    light = stats[10_000]
    assert light.page_flush_rate / light.throughput_tps == \
        pytest.approx(1.05, abs=0.3)
