"""Figure 14 — Throughput for Various Levels of Utilization.

Throughput at fixed request rates while the Flash array's live-data
fraction varies.  The paper: "After about 80% utilization, performance
drops off steeply, reinforcing our decision to keep at least 20% of the
Flash array's storage space free at any given time."
"""

import pytest

from repro.analysis import banner, format_table
from repro.perf import run_sweep
from conftest import FULL_SCALE

UTILIZATIONS = [0.3, 0.5, 0.7, 0.8, 0.85, 0.9]
RATES = [20_000, 40_000] if not FULL_SCALE else [10_000, 20_000, 30_000,
                                                 40_000]
DURATION = 0.25 if FULL_SCALE else 0.12
WARMUP = 0.05 if FULL_SCALE else 0.03


def run_figure():
    grid = [(utilization, rate) for utilization in UTILIZATIONS
            for rate in RATES]
    points = [dict(rate_tps=rate, duration_s=DURATION, warmup_s=WARMUP,
                   utilization=utilization, prewarm_turnovers=8)
              for utilization, rate in grid]
    results = run_sweep("repro.perf.points:tpca_point", points)
    stats = dict(zip(grid, results))
    rows = []
    for utilization in UTILIZATIONS:
        row = [f"{utilization:.0%}"]
        for rate in RATES:
            entry = stats[(utilization, rate)]
            row.append(round(entry.throughput_tps))
        row.append(f"{stats[(utilization, RATES[-1])].cleaning_cost:.2f}")
        rows.append(row)
    report = "\n".join([
        banner("Figure 14: throughput vs Flash array utilization"),
        format_table(["Utilization"]
                     + [f"TPS @{rate:,}" for rate in RATES]
                     + [f"cost @{RATES[-1]:,}"], rows),
        "",
        "Paper: flat until ~80% utilization, then a steep drop —",
        "the reason eNVy reserves 20% of the array.",
    ])
    return stats, report


def test_fig14_utilization_cliff(benchmark, record):
    stats, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig14_utilization", report)
    heavy = RATES[-1]
    # Below 80% the request rate is sustained.
    assert stats[(0.5, heavy)].throughput_tps == pytest.approx(heavy,
                                                               rel=0.12)
    # Past 80% the cleaning cost explodes and throughput collapses.
    assert stats[(0.9, heavy)].cleaning_cost > \
        stats[(0.5, heavy)].cleaning_cost + 1.5
    assert stats[(0.9, heavy)].throughput_tps < \
        stats[(0.5, heavy)].throughput_tps * 0.95
    # The light rate survives longer (its demand is lower).
    light = RATES[0]
    assert stats[(0.8, light)].throughput_tps == pytest.approx(light,
                                                               rel=0.12)
