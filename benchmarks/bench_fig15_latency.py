"""Figure 15 — I/O Latency for Increasing Request Rates.

Host-visible read and write latencies under the TPC-A workload.
Paper: "Until the transaction rate gets near the system's maximum
throughput, I/O latencies for both types of access are almost constant,
about 180ns for reads and 200ns for writes.  As the rate surpasses
eNVy's ability to process them, the write latency jumps dramatically
from 200ns to 7.2us" — while reads stay flat because host accesses
preempt the controller's long operations.
"""

import pytest

from repro.analysis import banner, format_table
from repro.perf import run_sweep
from conftest import FULL_SCALE

RATES = [5_000, 15_000, 30_000, 45_000, 60_000]
DURATION = 0.3 if FULL_SCALE else 0.15
WARMUP = 0.1 if FULL_SCALE else 0.04


def run_figure():
    points = [dict(rate_tps=rate, duration_s=DURATION, warmup_s=WARMUP,
                   prewarm_turnovers=10) for rate in RATES]
    results = run_sweep("repro.perf.points:tpca_point", points)
    stats = dict(zip(RATES, results))
    rows = [[rate, f"{s.read_latency.mean_ns:.0f}",
             f"{s.write_latency.mean_ns:.0f}",
             str(s.write_latency.p50), str(s.write_latency.p99),
             "yes" if s.saturated else "no"]
            for rate, s in stats.items()]
    report = "\n".join([
        banner("Figure 15: I/O latency vs transaction request rate"),
        format_table(["Request TPS", "Read ns (mean)", "Write ns (mean)",
                      "Write p50", "Write p99", "Saturated"], rows),
        "",
        "Paper: ~180 ns reads / ~200 ns writes below saturation; write",
        "latency jumps to ~7.2 us once the buffer stays full; reads",
        "stay flat because host accesses suspend long operations.",
    ])
    return stats, report


def test_fig15_latency(benchmark, record):
    stats, report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    record("fig15_latency", report)
    light = stats[5_000]
    heavy = stats[60_000]
    # Below saturation: near-SRAM latencies (paper: 180/200 ns).
    assert 160 <= light.read_latency.mean_ns <= 200
    assert 170 <= light.write_latency.mean_ns <= 260
    # Reads stay flat at every load.
    for entry in stats.values():
        assert entry.read_latency.mean_ns <= 210
    # Writes jump by an order of magnitude at saturation.
    assert heavy.write_latency.mean_ns > 1_500
    assert heavy.write_latency.mean_ns > \
        8 * light.write_latency.mean_ns
    # The tail tells the same story the means do: percentiles are
    # ordered, the unsaturated p99 stays near SRAM speed, and the
    # saturation cliff shows up in the p99 before anywhere else.
    for entry in stats.values():
        assert entry.write_latency.p50 <= entry.write_latency.p99 \
            <= entry.write_latency.p999
    assert light.write_latency.p99 <= 1_000
    assert heavy.write_latency.p99 > 10 * light.write_latency.p99
