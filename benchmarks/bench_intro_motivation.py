"""Section 1 — the motivation, quantified from Figure 1's numbers.

"Solid-state memories provide a factor of 100,000 improvement in access
times compared to disks ... It is our expectation that for applications
whose performance is currently bound by disk random access rates and
whose data requirements stay within a few gigabytes, the performance of
a solid-state storage system is well worth the extra cost."

The table prices every storage option for the paper's target (2 GB,
30,000 TPC-A TPS) and shows the shape of the argument: a disk array
needs hundreds of arms to reach the I/O rate, DRAM needs an absurd
ride-through battery, SRAM costs 3.5x, and eNVy sits in the gap.
"""

import pytest

from repro.analysis import banner, format_table
from repro.analysis.alternatives import (DISK_ACCESS_MS,
                                         compare_alternatives)

TARGET_TPS = 30_000.0


def run_comparison():
    options = compare_alternatives(TARGET_TPS)
    rows = [option.row() for option in options]
    speedup = DISK_ACCESS_MS * 1e6 / 100  # vs a 100 ns memory access
    report = "\n".join([
        banner(f"Section 1: storage options for 2 GiB at "
               f"{TARGET_TPS:,.0f} TPS (Figure 1 economics)"),
        format_table(["Option", "Cost (1994 $)", "Achievable TPS",
                      "Hardware", "Retention"], rows),
        "",
        f"raw access-time gap: {DISK_ACCESS_MS} ms disk vs 100 ns "
        f"memory = {speedup:,.0f}x (paper: 'a factor of 100,000')",
    ])
    return options, report


def test_intro_motivation(benchmark, record):
    options, report = benchmark.pedantic(run_comparison, rounds=1,
                                         iterations=1)
    record("intro_motivation", report)
    by_name = {option.name.split(" (")[0]: option for option in options}
    disk = by_name["disk array"]
    envy = by_name["eNVy"]
    sram = by_name["battery-backed SRAM"]
    # Reaching 30k TPS on disks takes hundreds of arms...
    assert "arms" in disk.name
    arms = int(disk.name.split("(")[1].split()[0])
    assert arms > 300
    # ...which costs more than the disks' capacity would suggest.
    assert disk.dollars > 100 * 2048  # far beyond 2 GiB of disk at $1/MiB
    # eNVy undercuts SRAM by roughly the paper's factor of ~3.5x.
    assert sram.dollars / envy.dollars == pytest.approx(3.5, abs=0.5)
    # And the access-time gap is the paper's 100,000x claim.
    assert DISK_ACCESS_MS * 1e6 / 100 == pytest.approx(83_000, rel=0.01)
