#!/usr/bin/env python
"""Observability-overhead benchmark entry point
(see ``repro.obs.bench_overhead``).

Times the canonical TPC-A simulation with the event bus dormant (the
gated zero-overhead-when-disabled number), re-times it with the
observability hub attached (informational overhead; fidelity must be
bit-identical), and runs a traced multi-tenant service (0 ns
critical-path decomposition error, tail blame, SLO burn rates as exact
fidelity).  Emits ``BENCH_OBS.json``:

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke \\
        --output BENCH_OBS.current.json \\
        --compare BENCH_OBS.smoke.json --max-regression 0.05

Like ``bench_perf.py`` this is a plain script, not a pytest benchmark:
CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.bench_overhead import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
