#!/usr/bin/env python
"""Perf-regression harness entry point (see ``repro.perf.bench``).

Measures wall-clock and simulated-accesses/sec for the canonical
scenarios, probes parallel sweep scaling, and emits ``BENCH_PERF.json``:

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke \\
        --output BENCH_PERF.current.json --compare BENCH_PERF.json

Unlike the ``bench_fig*`` files this is a plain script, not a pytest
benchmark: CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
