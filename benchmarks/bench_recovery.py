"""Recovery-time scaling — full scan vs flash checkpoints.

Not a paper figure: the paper's recovery is instant because every piece
of mapping state lives in battery-backed SRAM (Section 3.2).  This
experiment measures the production alternative added by the crash-
consistency layer: rebuilding the whole controller from Flash alone
with :func:`repro.core.recovery.recover_from_flash`.

For each array size the same seeded random-overwrite workload runs to a
drained store, then recovery is timed (in modelled device nanoseconds,
``report.scan_ns``) three ways: a bare full-array scan, and checkpoint-
accelerated recovery at a coarse and a fine checkpoint cadence.  The
full scan grows with the programmed area; checkpointed recovery reads
the metadata segments plus only the slots programmed since the last
checkpoint, so its cost tracks the cadence, not the array.
"""

import random

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, EnvyController, recover_from_flash
from conftest import FULL_SCALE

#: (label, num_segments, pages_per_segment)
SIZES = [
    ("12 x 16", 12, 16),
    ("16 x 32", 16, 32),
    ("24 x 64", 24, 64),
] + ([("32 x 128", 32, 128)] if FULL_SCALE else [])

#: Checkpoint cadences (flushes between checkpoints); None = disabled.
CADENCES = [None, 32, 8]

WRITES_PER_PAGE = 3
SEED = 17


def build_drained_store(num_segments, pages_per_segment, cadence):
    config = EnvyConfig.small(num_segments=num_segments,
                              pages_per_segment=pages_per_segment,
                              checkpoint_interval_flushes=cadence)
    ctrl = EnvyController(config)
    rng = random.Random(SEED)
    page_bytes = config.page_bytes
    for _ in range(WRITES_PER_PAGE * config.logical_pages):
        page = rng.randrange(config.logical_pages)
        ctrl.write(page * page_bytes,
                   rng.randrange(256).to_bytes(1, "little") * 8)
    ctrl.drain()
    return config, ctrl


def verify(recovered, reference):
    page_bytes = reference.config.page_bytes
    for page in range(reference.config.logical_pages):
        address = page * page_bytes
        assert recovered.read(address, page_bytes) == \
            reference.read(address, page_bytes), \
            f"recovery diverged on page {page}"


@pytest.mark.benchmark
def test_recovery_scaling(record):
    rows = []
    for label, num_segments, pages_per_segment in SIZES:
        row = [label]
        for cadence in CADENCES:
            config, ctrl = build_drained_store(
                num_segments, pages_per_segment, cadence)
            recovered, report = recover_from_flash(ctrl.array, config)
            verify(recovered, ctrl)
            second, report2 = recover_from_flash(recovered.array, config)
            verify(second, ctrl)
            mode = "scan" if cadence is None else "ckpt"
            assert report.mode == ("full-scan" if cadence is None
                                   else "checkpoint")
            row.append(f"{report.scan_ns / 1000:.1f} us "
                       f"({report.pages_scanned} pg, {mode})")
        rows.append(row)
    headers = ["Array (seg x pages)"] + [
        "no checkpoint" if c is None else f"every {c} flushes"
        for c in CADENCES]
    text = "\n".join([
        banner("Recovery time from flash: full scan vs checkpoints"),
        format_table(headers, rows),
        "",
        "scan_ns = modelled device time (page + OOB reads, checkpoint",
        "chunk reads, orphan re-reads, replayed erases).  Checkpointed",
        "recovery re-reads only slots programmed after the checkpoint,",
        "so a finer cadence buys a flatter curve; the full scan grows",
        "with every programmed page in the array.",
    ])
    record("recovery_scan", text)
