#!/usr/bin/env python
"""Redundancy benchmark entry point (see ``repro.service.bench_redundancy``).

Measures the cost of cross-bank redundancy (mirror / parity write
amplification), drills a whole-bank loss per policy (degraded serving,
post-mortem recovery, online rebuild), gates the rebuild-interference
p99 bound and the hot-page-rebalance recovery ratio, and emits
``BENCH_REDUNDANCY.json``:

    PYTHONPATH=src python benchmarks/bench_redundancy.py           # full
    PYTHONPATH=src python benchmarks/bench_redundancy.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_redundancy.py --smoke \\
        --output BENCH_REDUNDANCY.current.json \\
        --compare BENCH_REDUNDANCY.smoke.json

Like ``bench_service.py`` this is a plain script, not a pytest
benchmark: CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.bench_redundancy import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
