"""Statistical robustness — key Figure 8 results across seeds.

Every cleaning-cost experiment is a seeded simulation; this benchmark
replicates the headline comparisons over several seeds and reports
mean ± 95% CI, confirming the single-seed figures elsewhere are
representative and the policy orderings are not noise.
"""

import pytest

from repro.analysis import banner, format_table, replicate
from repro.cleaning import (GreedyPolicy, HybridPolicy,
                            LocalityGatheringPolicy, measure_cleaning_cost)

SEEDS = [11, 22, 33, 44]
SEGMENTS = 64
PAGES = 128


def cost_summary(policy_factory, locality):
    return replicate(
        lambda seed: measure_cleaning_cost(
            policy_factory(), locality, num_segments=SEGMENTS,
            pages_per_segment=PAGES, turnovers=3, warmup_turnovers=6,
            seed=seed).cleaning_cost,
        SEEDS)


def run_replication():
    cases = {
        ("greedy", "50/50"): cost_summary(GreedyPolicy, "50/50"),
        ("greedy", "10/90"): cost_summary(GreedyPolicy, "10/90"),
        ("locality", "50/50"): cost_summary(LocalityGatheringPolicy,
                                            "50/50"),
        ("locality", "10/90"): cost_summary(LocalityGatheringPolicy,
                                            "10/90"),
        ("hybrid(8)", "50/50"): cost_summary(lambda: HybridPolicy(8),
                                             "50/50"),
        ("hybrid(8)", "10/90"): cost_summary(lambda: HybridPolicy(8),
                                             "10/90"),
    }
    rows = [[policy, locality, f"{summary.mean:.2f}",
             f"±{summary.ci95:.2f}"]
            for (policy, locality), summary in cases.items()]
    report = "\n".join([
        banner(f"Replication: cleaning cost over {len(SEEDS)} seeds "
               f"({SEGMENTS} segments x {PAGES} pages)"),
        format_table(["Policy", "Locality", "Mean cost", "95% CI"],
                     rows),
        "",
        "The Figure 8 orderings must hold outside overlapping",
        "confidence intervals, not just on one seed.",
    ])
    return cases, report


def test_replicated_orderings(benchmark, record):
    cases, report = benchmark.pedantic(run_replication, rounds=1,
                                       iterations=1)
    record("replication", report)
    # Seed-to-seed noise is small everywhere.
    for summary in cases.values():
        assert summary.ci95 < 0.6
    # Locality gathering pinned near 4 at uniform, every seed.
    assert cases[("locality", "50/50")].mean == pytest.approx(4.1,
                                                              abs=0.5)
    # The orderings hold beyond CI overlap:
    # hybrid beats locality gathering at uniform...
    assert not cases[("hybrid(8)", "50/50")].overlaps(
        cases[("locality", "50/50")])
    # ...and beats greedy at high locality.
    assert not cases[("hybrid(8)", "10/90")].overlaps(
        cases[("greedy", "10/90")])
    assert cases[("hybrid(8)", "10/90")].mean < \
        cases[("greedy", "10/90")].mean
