"""Section 1 — the memory-mapped interface versus an emulated disk.

"eNVy presents its storage space as a linear, memory mapped array rather
than as an emulated disk in order to provide an efficient and easy to
use software interface. ... This interface simplifies data access
routines because there is no need to be concerned with disk block
boundaries ... Substantial reductions in code size and in instruction
pathlengths can result."

This benchmark quantifies the claim on eNVy itself: the same TPC-A-style
balance update performed (a) natively through word-granularity loads and
stores, and (b) through the RAM-disk block interface, where every small
update becomes a sector read-modify-write.  Both paths run over the same
controller, so the difference is purely the interface.
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, EnvySystem
from repro.ramdisk import BlockDevice

UPDATES = 2000
RECORD_BYTES = 100
BLOCK_BYTES = 512


def fresh_system():
    return EnvySystem(EnvyConfig.small(num_segments=16,
                                       pages_per_segment=256),
                      store_data=False)


def memory_interface():
    """Balance update: read one word, write one word, in place."""
    system = fresh_system()
    system.metrics.reset()
    total_ns = 0
    for index in range(UPDATES):
        address = (index * RECORD_BYTES) % (system.size_bytes - 16)
        _, read_ns = system.read_timed(address + 8, 8)
        total_ns += read_ns
        total_ns += system.write(address + 8, b"\x01" * 8)
        system.background_work(10 ** 12)  # think time between updates
    return system, total_ns


def block_interface():
    """The same update through 512-byte sectors."""
    system = fresh_system()
    device = BlockDevice(system, block_bytes=BLOCK_BYTES)
    system.metrics.reset()
    total_ns = 0
    for index in range(UPDATES):
        address = (index * RECORD_BYTES) % (device.size_bytes - 600)
        block, offset = divmod(address + 8, BLOCK_BYTES)
        # Read-modify-write the whole sector, as a block API must.
        _, read_ns = system.read_timed(block * BLOCK_BYTES, BLOCK_BYTES)
        total_ns += read_ns
        sector = bytearray(BLOCK_BYTES)
        sector[offset:offset + 8] = b"\x01" * 8
        total_ns += system.write(block * BLOCK_BYTES, bytes(sector))
        system.background_work(10 ** 12)  # think time between updates
    return system, total_ns


def run_comparison():
    memory_system, memory_ns = memory_interface()
    block_system, block_ns = block_interface()
    rows = [
        ["storage accesses",
         memory_system.metrics.reads + memory_system.metrics.writes,
         block_system.metrics.reads + block_system.metrics.writes],
        ["bytes written (host)", UPDATES * 8, UPDATES * BLOCK_BYTES],
        ["pages flushed", memory_system.metrics.flushes,
         block_system.metrics.flushes],
        ["simulated time per update (ns)",
         round(memory_ns / UPDATES), round(block_ns / UPDATES)],
    ]
    report = "\n".join([
        banner("Section 1: memory-mapped interface vs emulated disk "
               f"({UPDATES:,} balance updates)"),
        format_table(["Quantity", "Memory interface",
                      "Block interface"], rows),
        "",
        "Paper: word-sized access removes block read-modify-write,",
        "shortening instruction pathlengths and write traffic — the",
        "reason eNVy is not presented as an emulated disk.",
    ])
    return (memory_system, memory_ns, block_system, block_ns), report


def test_sec1_interface_comparison(benchmark, record):
    (memory_system, memory_ns, block_system, block_ns), report = \
        benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record("sec1_interface", report)
    # The block path costs materially more host time...
    assert block_ns > 1.5 * memory_ns
    # ...moves 64x the bytes, and generates more Flash traffic for
    # identical logical work.
    assert block_system.metrics.flushes >= memory_system.metrics.flushes
    # The memory path touches two words per update (a little over:
    # some words straddle a page boundary and count twice).
    per_update = (memory_system.metrics.reads
                  + memory_system.metrics.writes) / UPDATES
    assert per_update == pytest.approx(2.0, abs=0.1)
