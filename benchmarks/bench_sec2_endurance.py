"""Section 2 — endurance margins and array aging.

Reproduces the paper's durability argument quantitatively:

* the anecdote — "one chip rated for 10,000 cycles programmed in 4us
  and erased in 40ms after 2 million cycles, far below the ... limits
  of 250us and 10 seconds";
* the failure definition — a chip "fails" when an operation exceeds its
  spec time, long after the rated cycles, with data still readable;
* the system view — under the Section 5.5 workload (10,000 TPS), how
  program/erase times and saturation throughput evolve over the array's
  rated life and beyond.
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig
from repro.flash.endurance import (PROGRAM_SPEC_NS, ArrayAging,
                                   DegradationCurve,
                                   paper_anecdote_check)

YEARS = [0, 2, 5, 8.63, 15, 30]


def run_experiment():
    anecdote = paper_anecdote_check()
    aging = ArrayAging(EnvyConfig.paper(), page_flush_rate=10_376,
                       cleaning_cost=1.97)
    rows = []
    for year in YEARS:
        rows.append([
            f"{year:g}",
            f"{aging.cycles_after_years(year):,.0f}",
            f"{aging.program_time_after_years(year) / 1000:.2f} us",
            f"{aging.erase_time_after_years(year) / 1e6:.1f} ms",
            f"{aging.throughput_decay(year, 30_000):,.0f}",
        ])
    curve = DegradationCurve(4000, PROGRAM_SPEC_NS)
    report = "\n".join([
        banner("Section 2: the endurance anecdote"),
        f"modelled program time at 2M cycles: "
        f"{anecdote['modelled_at_2M_cycles_ns'] / 1000:.2f} us "
        f"(measured: 4 us; spec limit: 250 us)",
        f"spec-failure horizon: {curve.spec_failure_cycles():,} cycles "
        f"= {curve.margin_over_rating(10_000):,.0f}x the 10,000-cycle "
        f"rating",
        "",
        banner("Array aging at 10,000 TPS (2 GB, even wear)"),
        format_table(["Year", "Cycles/segment", "Program time",
                      "Erase time", "Sat. TPS (from 30k)"], rows),
        "",
        f"rated life: {aging.rated_life_years():.2f} years "
        f"(Section 5.5: 8.63); operations still within spec for "
        f"~{aging.spec_failure_years():,.0f} years of this workload —",
        "the basis for 'Flash has the potential to become very",
        "durable.'",
    ])
    return anecdote, aging, report


def test_sec2_endurance(benchmark, record):
    anecdote, aging, report = benchmark.pedantic(run_experiment, rounds=1,
                                                 iterations=1)
    record("sec2_endurance", report)
    # The anecdote's margins hold in the model.
    assert anecdote["modelled_at_2M_cycles_ns"] < 10_000
    assert anecdote["spec_failure_cycles"] > 100 * 10_000
    # Aging agrees with the Section 5.5 lifetime.
    assert aging.rated_life_years() == pytest.approx(8.63, rel=0.01)
    # Throughput loss within the rated life is modest (<10%).
    end = aging.throughput_decay(aging.rated_life_years(), 30_000)
    assert end > 27_000
    # Spec failures are nowhere near the rated life.
    assert aging.spec_failure_years() > 50
