"""Section 4.3 (last paragraph) — wear leveling.

"eNVy keeps statistics on the number of program/erase cycles each
segment has been exposed to and when the oldest segment gets over 100
cycles older than the youngest, a cleaning operation is initiated that
swaps the data in the two areas.  This leads to an even wearing of the
segments."

Compares the erase-cycle spread of a skewed workload with and without
the leveling swap.
"""

import pytest

from repro.analysis import banner, format_table
from repro.cleaning import LocalityGatheringPolicy, PolicySimulator
from repro.workloads import BimodalWorkload

SEGMENTS = 16
PAGES = 64
THRESHOLD = 20  # scaled-down analogue of the paper's 100 cycles


def run_case(wear_leveling):
    simulator = PolicySimulator(LocalityGatheringPolicy(),
                                num_segments=SEGMENTS,
                                pages_per_segment=PAGES,
                                utilization=0.8, buffer_pages=0,
                                wear_leveling=wear_leveling,
                                wear_threshold=THRESHOLD)
    live = simulator.store.num_logical_pages
    workload = BimodalWorkload(live, 0.05, 0.95, seed=11)
    simulator.run(workload, live * 14)
    return simulator.result("5/95")


def run_experiment():
    unleveled = run_case(wear_leveling=False)
    leveled = run_case(wear_leveling=True)
    rows = [
        ["wear leveling off", unleveled.wear_spread, unleveled.wear_swaps,
         f"{unleveled.cleaning_cost:.2f}"],
        ["wear leveling on", leveled.wear_spread, leveled.wear_swaps,
         f"{leveled.cleaning_cost:.2f}"],
    ]
    report = "\n".join([
        banner(f"Section 4.3: wear leveling under a 5/95 workload "
               f"(swap threshold {THRESHOLD} cycles)"),
        format_table(["Configuration", "Erase-cycle spread", "Swaps",
                      "Cleaning cost"], rows),
        "",
        "Paper: swapping the oldest and youngest segments' data bounds",
        "the age spread, evening out wear across the array.",
    ])
    return unleveled, leveled, report


def test_sec43_wear_leveling(benchmark, record):
    unleveled, leveled, report = benchmark.pedantic(run_experiment,
                                                    rounds=1, iterations=1)
    record("sec43_wear", report)
    # The skewed workload wears hot segments far faster...
    assert unleveled.wear_spread > THRESHOLD
    assert unleveled.wear_swaps == 0
    # ...and the swap mechanism reins the spread in.
    assert leveled.wear_swaps > 0
    assert leveled.wear_spread < unleveled.wear_spread
    # Leveling costs little extra cleaning.
    assert leveled.cleaning_cost < unleveled.cleaning_cost + 1.0
