"""Section 5.3 — Controller time breakdown and the SRAM-only bound.

"At a utilization of 80% and a transaction rate of 30,000 TPS, the eNVy
system is almost never idle.  Under these conditions, approximately 40%
of the time is servicing reads.  Most of the remaining time is spent
either cleaning (30%), flushing (15%), or erasing (15%).  ... even if
[the Flash-management work] could be completely eliminated, as in a
battery backed SRAM array, throughput would only increase by a factor
of 2.5."
"""

import pytest

from repro.analysis import banner, format_table
from repro.sim import simulate_tpca
from conftest import FULL_SCALE

RATE = 60_000  # offered load beyond saturation so the system is busy
DURATION = 0.3 if FULL_SCALE else 0.15


def run_breakdown():
    stats = simulate_tpca(RATE, duration_s=DURATION, warmup_s=0.05,
                          prewarm_turnovers=10)
    breakdown = stats.time_breakdown()
    # If only reads and host writes remained (pure SRAM array), the
    # same transaction mix would run this much faster:
    essential = breakdown.get("read", 0) + breakdown.get("host-write", 0)
    sram_speedup = 1.0 / essential if essential else float("inf")
    rows = [[activity, f"{share:.0%}"]
            for activity, share in breakdown.items()]
    report = "\n".join([
        banner("Section 5.3: controller time breakdown at saturation"),
        format_table(["Activity", "Share of time"], rows),
        "",
        f"Throughput at saturation: {stats.throughput_tps:,.0f} TPS",
        f"SRAM-only speedup bound:  {sram_speedup:.1f}x  (paper: ~2.5x)",
        "",
        "Paper: ~40% reads, ~30% cleaning, ~15% flushing, ~15% erasing.",
        "(Erase share is lower here: with the paper's own chip",
        "parameters, erase time per program is ~19% of program time,",
        "which caps the erase share below the quoted 15%.)",
    ])
    return stats, breakdown, sram_speedup, report


def test_sec53_time_breakdown(benchmark, record):
    stats, breakdown, sram_speedup, report = benchmark.pedantic(
        run_breakdown, rounds=1, iterations=1)
    record("sec53_breakdown", report)
    # Almost never idle at saturation.
    assert breakdown.get("idle", 0.0) < 0.05
    # Reads dominate (paper ~40%).
    assert 0.30 <= breakdown["read"] <= 0.65
    # Cleaning is the biggest Flash-management activity (paper ~30%).
    assert breakdown["clean"] > breakdown["flush"]
    assert 0.15 <= breakdown["clean"] <= 0.45
    assert 0.08 <= breakdown["flush"] <= 0.25
    assert breakdown["erase"] > 0.02
    # Eliminating Flash management buys only a small factor (paper 2.5).
    assert 1.3 <= sram_speedup <= 3.5
