"""Section 5.5 — Estimated eNVy Lifetime.

Reproduces the worked example: at 10,000 TPS the simulator reports the
page flush rate and cleaning cost, and the lifetime model turns them
into days of continuous use for the 2 GB array of 1-million-cycle parts.

Paper numbers: 10,376 pages/s flushed, cleaning cost 1.97, lifetime
3,151 days (8.63 years).
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, estimate_lifetime
from repro.core.lifetime import paper_example
from repro.sim import simulate_tpca
from conftest import FULL_SCALE

RATE = 10_000
DURATION = 0.4 if FULL_SCALE else 0.2


def run_lifetime():
    stats = simulate_tpca(RATE, duration_s=DURATION, warmup_s=0.05,
                          prewarm_turnovers=10)
    # The flush rate is per transaction; the cost is scale-free.  Apply
    # both to the full 2 GB array exactly as Section 5.5 does.
    measured = estimate_lifetime(EnvyConfig.paper(),
                                 page_flush_rate=stats.page_flush_rate,
                                 cleaning_cost=stats.cleaning_cost)
    reference = paper_example()
    rows = [
        ["Page flush rate (pages/s)", f"{stats.page_flush_rate:,.0f}",
         "10,376"],
        ["Cleaning cost", f"{stats.cleaning_cost:.2f}", "1.97"],
        ["Lifetime (days)", f"{measured.days:,.0f}", "3,151"],
        ["Lifetime (years)", f"{measured.years:.2f}", "8.63"],
    ]
    report = "\n".join([
        banner(f"Section 5.5: lifetime at {RATE:,} TPS "
               f"(2 GB array, 1M-cycle parts)"),
        format_table(["Quantity", "Measured", "Paper"], rows),
        "",
        f"Reference (paper's own inputs): {reference}",
    ])
    return stats, measured, report


def test_sec55_lifetime(benchmark, record):
    stats, measured, report = benchmark.pedantic(run_lifetime, rounds=1,
                                                 iterations=1)
    record("sec55_lifetime", report)
    # The model reproduces the paper's arithmetic exactly.
    assert paper_example().years == pytest.approx(8.63, rel=0.01)
    # The simulator's inputs land near the paper's measurements.
    assert stats.page_flush_rate == pytest.approx(10_376, rel=0.25)
    assert stats.cleaning_cost == pytest.approx(1.97, abs=0.8)
    # And the resulting lifetime is in the paper's ~10-year range.
    assert 5.0 <= measured.years <= 16.0
