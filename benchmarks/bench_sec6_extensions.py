"""Section 6 — Hardware Extensions.

Two claims:

* Parallel bank programming: "With the cleaner executing 4 to 8
  concurrent programming operations, the average time to flush a page
  can drop from 4us to less than 1us."
* Hardware atomic transactions: rollback from the free Flash shadow
  copies, with shadows protected from cleaning.
"""

import random

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, EnvySystem
from repro.ext import ParallelFlushScheduler, TransactionManager

CONCURRENCIES = [1, 2, 4, 8]


def pressured_system():
    system = EnvySystem(EnvyConfig.small(num_segments=32,
                                         pages_per_segment=64,
                                         partition_segments=4))
    rng = random.Random(1)
    for _ in range(60):
        system.write(rng.randrange(system.size_bytes - 8), b"y" * 8)
    return system


def run_parallel_sweep():
    results = {}
    for concurrency in CONCURRENCIES:
        scheduler = ParallelFlushScheduler(pressured_system(),
                                           max_concurrency=concurrency)
        scheduler.drain(48)
        results[concurrency] = (scheduler.mean_batch_size,
                                scheduler.mean_flush_time_ns)
    return results


def run_transaction_demo():
    system = EnvySystem(EnvyConfig.small(num_segments=8,
                                         pages_per_segment=32))
    system.write(0, b"committed state")
    system.drain()
    manager = TransactionManager(system)
    txn = manager.transaction()
    txn.write(0, b"speculative data")
    # Cleaning pressure while the transaction is open: shadows must
    # survive segment erasure.
    rng = random.Random(5)
    for _ in range(6000):
        system.write(rng.randrange(system.size_bytes - 8), b"z" * 8)
    erases = system.metrics.erases
    txn.rollback()
    restored = system.read(0, 15) == b"committed state"
    return erases, manager.rescued_pages, restored


def run_extensions():
    sweep = run_parallel_sweep()
    rows = [[k, f"{sweep[k][0]:.2f}", f"{sweep[k][1]:.0f}"]
            for k in CONCURRENCIES]
    erases, rescued, restored = run_transaction_demo()
    report = "\n".join([
        banner("Section 6a: parallel bank programming"),
        format_table(["Concurrency", "Mean batch size",
                      "Per-page program ns"], rows),
        "",
        "Paper: 4-8 concurrent programs drop the average flush from",
        "4us to under 1us.",
        "",
        banner("Section 6b: hardware atomic transactions"),
        f"segments erased while transaction open: {erases}",
        f"shadow pages rescued from erasure:      {rescued}",
        f"rollback restored committed state:      "
        f"{'yes' if restored else 'NO'}",
    ])
    return sweep, restored, report


def test_sec6_extensions(benchmark, record):
    sweep, restored, report = benchmark.pedantic(run_extensions, rounds=1,
                                                 iterations=1)
    record("sec6_extensions", report)
    # Serial baseline is the raw 4 us program.
    assert sweep[1][1] == pytest.approx(4000)
    # 4-8 way concurrency brings the per-page flush under 1 us.
    assert sweep[8][1] < 1000
    assert sweep[4][1] <= 1100
    # Monotone improvement with concurrency.
    times = [sweep[k][1] for k in CONCURRENCIES]
    assert times == sorted(times, reverse=True)
    # Rollback works under cleaning pressure.
    assert restored
