"""Section 6, end-to-end — parallel cleaning in the timed simulator.

The static sweep (bench_sec6_extensions.py) shows 4-8 way bank
concurrency cuts the per-page program time from 4 us to under 1 us.
This benchmark asks what that buys the *system*: re-running the
Figure 13 saturation experiment with the cleaner's program/erase times
divided by the achieved concurrency.  Section 5.3 predicts the ceiling:
reads and host writes are untouched, so throughput can rise by at most
the paper's ~2.5x "SRAM-only" bound.
"""

import pytest

from repro.analysis import banner, format_table
from repro.sim import simulate_tpca
from conftest import FULL_SCALE

RATES = [40_000, 60_000, 80_000]
SPEEDUPS = [1.0, 4.0, 7.0]
DURATION = 0.2 if FULL_SCALE else 0.1


def saturation_throughput(speedup: float) -> float:
    best = 0.0
    for rate in RATES:
        stats = simulate_tpca(rate, duration_s=DURATION, warmup_s=0.03,
                              prewarm_turnovers=8,
                              program_speedup=speedup)
        best = max(best, stats.throughput_tps)
    return best


def run_experiment():
    peaks = {speedup: saturation_throughput(speedup)
             for speedup in SPEEDUPS}
    baseline = peaks[1.0]
    rows = [[f"{speedup:g}x", round(peak), f"{peak / baseline:.2f}x"]
            for speedup, peak in peaks.items()]
    report = "\n".join([
        banner("Section 6 end-to-end: saturation throughput with "
               "parallel program/erase"),
        format_table(["Program/erase speedup", "Peak TPS",
                      "vs serial"], rows),
        "",
        "Paper (Section 5.3): removing Flash-management time entirely",
        "buys at most ~2.5x, because reads dominate the bus; parallel",
        "cleaning approaches that bound.",
    ])
    return peaks, report


def test_sec6_parallel_cleaning_end_to_end(benchmark, record):
    peaks, report = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    record("sec6_parallel_timed", report)
    baseline = peaks[1.0]
    # Parallel cleaning raises the saturation point materially...
    assert peaks[7.0] > baseline * 1.3
    # ...but cannot beat the reads-only bound of Section 5.3.
    assert peaks[7.0] < baseline * 3.0
    # Monotone in concurrency.
    assert peaks[4.0] <= peaks[7.0] * 1.05
