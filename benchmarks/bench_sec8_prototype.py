"""Section 8 — the planned 128 MB prototype's narrow data path.

"The system will have too few chips to transfer an entire page in a
single memory cycle, so techniques will be tested that can maintain
reasonable performance levels even with a lower transfer rate."

Measures copy-on-write latency and flush bandwidth across data-path
widths, and the effectiveness of critical-word-first acknowledgement at
hiding the multi-beat page copy from the host.
"""

import random

import pytest

from repro.analysis import banner, format_table
from repro.core import (EnvyConfig, PrototypeController,
                        narrow_path_timings, prototype_config)

CHIP_COUNTS = [256, 64, 32, 16, 8]


def timing_table():
    rows = []
    for chips in CHIP_COUNTS:
        if chips == 256:
            timings = narrow_path_timings(EnvyConfig.paper())
        else:
            timings = narrow_path_timings(prototype_config(chips=chips))
        rows.append([chips, timings.beats_per_page,
                     timings.write_full_copy_ns,
                     timings.write_critical_word_ns,
                     timings.flush_total_ns])
    return rows


def measured_latencies():
    """Drive a shrunken narrow-path controller both ways."""
    results = {}
    for critical in (False, True):
        config = EnvyConfig.scaled(num_segments=8, pages_per_segment=32,
                                   chips_per_bank=8)
        system = PrototypeController(config, critical_word_first=critical)
        rng = random.Random(0)
        for _ in range(2500):
            system.write(rng.randrange(system.size_bytes - 8), b"x" * 8)
            system.background_work(10 ** 12)  # idle gaps between writes
        results[critical] = system.metrics.write_latency.mean_ns
    return results


def run_experiment():
    rows = timing_table()
    measured = measured_latencies()
    report = "\n".join([
        banner("Section 8: the 128 MB prototype's narrow data path"),
        format_table(["Chips (width B)", "Beats/page", "CoW full ns",
                      "CoW crit-word ns", "Flush ns"], rows),
        "",
        f"measured mean write latency (8-byte-wide path):",
        f"  full page copy before ack : {measured[False]:.0f} ns",
        f"  critical-word-first ack   : {measured[True]:.0f} ns",
        "",
        "The wide system (256 chips) is the single-beat special case;",
        "critical-word-first restores its host-visible write latency on",
        "any width, leaving only the flush-bandwidth penalty.",
    ])
    return rows, measured, report


def test_sec8_prototype(benchmark, record):
    rows, measured, report = benchmark.pedantic(run_experiment, rounds=1,
                                                iterations=1)
    record("sec8_prototype", report)
    by_chips = {row[0]: row for row in rows}
    # The paper-scale system transfers a page in one cycle.
    assert by_chips[256][1] == 1
    # The 32-chip prototype needs 8 beats and ~1 us copy-on-write.
    assert by_chips[32][1] == 8
    assert by_chips[32][2] == pytest.approx(960, abs=50)
    # Critical-word-first recovers the wide-path latency.
    assert by_chips[32][3] == by_chips[256][3]
    assert measured[True] < measured[False] / 2
