#!/usr/bin/env python
"""Sharded-service benchmark entry point (see ``repro.service.bench``).

Measures service throughput and per-tenant p99 vs shard count and
tenant skew, gates the 4-shard scaling claim (>=2.5x the 1-shard
simulated throughput on the canonical zipf scenario), and emits
``BENCH_SERVICE.json``:

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_service.py --smoke \\
        --output BENCH_SERVICE.current.json \\
        --compare BENCH_SERVICE.smoke.json

Like ``bench_perf.py`` this is a plain script, not a pytest benchmark:
CI calls it directly and gates on its exit status.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
