"""Figure 12 (table) — eNVy Simulation Parameters.

Regenerates the configuration table from the library's defaults and runs
the page-size ablation behind Section 3.3's choice of 256-byte pages:
smaller pages need more page-table SRAM; larger pages write more
unmodified data per flush (higher write amplification for word-sized
updates).
"""

import pytest

from repro.analysis import banner, format_table
from repro.core import EnvyConfig, TpcParams
from repro.core.config import MIB


def parameter_table():
    config = EnvyConfig.paper()
    flash = config.flash
    tpc = TpcParams()
    rows = [
        ["Flash array size", f"{flash.array_bytes // (1 << 30)} GiB"],
        ["Flash chip type", f"{flash.chip_bytes // (1 << 20)} MiB x 8 bits"],
        ["# of Flash chips", flash.num_chips],
        ["# of Flash banks", flash.num_banks],
        ["# of chips/bank", flash.chips_per_bank],
        ["Read time", f"{flash.read_ns} ns"],
        ["Write time", f"{flash.write_ns} ns"],
        ["Program time", f"{flash.program_ns} ns"],
        ["Erase time", f"{flash.erase_ns // 1_000_000} ms"],
        ["Erase blocks/chip", flash.erase_blocks_per_chip],
        ["Segments", flash.num_segments],
        ["Segment size", f"{flash.segment_bytes // MIB} MiB"],
        ["Page size", f"{config.page_bytes} B"],
        ["SRAM write buffer", f"{config.sram.buffer_bytes // MIB} MiB"],
        ["SRAM page table", f"{config.page_table_bytes // MIB} MiB"],
        ["BTree fanout", tpc.btree_fanout],
        ["Branch records", tpc.num_branches],
        ["Teller records", tpc.num_tellers],
        ["Account records", f"{tpc.num_accounts:,}"],
        ["Account index levels", tpc.index_levels(tpc.num_accounts)],
    ]
    return format_table(["Parameter", "Value"], rows)


def page_size_ablation():
    """Section 3.3's trade-off, quantified per candidate page size."""
    rows = []
    for page_bytes in (64, 128, 256, 512, 1024, 4096):
        flash = EnvyConfig.paper().flash
        total_pages = flash.array_bytes // page_bytes
        table_mib = total_pages * 6 / MIB
        # Unmodified bytes programmed per single-word (8 B) update.
        amplification = page_bytes / 8
        rows.append([page_bytes, f"{table_mib:,.0f} MiB",
                     f"{amplification:,.0f}x"])
    return format_table(
        ["Page size", "Page-table SRAM (2 GiB array)",
         "Flush bytes per 8 B update"], rows)


def run_table():
    report = "\n".join([
        banner("Figure 12: eNVy simulation parameters"),
        parameter_table(),
        "",
        banner("Ablation: the Section 3.3 page-size trade-off"),
        page_size_ablation(),
        "",
        "Paper: 256 B chosen; 'larger pages lead to a smaller page",
        "table ... larger pages cause more unmodified data to be",
        "written for every word changed.'",
    ])
    return report


def test_tab12_parameters(benchmark, record):
    report = benchmark.pedantic(run_table, rounds=1, iterations=1)
    record("tab12_parameters", report)
    config = EnvyConfig.paper()
    assert config.flash.num_chips == 2048
    assert config.flash.num_segments == 128
    assert config.page_table_bytes == 48 * MIB
    assert TpcParams().num_accounts == 15_500_000
