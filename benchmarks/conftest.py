"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints the same rows/series its paper figure plots, and
appends them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
be assembled from a single ``pytest benchmarks/ --benchmark-only`` run.

Scale: the benchmarks default to configurations that finish in seconds
to a few minutes while preserving the ratios the results depend on (see
DESIGN.md).  Set ``ENVY_BENCH_SCALE=full`` for larger arrays and longer
runs closer to paper scale.  The sweep-shaped figures (6, 8, 9, 10, 13,
14, 15) fan their points out through :func:`repro.perf.run_sweep`, so
``ENVY_JOBS=<n>`` runs them across ``n`` worker processes with results
identical to a serial run.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("ENVY_BENCH_SCALE", "quick") == "full"


@pytest.fixture
def record():
    """Print an experiment's output and persist it under results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
