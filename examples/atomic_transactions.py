#!/usr/bin/env python3
"""Hardware atomic transactions on eNVy (Section 6).

eNVy's copy-on-write leaves the old Flash page intact when a page is
modified — a free shadow copy.  The transaction manager tracks those
shadows and protects them from the cleaner, so an application can roll
back simply by restoring from Flash: no logging, no checkpoint files.

The demo moves money between two accounts with an invariant (the total
is conserved), injects a failure mid-transfer, and shows the rollback
restoring a consistent state even while heavy traffic forces cleaning.

Run:  python examples/atomic_transactions.py
"""

import random
import struct

from repro import EnvyConfig, EnvySystem, TransactionManager

WORD = struct.Struct("<q")
ACCOUNT_A = 0          # byte address of account A's balance
ACCOUNT_B = 4096       # byte address of account B's balance


def balance(system: EnvySystem, address: int) -> int:
    return WORD.unpack(system.read(address, 8))[0]


def set_balance(writer, address: int, value: int) -> None:
    writer.write(address, WORD.pack(value))


def main() -> None:
    system = EnvySystem(EnvyConfig.small(num_segments=16,
                                         pages_per_segment=64))
    manager = TransactionManager(system)

    set_balance(system, ACCOUNT_A, 900)
    set_balance(system, ACCOUNT_B, 100)
    print(f"initial:   A={balance(system, ACCOUNT_A)} "
          f"B={balance(system, ACCOUNT_B)} (total 1000)")

    # --- a successful transfer ---------------------------------------
    with manager.transaction() as txn:
        set_balance(txn, ACCOUNT_A, 900 - 250)
        set_balance(txn, ACCOUNT_B, 100 + 250)
    print(f"committed: A={balance(system, ACCOUNT_A)} "
          f"B={balance(system, ACCOUNT_B)} (total 1000)")

    # --- a transfer that fails halfway --------------------------------
    try:
        with manager.transaction() as txn:
            set_balance(txn, ACCOUNT_A, 650 - 500)
            # A is debited but B is not yet credited: the invariant is
            # broken *inside* the transaction...
            raise ConnectionError("network died mid-transfer")
    except ConnectionError as exc:
        print(f"\nfailure injected: {exc}")
    total = balance(system, ACCOUNT_A) + balance(system, ACCOUNT_B)
    print(f"rolled back: A={balance(system, ACCOUNT_A)} "
          f"B={balance(system, ACCOUNT_B)} (total {total})")
    assert total == 1000

    # --- rollback under cleaning pressure -----------------------------
    print("\nopening a transaction, then hammering the array so the")
    print("cleaner erases segments holding the shadow copies...")
    txn = manager.transaction()
    set_balance(txn, ACCOUNT_A, -10_000)
    rng = random.Random(3)
    for _ in range(8000):
        system.write(rng.randrange(8192, system.size_bytes - 8),
                     rng.randbytes(8))
    print(f"  segments erased meanwhile: {system.metrics.erases}")
    print(f"  shadow pages rescued from erasure: "
          f"{manager.rescued_pages}")
    txn.rollback()
    print(f"after rollback: A={balance(system, ACCOUNT_A)} "
          f"(pre-transaction value restored)")
    assert balance(system, ACCOUNT_A) == 650


if __name__ == "__main__":
    main()
