#!/usr/bin/env python3
"""Exploring the Section 4 cleaning policies.

Runs the four cleaners (greedy, FIFO, locality gathering, hybrid) under
increasing write locality and prints the cleaning-cost table of
Figure 8, then visualises how locality gathering physically sorts hot
data toward segment 0 (the Figure 7 intuition) with a terminal heat map.

Run:  python examples/cleaning_policies.py
"""

from repro import (FifoPolicy, GreedyPolicy, HybridPolicy,
                   LocalityGatheringPolicy, PolicySimulator,
                   measure_cleaning_cost)
from repro.workloads import BimodalWorkload

SEGMENTS = 64
PAGES = 128
LOCALITIES = ["50/50", "30/70", "10/90", "5/95"]


def cost_table() -> None:
    print(f"cleaning cost (cleaner programs per flushed page), "
          f"{SEGMENTS} segments x {PAGES} pages, 80% utilization\n")
    print(f"{'locality':>10} {'greedy':>8} {'fifo':>8} "
          f"{'locality':>9} {'hybrid':>8}")
    factories = (GreedyPolicy, FifoPolicy, LocalityGatheringPolicy,
                 lambda: HybridPolicy(partition_segments=8))
    for label in LOCALITIES:
        costs = []
        for factory in factories:
            result = measure_cleaning_cost(
                factory(), label, num_segments=SEGMENTS,
                pages_per_segment=PAGES, turnovers=3, warmup_turnovers=8)
            costs.append(result.cleaning_cost)
        print(f"{label:>10} " + " ".join(f"{cost:8.2f}" for cost in costs))
    print("\nnote the paper's shapes: greedy rises with locality,")
    print("locality gathering is pinned near 4 under uniform access and")
    print("falls with locality, hybrid gets the best of both.")


def heat_map() -> None:
    policy = LocalityGatheringPolicy()
    simulator = PolicySimulator(policy, num_segments=SEGMENTS,
                                pages_per_segment=PAGES,
                                utilization=0.8, buffer_pages=0)
    live = simulator.store.num_logical_pages
    workload = BimodalWorkload(live, 0.10, 0.90, seed=1)
    print("\nlocality gathering under a 10/90 workload")
    print("each char = one segment, hot-data share: "
          "'.' none  '-' some  '#' mostly hot\n")
    for step in range(5):
        simulator.run(workload, live * 3, warmup_writes=0)
        store = simulator.store
        hot_counts = [0] * SEGMENTS
        for page in range(workload.hot_pages):
            location = store.page_location[page]
            if location is not None and location[0] >= 0:
                hot_counts[location[0]] += 1
        cells = []
        for position in store.positions:
            share = (hot_counts[position.index]
                     / max(1, position.live_count))
            cells.append("#" if share > 0.5 else
                         "-" if share > 0.05 else ".")
        print(f"  after {live * 3 * (step + 1):>7,} writes  "
              + "".join(cells))
    utilizations = [p.utilization for p in simulator.store.positions]
    print(f"\nhot segments end up lightly filled "
          f"(seg 0-7 mean utilization "
          f"{sum(utilizations[:8]) / 8:.2f}) while cold segments pack "
          f"tight ({sum(utilizations[-8:]) / 8:.2f}), which is where "
          f"the cleaning savings come from.")


def main() -> None:
    cost_table()
    heat_map()


if __name__ == "__main__":
    main()
