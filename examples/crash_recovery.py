#!/usr/bin/env python3
"""Power-failure recovery at the worst possible moments (Section 3.4).

"The state of the cleaning process is kept in persistent memory so the
controller can recover quickly after a failure."

This demo arms a crash injector that cuts the power in the middle of
Flash operations — during page copies, between a clean's commit and its
erase, mid-flush — then runs recovery and proves no committed byte was
lost, over and over.

Run:  python examples/crash_recovery.py
"""

import random

from repro import EnvyConfig, EnvySystem
from repro.core.recovery import (CleanPhase, CrashInjector,
                                 SimulatedPowerFailure, attach_journal,
                                 recover)


def main() -> None:
    system = EnvySystem(EnvyConfig.small(num_segments=8,
                                         pages_per_segment=16))
    journal = attach_journal(system)
    injector = CrashInjector(system, journal)
    rng = random.Random(2024)

    # Build up committed state.
    shadow = {}
    for _ in range(1200):
        address = rng.randrange(system.size_bytes - 8) & ~7
        value = rng.randbytes(8)
        system.write(address, value)
        shadow[address] = value
    print(f"committed {len(shadow):,} distinct words; "
          f"{system.metrics.erases} segments already erased by cleaning")

    crashes = {phase: 0 for phase in CleanPhase}
    survived = 0
    for round_number in range(25):
        injector.arm(rng.randrange(1, 30))
        interrupted_write = None
        try:
            for _ in range(400):
                address = rng.randrange(system.size_bytes - 8) & ~7
                value = rng.randbytes(8)
                interrupted_write = address
                system.write(address, value)
                shadow[address] = value
                interrupted_write = None
        except SimulatedPowerFailure:
            phase = journal.phase
            crashes[phase] += 1
            if interrupted_write is not None:
                # The in-flight host write never completed; like any
                # transaction system, the application re-runs it.
                shadow.pop(interrupted_write, None)
            recover(system, journal)
        injector.disarm()
        # Verify a sample of committed data after every crash.
        for address in rng.sample(list(shadow), 50):
            assert system.read(address, 8) == shadow[address]
        survived += 1

    print(f"\nsurvived {survived} rounds of random power failures:")
    print(f"  during cleaning copy phase : {crashes[CleanPhase.COPYING]}")
    print(f"  after commit, before erase : "
          f"{crashes[CleanPhase.COMMITTED]}")
    print(f"  during ordinary flushes    : {crashes[CleanPhase.IDLE]}")

    # Full verification at the end.
    for address, value in shadow.items():
        assert system.read(address, 8) == value
    system.check_consistency()
    print(f"\nall {len(shadow):,} committed words verified; "
          f"store/array/page-table consistency holds.")
    print("shadow paging + the cleaning journal make every crash point "
          "recoverable.")


if __name__ == "__main__":
    main()
