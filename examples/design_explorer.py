#!/usr/bin/env python3
"""Design-space exploration with the closed-form capacity model.

The analytic model (repro.sim.analytic) predicts saturation throughput,
time breakdown and cleaning cost straight from a configuration — no
simulation — so whole design spaces can be swept in milliseconds.  This
explorer reproduces three of the paper's design arguments as charts:

* the Figure 14 utilization cliff (why reserve 20%);
* program-time sensitivity (why the Section 6 parallel-programming
  extension pays);
* the aging trajectory over the array's rated life (Sections 2 + 5.5).

Run:  python examples/design_explorer.py
"""

import dataclasses

from repro.analysis import line_chart
from repro.core import EnvyConfig
from repro.flash.endurance import ArrayAging
from repro.sim import CapacityModel, TransactionProfile


def utilization_cliff() -> None:
    model = CapacityModel(EnvyConfig.paper(), TransactionProfile())
    points = []
    for percent in range(30, 96, 5):
        utilization = percent / 100
        tps = model.utilization_curve([utilization])[utilization]
        points.append((percent, tps / 1000))
    print("Saturation throughput vs Flash utilization "
          "(the Figure 14 cliff):\n")
    print(line_chart({"kTPS": points}, width=56, height=12,
                     x_label="array utilization (%)", y_min=0))
    print()


def program_time_sensitivity() -> None:
    series = {}
    for label, speedup in (("serial (4us)", 1), ("4-way (1us)", 4),
                           ("8-way (0.5us)", 8)):
        config = EnvyConfig.paper()
        flash = dataclasses.replace(config.flash,
                                    program_ns=4000 // speedup,
                                    erase_ns=config.flash.erase_ns
                                    // speedup)
        config = dataclasses.replace(config, flash=flash)
        model = CapacityModel(config, TransactionProfile())
        curve = model.utilization_curve([u / 100
                                         for u in range(40, 96, 5)])
        series[label] = [(u * 100, tps / 1000)
                         for u, tps in curve.items()]
    print("Saturation vs utilization per program speed "
          "(Section 6's parallel programming):\n")
    print(line_chart(series, width=56, height=12,
                     x_label="array utilization (%)", y_min=0))
    print()


def aging_trajectory() -> None:
    aging = ArrayAging(EnvyConfig.paper(), page_flush_rate=10_376,
                       cleaning_cost=1.97)
    rated = aging.rated_life_years()
    tput = [(year, aging.throughput_decay(year, 30_000) / 1000)
            for year in range(0, int(rated * 2) + 1)]
    program = [(year, aging.program_time_after_years(year) / 1000)
               for year in range(0, int(rated * 2) + 1)]
    print(f"Aging at 10,000 TPS (rated life {rated:.1f} years):\n")
    print(line_chart({"saturation kTPS": tput}, width=56, height=10,
                     x_label="years of continuous operation", y_min=0))
    print()
    print(line_chart({"program time (us)": program}, width=56, height=8,
                     x_label="years of continuous operation"))
    print()


def main() -> None:
    utilization_cliff()
    program_time_sensitivity()
    aging_trajectory()
    print("every curve above is closed-form — see "
          "benchmarks/bench_analytic_model.py for the validation "
          "against the event-driven simulator.")


if __name__ == "__main__":
    main()
