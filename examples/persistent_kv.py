#!/usr/bin/env python3
"""A persistent key-value store in a few hundred lines — the intro's
"reductions in code size" claim as a working program.

Because eNVy already provides persistence, atomic commits, wear leveling
and crash recovery at the memory layer, the KV store on top is just an
index and an allocator: no write-ahead log, no fsync choreography, no
page cache.  The demo stores data, survives a power failure, churns the
store hard enough to force cleaning, and prints what the storage layer
absorbed on the application's behalf.

Run:  python examples/persistent_kv.py
"""

import random

from repro import EnvyConfig, EnvySystem
from repro.db.kvstore import KVStore


def main() -> None:
    system = EnvySystem(EnvyConfig.small(num_segments=16,
                                         pages_per_segment=128))
    store = KVStore(system)

    # --- ordinary use --------------------------------------------------
    store.put(b"paper", b"eNVy: A Non-Volatile, Main Memory Storage "
                        b"System")
    store.put(b"venue", b"ASPLOS 1994")
    store.put(b"claim", b"near-SRAM persistent storage from Flash")
    print(f"{len(store)} keys stored;")
    print(f"  paper -> {store.get(b'paper').decode()}")
    print(f"  venue -> {store.get(b'venue').decode()}")

    # --- durability -----------------------------------------------------
    system.power_cycle()
    assert store.get(b"claim") == (b"near-SRAM persistent storage from "
                                   b"Flash")
    print("\npower failure -> all keys intact (battery-backed SRAM + "
          "Flash)")

    # --- update churn: force the cleaner to work ------------------------
    rng = random.Random(0)
    for _ in range(4000):
        key = f"user:{rng.randrange(150)}".encode()
        store.put(key, rng.randbytes(rng.randrange(80, 300)))
    stats = store.stats()
    metrics = system.metrics
    print(f"\nafter 4,000 updates across 150 hot keys:")
    print(f"  live keys          : {stats['keys']}")
    print(f"  arena used/free    : {stats['arena_used']:,} / "
          f"{stats['arena_free']:,} bytes")
    print(f"  buffer hit rate    : {metrics.buffer_hit_rate:.0%}")
    print(f"  pages flushed      : {metrics.flushes:,}")
    print(f"  cleaning cost      : {metrics.cleaning_cost:.2f}")
    print(f"  segments erased    : {metrics.erases}")
    wear = system.array.wear_stats()
    print(f"  wear spread        : {wear.spread} cycles")
    print("\nnone of that required a line of code in the KV store — "
          "the storage layer does it.")

    # --- the records are just memory ------------------------------------
    value = store.get(b"user:7")
    address_note = ("values live at plain byte addresses; "
                    f"user:7 is {len(value)} bytes readable via "
                    "system.read() like any other memory")
    print(f"\n{address_note}")


if __name__ == "__main__":
    main()
