#!/usr/bin/env python3
"""Quickstart: eNVy as a persistent, memory-speed linear address space.

Builds a small eNVy system, uses it like ordinary memory (word reads and
writes, no blocks, no serialisation), shows the latency model, survives
a power failure, and prints what the Flash-management machinery did
underneath.

Run:  python examples/quickstart.py
"""

import random

from repro import EnvyConfig, EnvySystem


def main() -> None:
    # A laptop-scale array: 32 segments x 256 pages x 256 B (~2 MiB of
    # persistent space at 80% provisioning).  EnvyConfig.paper() gives
    # the full 2 GB system of the paper.
    config = EnvyConfig.small(num_segments=32, pages_per_segment=256)
    system = EnvySystem(config)
    print(f"eNVy system: {system.size_bytes:,} bytes of linear "
          f"non-volatile memory")
    print(f"  flash: {config.flash.num_segments} segments of "
          f"{config.flash.segment_bytes:,} B, "
          f"{config.page_bytes} B pages")
    print(f"  SRAM:  {config.sram.buffer_bytes:,} B write buffer + "
          f"{config.page_table_bytes:,} B page table")

    # --- plain loads and stores -------------------------------------
    system.write(0, b"Hello, persistent world!")
    greeting = system.read(0, 24)
    print(f"\nread back: {greeting!r}")

    # Word-granularity in-place updates: no read-modify-write of disk
    # blocks, no save format (Section 1's interface argument).
    system.write(7, b"eNVy")
    print(f"after in-place patch: {system.read(0, 24)!r}")

    # --- the latency model -------------------------------------------
    _, read_ns = system.read_timed(0, 8)
    write_ns = system.write(4096, b"12345678")      # copy-on-write
    rewrite_ns = system.write(4097, b"x")           # SRAM buffer hit
    print(f"\nlatencies: read {read_ns} ns, first write {write_ns} ns "
          f"(copy-on-write), rewrite {rewrite_ns} ns (buffered)")

    # --- stress it so cleaning has to run ----------------------------
    rng = random.Random(42)
    for _ in range(30_000):
        address = rng.randrange(system.size_bytes - 8)
        system.write(address, rng.randbytes(8))
    metrics = system.metrics
    print(f"\nafter 30,000 random writes:")
    print(f"  buffer hit rate : {metrics.buffer_hit_rate:.1%}")
    print(f"  pages flushed   : {metrics.flushes:,}")
    print(f"  cleaning cost   : {metrics.cleaning_cost:.2f} "
          f"(cleaner programs per flushed page)")
    print(f"  segments erased : {metrics.erases:,}")
    wear = system.array.wear_stats()
    print(f"  wear spread     : {wear.spread} erase cycles "
          f"(max {wear.max_erases})")

    # --- power failure ------------------------------------------------
    system.write(100, b"written moments before the outage")
    system.power_cycle()
    survived = system.read(100, 33)
    print(f"\nafter power cycle: {survived!r}")
    system.check_consistency()
    print("consistency check: OK")


if __name__ == "__main__":
    main()
