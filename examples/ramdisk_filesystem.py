#!/usr/bin/env python3
"""Backwards compatibility: a block filesystem on eNVy (Section 1).

"For backwards compatibility, a simple RAM disk program can make a
memory array usable by a standard file system."  This demo formats a
small FAT-style filesystem on a 512-byte-sector RAM-disk view of eNVy,
stores files, survives a power failure, and contrasts the block
interface's cost against native memory-mapped access.

Run:  python examples/ramdisk_filesystem.py
"""

from repro import BlockDevice, EnvyConfig, EnvySystem, FileSystem


def main() -> None:
    system = EnvySystem(EnvyConfig.small(num_segments=16,
                                         pages_per_segment=128))
    device = BlockDevice(system, block_bytes=512)
    print(f"RAM disk: {device.num_blocks} sectors of "
          f"{device.block_bytes} B over {system.size_bytes:,} B of eNVy")

    filesystem = FileSystem(device)
    filesystem.format()
    print(f"formatted: {filesystem.free_blocks()} data blocks free")

    # --- ordinary file operations -------------------------------------
    filesystem.write_file("readme.txt",
                          b"Files on a flash array, via a RAM disk.\n")
    filesystem.write_file("data.bin", bytes(range(256)) * 40)  # 10 KiB
    print(f"\nfiles: {filesystem.list_files()}")
    entry = filesystem.stat("data.bin")
    print(f"data.bin: {entry.size:,} bytes starting at block "
          f"{entry.first_block}")
    assert filesystem.read_file("data.bin") == bytes(range(256)) * 40

    filesystem.delete("readme.txt")
    print(f"after delete: {filesystem.list_files()}, "
          f"{filesystem.free_blocks()} blocks free")

    # --- power failure and remount -------------------------------------
    system.power_cycle()
    remounted = FileSystem(BlockDevice(system, block_bytes=512))
    remounted.mount()
    assert remounted.read_file("data.bin") == bytes(range(256)) * 40
    print("\npower cycle + remount: data.bin intact")

    # --- why the paper prefers the memory interface ---------------------
    system.metrics.reset()
    device.update_bytes(5, 100, b"!!")      # 2-byte change, block API
    block_writes = system.metrics.writes
    block_reads = system.metrics.reads
    system.metrics.reset()
    system.write(5 * 512 + 100, b"!!")      # same change, memory API
    memory_writes = system.metrics.writes
    print(f"\nupdating 2 bytes through the block interface: "
          f"{block_reads} page reads + {block_writes} page writes")
    print(f"updating 2 bytes through the memory interface: "
          f"{memory_writes} page write(s), no reads")
    print("— the word-addressable interface is the point of eNVy "
          "(Section 1).")


if __name__ == "__main__":
    main()
