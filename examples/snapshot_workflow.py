#!/usr/bin/env python3
"""Checkpointing a long-running experiment with system snapshots.

Reaching cleaning steady state takes many array turnovers — expensive to
redo for every experiment.  Snapshots park the *entire* system state
(Flash contents and wear, write buffer, page table, cleaning policy
registers) in a file; loading it resumes bit-for-bit, like moving a
battery-backed board between hosts.

The demo warms an array to steady state once, snapshots it, then runs
two different follow-on experiments from the same starting point and
shows they observe identical storage state.

Run:  python examples/snapshot_workflow.py
"""

import os
import random
import tempfile
import time

from repro import EnvyConfig, EnvySystem
from repro.core import load_system, save_system


def warm_up(system: EnvySystem, turnovers: int = 4) -> None:
    rng = random.Random(99)
    live = system.size_bytes
    for _ in range(turnovers * live // (system.config.page_bytes * 2)):
        system.write(rng.randrange(live - 8), rng.randbytes(8))


def main() -> None:
    system = EnvySystem(EnvyConfig.small(num_segments=16,
                                         pages_per_segment=64))
    print("warming the array to cleaning steady state...")
    start = time.perf_counter()
    warm_up(system)
    warm_seconds = time.perf_counter() - start
    cost = system.metrics.cleaning_cost
    print(f"warmed in {warm_seconds:.1f}s: cleaning cost {cost:.2f}, "
          f"{system.metrics.erases} erases")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "steady-state.envy")
        save_system(system, path)
        size = os.path.getsize(path)
        print(f"snapshot: {size:,} bytes -> {path}")

        # Two experiments branch from the identical starting point.
        results = {}
        for name, hot_fraction in (("uniform", 1.0), ("skewed", 0.05)):
            branch = load_system(path)
            rng = random.Random(7)
            branch.metrics.reset()
            hot_span = int(branch.size_bytes * hot_fraction)
            for _ in range(8000):
                branch.write(rng.randrange(max(8, hot_span - 8)),
                             rng.randbytes(8))
            results[name] = branch.metrics.cleaning_cost
            branch.check_consistency()
        print(f"\nbranched experiments from one checkpoint:")
        for name, value in results.items():
            print(f"  {name:>8} follow-on workload: cleaning cost "
                  f"{value:.2f}")

        # Determinism: two loads of the same snapshot stay in lock-step.
        a = load_system(path)
        b = load_system(path)
        rng = random.Random(1)
        for _ in range(3000):
            address = rng.randrange(a.size_bytes - 8)
            payload = rng.randbytes(8)
            a.write(address, payload)
            b.write(address, payload)
        assert a.store.flush_count == b.store.flush_count
        assert a.store.clean_copy_count == b.store.clean_copy_count
        print("\ntwo loads of the snapshot, same inputs: "
              f"{a.store.flush_count} flushes and "
              f"{a.store.clean_copy_count} clean copies in both — "
              "bit-for-bit lock-step.")


if __name__ == "__main__":
    main()
