#!/usr/bin/env python3
"""Reproducing the paper's headline experiment (Figures 13 and 15).

Sweeps the TPC-A request rate through the timed simulator and prints
throughput and latency curves: throughput tracks the offered load until
the cleaning system saturates, reads stay flat near raw access time, and
write latency jumps by an order of magnitude at the cliff.

Takes a minute or two.  Run:  python examples/throughput_experiment.py
"""

from repro import simulate_tpca


def bar(value: float, full_scale: float, width: int = 30) -> str:
    filled = int(min(1.0, value / full_scale) * width)
    return "#" * filled


def main() -> None:
    rates = [5_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000]
    print("TPC-A on eNVy (scaled array, paper timing ratios) —")
    print("this is Figure 13's throughput curve and Figure 15's "
          "latency curves.\n")
    print(f"{'offered':>8} {'completed':>10} {'read ns':>8} "
          f"{'write ns':>9}  throughput")
    results = []
    for rate in rates:
        stats = simulate_tpca(rate, duration_s=0.12, warmup_s=0.03,
                              prewarm_turnovers=8)
        results.append(stats)
        print(f"{rate:>8,} {stats.throughput_tps:>10,.0f} "
              f"{stats.read_latency.mean_ns:>8.0f} "
              f"{stats.write_latency.mean_ns:>9.0f}  "
              f"{bar(stats.throughput_tps, 60_000)}")
    saturated = [s for s in results if s.saturated]
    if saturated:
        peak = max(s.throughput_tps for s in results)
        print(f"\nsaturation: ~{peak:,.0f} TPS "
              f"(paper: ~30,000 TPS at full 2 GB scale)")
    light, heavy = results[0], results[-1]
    print(f"write latency: {light.write_latency.mean_ns:.0f} ns under "
          f"light load -> {heavy.write_latency.mean_ns:.0f} ns past "
          f"saturation (paper: 200 ns -> 7.2 us)")
    print(f"read latency stays flat: "
          f"{light.read_latency.mean_ns:.0f} -> "
          f"{heavy.read_latency.mean_ns:.0f} ns, because host accesses "
          f"suspend the controller's long operations (Section 3.4)")
    print("\ncontroller time at saturation:")
    for activity, share in heavy.time_breakdown().items():
        print(f"  {activity:>10}: {share:>5.1%} {bar(share, 1.0, 20)}")


if __name__ == "__main__":
    main()
