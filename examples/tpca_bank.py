#!/usr/bin/env python3
"""A TPC-A banking database running on eNVy (Section 5.2).

The workload class the paper's evaluation targets: a small, I/O-bound
transaction system.  Branch, teller and account balance records live as
100-byte records in eNVy's linear memory, indexed by B-trees with 32
entries per node; every transaction searches three trees and updates
three balances — all with plain loads and stores.

Run:  python examples/tpca_bank.py
"""

import random
import time

from repro import EnvyConfig, EnvySystem, TpcParams, TpcaDatabase


def main() -> None:
    # A database scaled to a few thousand accounts so the demo loads in
    # well under a second; the same code runs the paper's 15.5 million
    # accounts on the 2 GB configuration.
    config = EnvyConfig.small(num_segments=32, pages_per_segment=256)
    system = EnvySystem(config)
    params = TpcParams().scaled_to_accounts(5000)
    database = TpcaDatabase(system, params)

    print(f"loading {params.num_accounts:,} accounts, "
          f"{params.num_tellers} tellers, {params.num_branches} "
          f"branch(es) into {system.size_bytes:,} B of eNVy memory...")
    start = time.perf_counter()
    database.load(initial_balance=1_000)
    print(f"loaded in {time.perf_counter() - start:.2f}s "
          f"({database.layout.total_bytes:,} B including indexes)")

    # --- one transaction, narrated -----------------------------------
    result = database.transaction(account=1234, delta=+250)
    print(f"\ndeposit $250 to account 1234:")
    print(f"  account balance: {result.account_balance}")
    print(f"  teller {result.teller} balance: {result.teller_balance}")
    print(f"  branch {result.branch} balance: {result.branch_balance}")

    # --- a burst of random transactions -------------------------------
    count = 5_000
    rng = random.Random(7)
    start = time.perf_counter()
    for _ in range(count):
        database.transaction(rng.randrange(params.num_accounts),
                             rng.randint(-500, 500))
    elapsed = time.perf_counter() - start
    print(f"\nran {count:,} transactions in {elapsed:.2f}s "
          f"({count / elapsed:,.0f} txn/s of pure Python)")

    metrics = system.metrics
    print(f"storage work underneath:")
    print(f"  host reads  : {metrics.reads:,} "
          f"(mean {metrics.read_latency.mean_ns:.0f} ns simulated)")
    print(f"  host writes : {metrics.writes:,} "
          f"(mean {metrics.write_latency.mean_ns:.0f} ns simulated)")
    print(f"  buffer hits : {metrics.buffer_hit_rate:.1%} "
          f"(hot teller/branch pages coalesce in SRAM)")
    print(f"  pages flushed: {metrics.flushes:,}, cleaning cost "
          f"{metrics.cleaning_cost:.2f}, erases {metrics.erases:,}")

    # --- the TPC-A consistency condition -------------------------------
    database.check_consistency()
    print("\nTPC-A balance roll-up invariant: OK")

    # --- durability -----------------------------------------------------
    system.power_cycle()
    database.check_consistency()
    print("after power failure: balances intact, invariant still holds")


if __name__ == "__main__":
    main()
