"""eNVy: a non-volatile, main-memory storage system (ASPLOS 1994).

A full reproduction of Wu & Zwaenepoel's eNVy: the Flash substrate, the
battery-backed SRAM write buffer and page table, the copy-on-write
controller presenting a linear persistent memory, the four cleaning
policies of Section 4, the TPC-A database and workload of Section 5, the
hardware extensions of Section 6, and the simulators that regenerate
every figure in the paper's evaluation.

Quick start::

    from repro import EnvySystem, EnvyConfig

    system = EnvySystem(EnvyConfig.small())
    system.write(0, b"persistent bytes at memory speed")
    assert system.read(0, 32).startswith(b"persistent")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from .cleaning import (CleaningPolicy, FifoPolicy, GreedyPolicy,
                       HybridPolicy, LocalityGatheringPolicy,
                       PolicySimulator, SimulationResult, WearLeveler,
                       cleaning_cost, make_policy, measure_cleaning_cost)
from .core import (EnvyConfig, EnvyController, EnvySystem, FlashParams,
                   SramParams, TpcParams, estimate_lifetime, system_cost)
from .db import BTree, TpcaDatabase, TpcaLayout
from .ext import ParallelFlushScheduler, TransactionManager
from .faults import (BadBlockTable, FaultEvent, FaultInjector, FaultPlan,
                     FaultStats, SecDed)
from .flash import FlashArray, FlashBank, FlashChip, FlashSegment
from .obs import (EventBus, LatencyHistogram, ObsEvent, ObservabilityHub,
                  TimeSeriesSampler)
from .ramdisk import BlockDevice, FileSystem
from .service import (CrossShardError, DegradedModeError, EnvyService,
                      LoadGenerator, RebuildScheduler, RedundantRouter,
                      ServiceConfig, ServiceStats, ShardRouter, TenantSpec,
                      TenantStats, TokenBucket)
from .sim import SimStats, TimedSimulator, build_tpca_system, simulate_tpca
from .sram import Mmu, PageTable, WriteBuffer
from .workloads import BimodalWorkload, UniformWorkload

__version__ = "1.0.0"

__all__ = [
    "EnvySystem",
    "EnvyController",
    "EnvyConfig",
    "FlashParams",
    "SramParams",
    "TpcParams",
    "FlashArray",
    "FlashBank",
    "FlashChip",
    "FlashSegment",
    "WriteBuffer",
    "PageTable",
    "Mmu",
    "CleaningPolicy",
    "GreedyPolicy",
    "FifoPolicy",
    "LocalityGatheringPolicy",
    "HybridPolicy",
    "WearLeveler",
    "PolicySimulator",
    "SimulationResult",
    "measure_cleaning_cost",
    "cleaning_cost",
    "make_policy",
    "UniformWorkload",
    "BimodalWorkload",
    "TpcaDatabase",
    "TpcaLayout",
    "BTree",
    "TimedSimulator",
    "SimStats",
    "simulate_tpca",
    "build_tpca_system",
    "TransactionManager",
    "ParallelFlushScheduler",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FaultEvent",
    "SecDed",
    "BadBlockTable",
    "EventBus",
    "ObsEvent",
    "LatencyHistogram",
    "ObservabilityHub",
    "TimeSeriesSampler",
    "BlockDevice",
    "FileSystem",
    "EnvyService",
    "ServiceConfig",
    "ServiceStats",
    "ShardRouter",
    "RedundantRouter",
    "RebuildScheduler",
    "CrossShardError",
    "DegradedModeError",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "LoadGenerator",
    "system_cost",
    "estimate_lifetime",
    "__version__",
]
