"""Command-line interface: ``python -m repro <command>``.

Small front door for the library's experiments:

* ``info``      — print the paper's configuration and cost tables.
* ``policies``  — the Figure 8 cleaning-cost comparison.
* ``tpca``      — one timed TPC-A point (throughput, latency, breakdown).
* ``lifetime``  — the Section 5.5 lifetime calculation.
* ``demo``      — a tiny end-to-end read/write/power-cycle demonstration.
* ``faults``    — run a workload under injected device faults and print
  the controller's health report.
* ``recover``   — chaos demo: cut the power mid-TPC-A, rebuild the store
  from Flash alone, verify against the committed prefix.
* ``observe``   — run a timed TPC-A workload with the observability hub
  attached and render the live-stats dashboard (latency histograms with
  tails, time breakdown, wear heatmap), optionally exporting the
  Perfetto trace / Prometheus metrics / JSONL events.
* ``serve``     — run the sharded multi-tenant storage service
  (``repro.service``): generate a deterministic tenant schedule, fan it
  out over N eNVy shards, and print the service dashboard (per-tenant
  tails, admission-control counters, per-shard summaries).  ``--smoke``
  additionally proves run-to-run and across-``--jobs`` determinism.
* ``trace``     — run the service with request-level tracing on: list
  the slowest requests with their exact critical-path decomposition
  (queue / redundancy / retry / throttle / flush / clean / service),
  print per-tenant tail blame and SLO burn rates, and optionally export
  the Perfetto trace with cross-shard flow links.
* ``backends``  — list the pluggable storage backends and workload
  generators in the plugin registry; ``--check`` runs the
  cross-backend consistency matrix (one recorded TPC-A trace replayed
  on every backend must produce one logical page-state digest);
  ``--record`` saves the reference trace to versioned JSONL.
* ``replay``    — re-drive a recorded run trace against any backend
  (``--backend 'file:path=...'``) or the whole matrix (``--matrix``),
  printing the logical state digest and simulated cost.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import banner, format_table


def cmd_info(args: argparse.Namespace) -> int:
    from .core import EnvyConfig, TpcParams, system_cost

    config = EnvyConfig.paper()
    cost = system_cost(config)
    tpc = TpcParams()
    rows = [
        ["Flash array", f"{config.flash.array_bytes >> 30} GiB, "
         f"{config.flash.num_segments} segments"],
        ["Page size", f"{config.page_bytes} B"],
        ["SRAM buffer / table",
         f"{config.sram.buffer_bytes >> 20} MiB / "
         f"{config.page_table_bytes >> 20} MiB"],
        ["Timing", f"read {config.flash.read_ns} ns, program "
         f"{config.flash.program_ns} ns, erase "
         f"{config.flash.erase_ns // 10**6} ms"],
        ["TPC-A", f"{tpc.num_accounts:,} accounts / "
         f"{tpc.num_tellers:,} tellers / {tpc.num_branches} branches"],
        ["System cost (1994 $)", f"${cost.total_dollars:,.0f} "
         f"(pure SRAM: ${cost.sram_only_alternative():,.0f})"],
    ]
    print(banner("eNVy paper configuration (Figure 12 / Figure 1)"))
    print(format_table(["Parameter", "Value"], rows))
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    from .perf import run_sweep

    localities = args.localities or ["50/50", "20/80", "10/90", "5/95"]
    print(banner(f"Figure 8: cleaning cost vs locality "
                 f"({args.segments} segments x {args.pages} pages)"))
    policies = [("greedy", {}), ("locality", {}),
                ("hybrid", {"partition_segments": args.partition})]
    points = [dict(policy=name, policy_kwargs=kwargs, locality=label,
                   num_segments=args.segments, pages_per_segment=args.pages,
                   turnovers=3, warmup_turnovers=8)
              for label in localities
              for name, kwargs in policies]
    results = run_sweep("repro.perf.points:cleaning_cost_point", points,
                        jobs=args.jobs)
    rows = []
    for index, label in enumerate(localities):
        chunk = results[index * len(policies):(index + 1) * len(policies)]
        rows.append([label] + [result.cleaning_cost for result in chunk])
    print(format_table(["Locality", "Greedy", "Locality gathering",
                        f"Hybrid({args.partition})"], rows))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .perf.bench import main as perf_main

    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    argv += ["--output", args.output,
             "--max-regression", str(args.max_regression)]
    if args.compare:
        argv += ["--compare", args.compare]
    if args.seed_baseline:
        argv += ["--seed-baseline", args.seed_baseline]
    if args.no_scaling:
        argv.append("--no-scaling")
    return perf_main(argv)


def cmd_tpca(args: argparse.Namespace) -> int:
    from .sim import simulate_tpca

    print(f"simulating {args.rate:,.0f} TPS for {args.duration}s "
          f"(plus warm-up)...")
    stats = simulate_tpca(args.rate, duration_s=args.duration,
                          warmup_s=args.duration / 3,
                          utilization=args.utilization)
    print(banner(f"TPC-A at {args.rate:,.0f} requested TPS, "
                 f"{args.utilization:.0%} utilization"))
    rows = [
        ["Throughput", f"{stats.throughput_tps:,.0f} TPS"
         + (" (saturated)" if stats.saturated else "")],
        ["Read latency", f"{stats.read_latency.mean_ns:.0f} ns "
         f"(p50 {stats.read_latency.p50}, p99 {stats.read_latency.p99})"],
        ["Write latency", f"{stats.write_latency.mean_ns:.0f} ns "
         f"(p50 {stats.write_latency.p50}, "
         f"p99 {stats.write_latency.p99})"],
        ["Pages flushed/s", f"{stats.page_flush_rate:,.0f}"],
        ["Cleaning cost", f"{stats.cleaning_cost:.2f}"],
    ]
    print(format_table(["Quantity", "Value"], rows))
    shares = ", ".join(f"{k} {v:.0%}"
                       for k, v in stats.time_breakdown().items())
    print(f"\ntime breakdown: {shares}")
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    from .core import EnvyConfig, estimate_lifetime

    estimate = estimate_lifetime(EnvyConfig.paper(),
                                 page_flush_rate=args.flush_rate,
                                 cleaning_cost=args.cost)
    print(banner("Section 5.5 lifetime model (2 GB, 1M-cycle parts)"))
    print(f"page flush rate : {args.flush_rate:,.0f}/s")
    print(f"cleaning cost   : {args.cost}")
    print(f"lifetime        : {estimate}")
    return 0


def cmd_claims(args: argparse.Namespace) -> int:
    from .paper import verify_claims

    print(banner("Paper-claim verification (fast checks)"))
    failures = 0
    for claim, passed in verify_claims():
        if passed is None:
            status = f"see benchmarks/{claim.bench}"
        elif passed:
            status = "PASS"
        else:
            status = "FAIL"
            failures += 1
        print(f"  [{status:^28}] {claim.section:>12}: "
              f"{claim.statement}")
    print()
    print("slow claims are regenerated by "
          "`pytest benchmarks/ --benchmark-only`.")
    return 1 if failures else 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .core import EnvyConfig, EnvySystem

    system = EnvySystem(EnvyConfig.small())
    system.write(0, b"eNVy says hello")
    print(f"wrote and read back: {system.read(0, 15)!r}")
    system.power_cycle()
    print(f"after power cycle  : {system.read(0, 15)!r}")
    print(f"latencies: read "
          f"{system.read_timed(0, 8)[1]} ns, "
          f"buffered write {system.write(1, b'!')} ns")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import random

    from .core import EnvyConfig, EnvySystem
    from .faults import FaultPlan

    plan = {"light": FaultPlan.light, "harsh": FaultPlan.harsh}[
        args.plan](seed=args.seed)
    config = EnvyConfig.small(num_segments=args.segments,
                              pages_per_segment=args.pages,
                              fault_plan=plan,
                              reserve_segments=args.reserves)
    system = EnvySystem(config)
    rng = random.Random(args.seed)
    page_bytes = config.page_bytes
    num_pages = system.size_bytes // page_bytes
    shadow = {}
    errors = 0
    for _ in range(args.writes):
        page = rng.randrange(num_pages)
        data = bytes([rng.randrange(256)]) * page_bytes
        system.write(page * page_bytes, data)
        shadow[page] = data
    system.drain()
    for page, data in shadow.items():
        if system.read(page * page_bytes, page_bytes) != data:
            errors += 1
    system.check_consistency()
    print(banner(f"{args.writes:,} page writes under the '{args.plan}' "
                 f"fault plan (seed {args.seed})"))
    rows = [[key, str(value)]
            for key, value in system.health_report().items()]
    rows.append(["data errors after readback", str(errors)])
    print(format_table(["Health counter", "Value"], rows))
    return 1 if errors else 0


def cmd_recover(args: argparse.Namespace) -> int:
    from .core.chaos import run_chaos
    from .core.config import EnvyConfig
    from .faults import FaultPlan

    plan = None
    if args.plan != "none":
        plan = {"light": FaultPlan.light, "harsh": FaultPlan.harsh}[
            args.plan](seed=args.seed)
    config = EnvyConfig.small(num_segments=args.segments,
                              pages_per_segment=args.pages,
                              fault_plan=plan,
                              checkpoint_interval_flushes=args.checkpoint)
    # Size the kill-point space with a dry run, then kill inside it.
    dry = run_chaos(config, transactions=args.transactions, kill_at=None,
                    seed=args.seed, recover=False)
    kill_at = args.kill_at if args.kill_at else max(1, dry.ops_seen // 2)
    print(f"replaying {args.transactions} TPC-A transactions "
          f"({dry.ops_seen} flash ops), cutting power at op {kill_at}"
          + (" (torn program)" if args.tear else "") + "...")
    result = run_chaos(config, transactions=args.transactions,
                       kill_at=kill_at, tear=args.tear, seed=args.seed)
    report = result.report
    print(banner("Full power-loss recovery from Flash alone"))
    rows = [[key, str(value)] for key, value in report.as_dict().items()]
    rows.append(["committed pages", str(result.committed_pages)])
    rows.append(["page mismatches", str(len(result.mismatches))])
    health = result.health or {}
    for key in ("write_latency_p50_ns", "write_latency_p99_ns",
                "read_latency_p99_ns"):
        rows.append([key + " (pre-cut)", str(health.get(key, 0))])
    print(format_table(["Recovery statistic", "Value"], rows))
    if result.ok:
        print("\nrecovered store matches the committed prefix exactly.")
        return 0
    print(f"\nMISMATCH on pages {result.mismatches[:10]}")
    return 1


def _print_histogram(title: str, hist, width: int = 40) -> None:
    """Log-linear ASCII rendering of a latency histogram's octaves."""
    print(f"\n{title}: {hist}")
    octaves = hist.octaves()
    if not octaves:
        return
    peak = max(count for _, _, count in octaves)
    for low, high, count in octaves:
        bar = "#" * (round(width * count / peak) if count else 0)
        if count and not bar:
            bar = "."
        print(f"  {low:>11,}..{high:<11,} {count:>9,} {bar}")


def _print_wear_heatmap(controller) -> None:
    """Per-bank rows of per-segment erase-cycle glyphs."""
    glyphs = "▁▂▃▄▅▆▇█"
    counts = controller.array.wear_stats().erase_counts
    lo, hi = min(counts), max(counts)
    span = max(1, hi - lo)
    per_bank = controller.array.params.segments_per_bank
    print(f"\nwear heatmap (erase cycles {lo}..{hi} per physical "
          f"segment, {glyphs[0]}=least {glyphs[-1]}=most):")
    for start in range(0, len(counts), per_bank):
        row = "".join(glyphs[min(len(glyphs) - 1,
                                 (c - lo) * len(glyphs) // (span + 1))]
                      for c in counts[start:start + per_bank])
        print(f"  bank {start // per_bank:>2} {row}")


def _print_observe_dashboard(controller, hub, stats) -> None:
    metrics = controller.metrics
    read, write = metrics.read_latency, metrics.write_latency
    print(banner(f"observability dashboard "
                 f"({stats.simulated_seconds:.3f}s simulated)"))
    rows = [
        ["Throughput", f"{stats.throughput_tps:,.0f} TPS"
         + (" (saturated)" if stats.saturated else "")],
        ["Read latency (ns)",
         f"mean {read.mean_ns:.0f}  p50 {read.p50}  p90 {read.p90}  "
         f"p99 {read.p99}  p999 {read.p999}"],
        ["Write latency (ns)",
         f"mean {write.mean_ns:.0f}  p50 {write.p50}  p90 {write.p90}  "
         f"p99 {write.p99}  p999 {write.p999}"],
        ["Cleaning cost", f"{stats.cleaning_cost:.2f}"],
        ["Events observed", f"{hub.total_events():,} "
         f"({hub.dropped_events:,} dropped)"],
        ["Sampler windows", f"{len(hub.sampler.windows)}"],
    ]
    print(format_table(["Quantity", "Value"], rows))
    shares = ", ".join(f"{k} {v:.0%}"
                       for k, v in stats.time_breakdown().items())
    print(f"\ntime breakdown: {shares}")
    by_kind = hub.time_by_kind()
    if by_kind:
        top = ", ".join(f"{kind} {ns / 1e6:,.1f}ms"
                        for kind, ns in list(by_kind.items())[:6])
        print(f"simulated span time by event kind: {top}")
    _print_histogram("write latency histogram (ns)", write)
    _print_histogram("read latency histogram (ns)", read)
    _print_wear_heatmap(controller)
    window = hub.latest_window()
    if window is not None:
        print(f"\nlast {window.duration_ns / 1e6:.2f}ms window: "
              f"{window.writes} writes, {window.flushes} flushes, "
              f"{window.clean_copies} clean copies, "
              f"buffer {window.buffer_occupancy:.0%} full, "
              f"cleaning backlog {window.cleaning_backlog_pages} pages")


def _print_self_profile(profiler, stats, wall_s: float) -> None:
    import io
    import pstats

    simulated_s = stats.simulated_seconds
    print(banner("self-profile: host cost of simulated time"))
    print(f"wall clock        : {wall_s:.2f}s for {simulated_s:.3f}s "
          f"simulated")
    if simulated_s > 0:
        print(f"host per simulated: {wall_s / simulated_s:.1f}s "
              f"wall per simulated second")
    if profiler is not None:
        out = io.StringIO()
        pstats.Stats(profiler, stream=out).sort_stats(
            "cumulative").print_stats(12)
        lines = [ln for ln in out.getvalue().splitlines() if ln.strip()]
        print("\nhottest paths (cumulative):")
        for line in lines[2:16]:
            print(f"  {line}")


def _validate_exports(written: dict) -> int:
    """Smoke-check the export files; returns a process exit code."""
    import json

    failures = []
    with open(written["trace.json"]) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents", [])
    span_tids = {e.get("tid") for e in events if e.get("ph") == "X"}
    track_names = {e["args"]["name"] for e in events
                   if e.get("ph") == "M" and e.get("name") == "thread_name"}
    if "host ops" not in track_names or "cleaner" not in track_names:
        failures.append("trace.json: host/cleaner tracks missing")
    if 1 not in span_tids or 3 not in span_tids:
        failures.append("trace.json: no spans on the host/cleaner tracks")
    with open(written["metrics.prom"]) as handle:
        prom = handle.read()
    if not prom.startswith("# HELP"):
        failures.append("metrics.prom: not Prometheus text exposition")
    for needed in ("envy_writes_total", "envy_write_latency_ns_bucket",
                   'le="+Inf"'):
        if needed not in prom:
            failures.append(f"metrics.prom: missing {needed}")
    with open(written["events.jsonl"]) as handle:
        count = 0
        for line in handle:
            json.loads(line)
            count += 1
    if count == 0:
        failures.append("events.jsonl: empty")
    with open(written["timeseries.json"]) as handle:
        windows = json.load(handle)
    if not isinstance(windows, list) or not windows:
        failures.append("timeseries.json: no windows")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"exports validated: {len(events)} trace events, "
          f"{count} jsonl events, {len(windows)} windows.")
    return 0


def cmd_observe(args: argparse.Namespace) -> int:
    import time

    from .obs import ObservabilityHub
    from .sim import build_tpca_system

    if args.smoke:
        segments, pages = 16, 64
        rate, duration = 8000.0, 0.03
        window_us = 1000
        out = args.out or "observe-out"
        prewarm = 5.0
    else:
        segments, pages = args.segments, args.pages
        rate, duration = args.rate, args.duration
        window_us = args.window_us
        out = args.out
        prewarm = 10.0
    simulator = build_tpca_system(num_segments=segments,
                                  pages_per_segment=pages,
                                  utilization=args.utilization,
                                  rate_tps=rate, policy=args.policy,
                                  seed=args.seed)
    print(f"observing {rate:,.0f} TPS for {duration}s simulated "
          f"({segments}x{pages} pages, {args.policy})...")
    simulator.prewarm(prewarm)
    hub = ObservabilityHub(simulator.controller,
                           sample_interval_ns=window_us * 1000)
    profiler = None
    if args.self_profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    wall0 = time.perf_counter()
    stats = simulator.run(duration)
    wall_s = time.perf_counter() - wall0
    if profiler is not None:
        profiler.disable()
    hub.close()
    _print_observe_dashboard(simulator.controller, hub, stats)
    if args.self_profile:
        _print_self_profile(profiler, stats, wall_s)
    if out:
        written = hub.write_exports(out)
        for path in written.values():
            print(f"wrote {path}")
        if args.smoke:
            return _validate_exports(written)
    return 0


def _parse_tenant(spec: str):
    """``name=a,workload=zipf,rate_tps=1e6,...`` -> :class:`TenantSpec`.

    Thin CLI wrapper over :meth:`TenantSpec.parse` — the one tenant-spec
    grammar shared with the benchmarks — translating ``ValueError`` to
    the usage-error exit argparse callers expect.
    """
    from .service import TenantSpec

    try:
        return TenantSpec.parse(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _print_service_dashboard(service, stats) -> None:
    rows = [
        ["Shards x pages", f"{stats.num_shards} x "
         f"{service.router.pages_per_shard:,} "
         f"({service.router.total_bytes >> 20} MiB service space)"],
        ["Offered / admitted", f"{stats.requests_offered:,} / "
         f"{stats.requests_admitted:,}"],
        ["Throttled (rate limit)", f"{stats.requests_throttled:,}"],
        ["Rejected (queue full)", f"{stats.requests_rejected_queue:,}"],
        ["Rejected (cleaner debt)", f"{stats.requests_rejected_shed:,}"],
        ["Served", f"{stats.accesses_served:,} in "
         f"{stats.simulated_ns / 1e6:.3f} ms simulated"],
        ["Service throughput",
         f"{stats.accesses_per_simulated_s:,.0f} accesses/s simulated"],
    ]
    cached = bool(stats.cache_hits or stats.cache_misses
                  or stats.cache_invalidations)
    if cached:
        rows.append(["Cache (DRAM tier)",
                     f"{stats.cache_hits:,} hits / "
                     f"{stats.cache_misses:,} misses "
                     f"({stats.cache_hit_rate:.1%}); "
                     f"{stats.cache_evictions:,} evicted, "
                     f"{stats.cache_invalidations:,} invalidated"])
    admission = getattr(service, "admission", None)
    if admission is not None:
        states = admission.report()["states"]
        busy = {name: state for name, state in states.items()
                if state != "normal"}
        rows.append(["Admission (closed loop)",
                     ", ".join(f"{name}:{state}"
                               for name, state in sorted(busy.items()))
                     or "all normal"])
    print(format_table(["Service", "Value"], rows))
    tenant_rows = []
    for name, tstats in stats.tenants.items():
        row = tstats.as_dict()
        entry = [
            name, f"{row['offered']:,}", f"{row['throttled']:,}",
            f"{row['rejected']:,}", f"{row['reads']:,}",
            f"{row['writes']:,}", f"{row['read_p99_ns']:,}",
            f"{row['write_p99_ns']:,}"]
        if cached:
            probes = tstats.cache_hits + tstats.cache_misses
            entry.append(f"{tstats.cache_hits / probes:.1%}"
                         if probes else "-")
        tenant_rows.append(entry)
    headers = ["Tenant", "Offered", "Throttled", "Rejected",
               "Reads", "Writes", "Read p99 (ns)", "Write p99 (ns)"]
    if cached:
        headers.append("Hit%")
    print()
    print(format_table(headers, tenant_rows))
    shard_rows = [[s["shard"], f"{s['accesses']:,}",
                   f"{s['batches']:,}", s["max_batch_pages"],
                   f"{s['coalesced_writes']:,}", f"{s['flushes']:,}",
                   f"{s['erases']:,}", f"{s['clock_ns'] / 1e6:.3f}"]
                  for s in stats.shards]
    print()
    print(format_table(["Shard", "Accesses", "Batches", "Max batch",
                        "Coalesced", "Flushes", "Erases", "Clock (ms)"],
                       shard_rows))


def _print_redundancy_dashboard(service, stats) -> None:
    info = service.health_report()["redundancy"]
    rows = [
        ["Policy / placement", f"{info['policy']} / {info['placement']}"],
        ["Write fanout", f"{info['write_fanout']}x"],
        ["Survivable bank losses", f"{info['survivable_bank_losses']}"],
        ["Degraded", "yes" if info["degraded"] else "no"],
        ["Degraded reads / writes",
         f"{stats.degraded_reads:,} / {stats.degraded_writes:,}"],
        ["Replica / rebuild accesses",
         f"{stats.replica_accesses:,} / {stats.rebuild_accesses:,}"],
        ["Remapped pages", f"{info['remapped_pages']:,}"],
    ]
    for bank in info["banks"]:
        state = bank["state"]
        rebuild = bank["rebuild"]
        if rebuild:
            state += (f" ({rebuild['pages_done']:,}/"
                      f"{rebuild['pages_total']:,} pages, "
                      f"{rebuild['progress'] * 100:.1f}%)")
        rows.append([f"Bank {bank['bank']}", state])
    print(format_table(["Redundancy", "Value"], rows))


def _print_security_dashboard(service, report) -> None:
    rows = [["Flagged", ", ".join(report["flagged"]) or "none"],
            ["Quarantined", ", ".join(sorted(service.quarantined)) or
             "none"]]
    for name, entry in report["tenants"].items():
        signals = entry["signals"]
        evidence = ", ".join(
            f"{key}={signals[key]}"
            for key in ("concentration_ratio", "flush_per_write",
                        "occupancy_fraction", "residency_z")
            if key in signals)
        flags = ",".join(entry["flags"]) or "-"
        rows.append([f"Tenant {name}", f"[{flags}] {evidence}"])
    print(format_table(["Security", "Value"], rows))


def _run_attack_demo(args, config, tenants) -> int:
    """``serve --attack KIND [--mitigate]``: wear-attack demo.

    Without ``--mitigate``: run the honest mix plus the attacker with
    wear attribution on, and show what the detector sees.  With it:
    the full baseline -> attack -> mitigated comparison from
    :func:`repro.service.adversary.run_attack_scenario`.
    """
    from .service import attack_tenant, project_lifetime, run_attack_scenario
    from .service.frontend import EnvyService

    attacker = attack_tenant(args.attack, config, rate_tps=args.rate / 2)
    duration = args.duration
    if args.mitigate:
        print(f"attack demo: {args.attack} attacker vs "
              f"{len(tenants)} honest tenants, three phases "
              f"(baseline / attack / mitigated), "
              f"{duration * 1e3:g} ms simulated each...")
        scenario = run_attack_scenario(config, tenants, attacker,
                                       duration, jobs=args.jobs)
        print(banner(f"wear attack: {args.attack}, mitigated"))
        rows = [["Attacker", f"{scenario['attacker']} "
                 f"({scenario['attack_workload']})"],
                ["Flagged (attack phase)",
                 ", ".join(scenario["attack"]["flagged"]) or "none"],
                ["Wear budget applied", str(scenario["wear_budget"])],
                ["Hot pages scattered",
                 str(scenario["hot_pages_scattered"])]]
        print(format_table(["Scenario", "Value"], rows))
        print()
        phase_rows = []
        for phase in ("baseline", "attack", "mitigated"):
            entry = scenario[phase]
            honest_p99 = max(
                (entry["tenants"][name]["write_p99_ns"]
                 for name in scenario["honest"]), default=0)
            phase_rows.append([
                phase, f"{entry['lifetime_days']:,}",
                f"{entry['wear_concentration']:.3f}",
                f"{entry['cleaning_cost']:.3f}",
                f"{honest_p99:,}",
                ", ".join(entry["flagged"]) or "none"])
        print(format_table(["Phase", "Lifetime (days)", "Wear conc",
                            "Clean cost", "Honest write p99 (ns)",
                            "Flagged"], phase_rows))
        return 0
    import dataclasses

    config = dataclasses.replace(config, attribute_wear=True)
    service = EnvyService(config, list(tenants) + [attacker])
    print(f"attack demo: {args.attack} attacker joins {len(tenants)} "
          f"honest tenants, wear attribution on, "
          f"{duration * 1e3:g} ms simulated (no mitigation — "
          f"add --mitigate)...")
    stats = service.run(duration, jobs=args.jobs)
    report = service.detect_attacks()
    life = project_lifetime(service)
    print(banner(f"wear attack: {args.attack}, unmitigated"))
    _print_service_dashboard(service, stats)
    print()
    _print_security_dashboard(service, report)
    print(f"\nprojected lifetime under attack: {life.days:,.1f} days "
          f"(wear concentration {life.concentration:.3f})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import EnvyService, ServiceConfig, TenantSpec

    if args.attack and args.smoke:
        raise SystemExit("--attack is not available with --smoke")
    if args.mitigate and not args.attack:
        raise SystemExit("--mitigate needs --attack KIND")
    if args.kill_bank is not None:
        if args.smoke:
            raise SystemExit("--kill-bank is not available with --smoke")
        if args.redundancy == "none":
            raise SystemExit("--kill-bank needs --redundancy "
                             "mirror|mirror:K|parity (a plain service "
                             "cannot survive a bank loss)")
        if not 0 <= args.kill_bank < args.shards:
            raise SystemExit(f"--kill-bank {args.kill_bank} out of range "
                             f"for {args.shards} shards")

    if args.smoke:
        config = ServiceConfig(num_shards=2, num_segments=8,
                               pages_per_segment=32, seed=args.seed)
        # Rates are accesses/s for zipf/uniform but transactions/s for
        # tpca (one transaction expands to ~17 accesses).
        tenants = [
            TenantSpec("zipf-hot", rate_tps=8e6, skew=1.0,
                       write_fraction=0.3),
            TenantSpec("tpca", rate_tps=2e5, workload="tpca"),
            TenantSpec("limited", rate_tps=6e6, workload="uniform",
                       rate_limit_tps=2e6),
        ]
        duration = 0.0003
    else:
        config = ServiceConfig(num_shards=args.shards,
                               num_segments=args.segments,
                               pages_per_segment=args.pages,
                               utilization=args.utilization,
                               policy=args.policy,
                               queue_capacity=args.queue,
                               redundancy=args.redundancy,
                               placement=args.placement,
                               retry_limit=args.retry_limit,
                               cache_pages=args.cache,
                               cache_policy=args.cache_policy,
                               cache_tenant_cap=args.cache_tenant_cap,
                               admission=args.admission,
                               seed=args.seed)
        if args.tenant:
            tenants = [_parse_tenant(spec) for spec in args.tenant]
        else:
            tenants = [
                TenantSpec("zipf-hot", rate_tps=args.rate / 2,
                           skew=args.skew, write_fraction=0.3),
                # A TPC-A transaction expands to ~17 accesses, so its
                # quarter of the aggregate rate is divided down.
                TenantSpec("tpca", rate_tps=args.rate / 68,
                           workload="tpca"),
                TenantSpec("limited", rate_tps=args.rate / 4,
                           workload="uniform",
                           rate_limit_tps=args.rate / 8),
            ]
        duration = args.duration
    if args.attack:
        return _run_attack_demo(args, config, tenants)
    service = EnvyService(config, tenants)
    print(f"serving {len(tenants)} tenants over {config.num_shards} "
          f"shards for {duration * 1e3:g} ms simulated "
          f"(seed {config.seed})...")
    stats = service.run(duration, jobs=args.jobs)
    print(banner(f"eNVy service: {config.num_shards} shards, "
                 f"{len(tenants)} tenants"))
    _print_service_dashboard(service, stats)
    if not args.smoke:
        if args.redundancy != "none" or args.placement != "striped":
            print()
            _print_redundancy_dashboard(service, stats)
        if args.kill_bank is not None:
            bank = args.kill_bank
            print()
            print(banner(f"bank {bank} lost: serving degraded"))
            service.kill_bank(bank)
            degraded = service.run(duration, jobs=args.jobs)
            _print_service_dashboard(service, degraded)
            print()
            _print_redundancy_dashboard(service, degraded)
            print()
            print(banner(f"bank {bank} replaced: rebuilding online"))
            scheduler = service.replace_bank(bank)
            rebuilt = service.run(duration, jobs=args.jobs)
            _print_service_dashboard(service, rebuilt)
            if scheduler.done:
                scheduler.finish(verify=True)
                print(f"\nrebuild of bank {bank} complete: "
                      f"{scheduler.total:,} pages verified, bank healthy")
            else:
                print(f"\nrebuild of bank {bank} still running: "
                      f"{scheduler.position:,}/{scheduler.total:,} pages "
                      f"({scheduler.progress:.0%}) — longer --duration "
                      f"finishes it")
            print()
            _print_redundancy_dashboard(service, rebuilt)
        return 0

    # Smoke mode proves the determinism contract: identical metrics —
    # including every admission-control rejection — across repeat runs
    # and across --jobs settings.
    baseline = stats.as_dict()
    health = service.health_report()
    failures = []
    for key in ("requests_rejected", "requests_throttled",
                "requests_rejected_queue", "requests_rejected_shed"):
        if key not in health:
            failures.append(f"health_report missing {key}")
    if health.get("requests_throttled", 0) <= 0:
        failures.append("expected the rate-limited tenant to be throttled")
    rerun = EnvyService(config, tenants).run(duration, jobs=1).as_dict()
    if rerun != baseline:
        failures.append("rerun with the same seed changed the metrics")
    fanned = EnvyService(config, tenants).run(duration, jobs=2).as_dict()
    if fanned != baseline:
        failures.append("--jobs 2 changed the metrics")
    print()
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("smoke ok: metrics identical across reruns and --jobs 1/2; "
          f"{health['requests_rejected']:,} rejections reproduced.")
    return 0


def _trace_scenario(args):
    """The ``trace`` command's seeded multi-tenant mix.

    Three declared tenants — a latency-sensitive ``online`` tenant with
    read/write p99 SLOs, a write-heavy ``batch`` tenant with a write
    SLO — plus a ``storm`` tenant running the ``clean_amp`` sweep at
    full write fraction: the induced cleaner storm whose interference
    the trace attributes (cleaner-debt throttles, sheds, queueing
    behind the storm's writes).
    """
    from .service import ServiceConfig, TenantSpec

    if args.smoke:
        config = ServiceConfig(num_shards=2, num_segments=8,
                               pages_per_segment=32, seed=args.seed,
                               retry_limit=2, queue_capacity=32)
        rate, duration = 4e6, 0.0004
    else:
        config = ServiceConfig(num_shards=args.shards,
                               num_segments=args.segments,
                               pages_per_segment=args.pages,
                               queue_capacity=args.queue,
                               redundancy=args.redundancy,
                               retry_limit=args.retry_limit,
                               seed=args.seed)
        rate, duration = args.rate, args.duration
    if not args.smoke and args.tenant:
        tenants = [_parse_tenant(spec) for spec in args.tenant]
    else:
        tenants = [
            TenantSpec("online", rate_tps=rate / 2, skew=1.0,
                       write_fraction=0.3,
                       slo_read_p99_ns=100_000,
                       slo_write_p99_ns=250_000,
                       slo_throughput_tps=rate / 20),
            TenantSpec("batch", rate_tps=rate / 4, workload="uniform",
                       write_fraction=0.8,
                       slo_write_p99_ns=500_000),
            TenantSpec("storm", rate_tps=rate / 2,
                       workload="clean_amp", write_fraction=1.0),
        ]
    return config, tenants, duration


def _print_trace_dashboard(report, slo, slowest, percentile) -> None:
    from .obs.trace import COMPONENTS

    short = {"queue": "queue", "redundancy": "redun",
             "retry_wait": "retry", "throttle": "thrtl",
             "flush_stall": "flush", "clean_stall": "clean",
             "fault_retry": "fault", "service": "srvc"}
    rows = []
    for row in report.slowest(slowest):
        comp = row["components"]
        parts = " ".join(f"{short[c]}={comp[c]:,}"
                         for c in COMPONENTS if comp[c])
        rows.append([row["rid"], row["tenant"], row["op"],
                     row["shard"], f"{row['latency_ns']:,}",
                     row["attempts"], parts])
    print(format_table(["Rid", "Tenant", "Op", "Shard", "Latency (ns)",
                        "Att", "Critical path (ns)"], rows))
    print()
    blame = report.blame(percentile)
    blame_rows = []
    for tenant, entry in blame.items():
        shares = entry["shares"]
        top = " ".join(f"{short[c]}={shares[c]:.1%}"
                       for c in COMPONENTS if shares[c] >= 0.001)
        blame_rows.append([tenant, f"{entry['requests']:,}",
                           f"{entry['tail_requests']:,}",
                           f"{entry['threshold_ns']:,}", top])
    print(format_table([f"Tenant (p{percentile:g} tail)", "Requests",
                        "Tail", "Threshold (ns)", "Blame shares"],
                       blame_rows))
    if slo:
        print()
        slo_rows = []
        for tenant, entry in slo.items():
            bounds = []
            for op in ("read", "write"):
                if op in entry:
                    bounds.append(f"{op} p99<={entry[op]['bound_p99_ns']:,}"
                                  f" ({entry[op]['violations']} viol)")
            burn = entry["burn"]
            slo_rows.append([
                tenant, f"{entry['target']:.0%}",
                "; ".join(bounds) or "-",
                f"{burn['last']:.2f}/{burn['recent']:.2f}/"
                f"{burn['lifetime']:.2f}",
                "yes" if entry["met"] else "NO"])
        print(format_table(["Tenant SLO", "Target", "Latency objectives",
                            "Burn last/recent/life", "Met"], slo_rows))


def cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .obs.export import service_prometheus_text
    from .service.frontend import EnvyService

    config, tenants, duration = _trace_scenario(args)
    service = EnvyService(config, tenants)
    print(f"tracing {len(tenants)} tenants over {config.num_shards} "
          f"shards for {duration * 1e3:g} ms simulated "
          f"(seed {config.seed})...")
    stats = service.run(duration, jobs=args.jobs, trace=True)
    report = service.last_trace
    health = service.health_report()
    slo = health.get("slo", {})
    print(banner(f"request trace: {len(report.rows):,} rows, "
                 f"{len(report.served()):,} served foreground"))
    _print_trace_dashboard(report, slo, args.slowest, args.percentile)
    err = report.validate()
    print(f"\ndecomposition: worst |sum(components) - latency| = "
          f"{err} ns over {len(report.served(include_pseudo=True)):,} "
          f"served rows")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        written = {
            "trace.json": report.chrome_trace(),
            "trace.jsonl": report.to_jsonl(),
            "service.prom": service_prometheus_text(
                stats, security=health.get("security"), slo=slo),
        }
        import json

        written["slo.json"] = json.dumps(
            {"slo": slo, "blame": report.blame(args.percentile)},
            indent=2, sort_keys=True) + "\n"
        for name, text in written.items():
            path = os.path.join(args.out, name)
            with open(path, "w") as handle:
                handle.write(text)
            print(f"wrote {path}")
    if not args.smoke:
        return err and 1 or 0

    # Smoke mode proves the tracing acceptance criteria: exact
    # decomposition, blame identical across reruns and --jobs, and
    # bit-identical metrics with tracing off.
    failures = []
    if err != 0:
        failures.append(f"decomposition error {err} ns (expected 0)")
    if not slo:
        failures.append("health_report has no slo section")
    for name in ("online", "batch"):
        if name not in slo:
            failures.append(f"slo section missing tenant {name}")
    baseline = report.as_dict()
    rerun = EnvyService(config, tenants)
    rerun.run(duration, jobs=1, trace=True)
    if rerun.last_trace.as_dict() != baseline:
        failures.append("rerun with the same seed changed the trace")
    fanned = EnvyService(config, tenants)
    fanned.run(duration, jobs=2, trace=True)
    if fanned.last_trace.as_dict() != baseline:
        failures.append("--jobs 2 changed the trace")
    untraced = EnvyService(config, tenants)
    if untraced.run(duration, jobs=1).as_dict() != stats.as_dict():
        failures.append("tracing perturbed the service metrics")
    print()
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"smoke ok: 0 ns decomposition error on "
          f"{len(report.served(include_pseudo=True)):,} rows; blame "
          f"identical across reruns and --jobs 1/2; metrics "
          f"bit-identical with tracing off.")
    return 0


def _backends_config(args: argparse.Namespace):
    from .backends import default_config

    return default_config(num_segments=args.segments,
                          pages_per_segment=args.pages,
                          reserve_segments=args.reserves)


def _print_consistency_report(report) -> None:
    rows = []
    for spec, entry in report["backends"].items():
        digest = entry["digest"][:16]
        if entry["reopen_digest"]:
            digest += (" (reopen ok)"
                       if entry["reopen_digest"] == entry["digest"]
                       else " (REOPEN DIVERGED)")
        rows.append([entry["backend_name"], spec, digest,
                     f"{entry['total_ns']:,}",
                     "ok" if entry["match"] else "MISMATCH"])
    print(format_table(["Backend", "Spec", "State digest",
                        "Simulated ns", "Match"], rows))
    reference = report["reference_digest"]
    print(f"\nreference digest : {reference or '(per-trace)'}")
    print(f"distinct digests : {report['distinct_digests']} over "
          f"{report['ops']:,} host ops ({report['writes']:,} writes, "
          f"{report['reads']:,} reads)")
    print("consistent       : "
          + ("yes — placement is backend-independent"
             if report["consistent"] else "NO"))


def cmd_backends(args: argparse.Namespace) -> int:
    from . import backends

    print(banner("pluggable storage backends"))
    rows = [[info.name, info.summary, info.options or "-"]
            for info in (backends.backend_info(name)
                         for name in backends.backend_names())]
    print(format_table(["Backend", "Summary", "Options"], rows))
    print()
    print(banner("workload generators"))
    rows = [[info.name, info.summary, info.options or "-"]
            for info in (backends.workload_info(name)
                         for name in backends.workload_names())]
    print(format_table(["Workload", "Summary", "Options"], rows))
    print("\nspec grammar: name[:key=value,...] — e.g. "
          "'file:path=/tmp/envy.img' or 'zipf:skew=1.2'; "
          "EnvyConfig(backend=SPEC) or --backend SPEC selects one.")
    if args.record:
        config = _backends_config(args)
        trace, reference = backends.record_tpca(
            config, transactions=args.transactions, seed=args.seed)
        trace.save(args.record)
        print(f"\nrecorded {len(trace)} host ops "
              f"({trace.writes} writes) from {args.transactions} TPC-A "
              f"transactions (seed {args.seed}) to {args.record}")
        print(f"reference state digest: {reference.digest}")
    if not args.check:
        return 0
    print()
    print(banner(f"cross-backend consistency "
                 f"({args.transactions} TPC-A transactions, "
                 f"seed {args.seed})"))
    report = backends.run_consistency(config=_backends_config(args),
                                      transactions=args.transactions,
                                      seed=args.seed)
    _print_consistency_report(report)
    return 0 if report["consistent"] else 1


def cmd_replay(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .backends import RunTrace, replay_trace, run_consistency
    from .workloads.trace import TraceError

    try:
        trace = RunTrace.load(args.trace)
    except (OSError, TraceError) as exc:
        print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    config = _backends_config(args)
    print(f"loaded {len(trace)} host ops ({trace.writes:,} writes, "
          f"{trace.reads:,} reads; {trace.page_bytes}-byte pages, "
          f"recorded under config "
          f"{trace.config_digest or 'unknown'})")
    if args.matrix:
        print(banner("replaying across the backend matrix"))
        report = run_consistency(config=config, trace=trace,
                                 seed=args.seed)
        _print_consistency_report(report)
        return 0 if report["consistent"] else 1
    try:
        result = replay_trace(trace, replace(config,
                                             backend=args.backend),
                              check_config=not args.no_check,
                              keep_controller=True)
    except TraceError as exc:
        print(f"refusing to replay: {exc}", file=sys.stderr)
        return 2
    print(banner(f"replay on backend {args.backend!r}"))
    rows = [
        ["State digest", result.digest],
        ["Simulated cost", f"{result.total_ns:,} ns for "
         f"{result.ops:,} host ops"],
    ]
    health = result.health
    for key in ("flushes", "erases", "clean_copies", "retired_segments"):
        if key in health:
            rows.append([key, str(health[key])])
    for key, value in sorted(health.items()):
        if key.startswith("backend"):
            rows.append([key, str(value)])
    print(format_table(["Replay result", "Value"], rows))
    if args.expect_digest:
        if result.digest != args.expect_digest:
            print(f"\nDIGEST MISMATCH: expected {args.expect_digest}",
                  file=sys.stderr)
            return 1
        print("\ndigest matches --expect-digest.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="eNVy (ASPLOS 1994) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="paper configuration and cost tables")
    sub.add_parser("demo", help="tiny end-to-end demonstration")
    sub.add_parser("claims", help="verify the paper's fast claims")

    policies = sub.add_parser("policies",
                              help="Figure 8 cleaning-cost comparison")
    policies.add_argument("localities", nargs="*",
                          help="locality labels like 10/90")
    policies.add_argument("--segments", type=int, default=64)
    policies.add_argument("--pages", type=int, default=128)
    policies.add_argument("--partition", type=int, default=8)
    policies.add_argument("--jobs", type=int, default=None,
                          help="parallel sweep workers (default: "
                               "ENVY_JOBS or CPU count)")

    tpca = sub.add_parser("tpca", help="one timed TPC-A simulation point")
    tpca.add_argument("rate", type=float, help="request rate in TPS")
    tpca.add_argument("--duration", type=float, default=0.15,
                      help="simulated seconds to measure")
    tpca.add_argument("--utilization", type=float, default=0.8)

    lifetime = sub.add_parser("lifetime",
                              help="Section 5.5 lifetime calculation")
    lifetime.add_argument("--flush-rate", type=float, default=10_376,
                          help="pages flushed per second")
    lifetime.add_argument("--cost", type=float, default=1.97,
                          help="cleaning cost")

    faults = sub.add_parser(
        "faults", help="workload under injected device faults")
    faults.add_argument("--plan", choices=["light", "harsh"],
                        default="light", help="fault-plan preset")
    faults.add_argument("--seed", type=int, default=42,
                        help="fault schedule seed (deterministic)")
    faults.add_argument("--writes", type=int, default=5000,
                        help="page writes to issue")
    faults.add_argument("--segments", type=int, default=16)
    faults.add_argument("--pages", type=int, default=32)
    faults.add_argument("--reserves", type=int, default=4,
                        help="bad-block reserve segments")

    recover = sub.add_parser(
        "recover", help="chaos demo: power loss + recovery from flash")
    recover.add_argument("--plan", choices=["none", "light", "harsh"],
                         default="none", help="fault-plan preset")
    recover.add_argument("--seed", type=int, default=0,
                         help="workload/fault seed (deterministic)")
    recover.add_argument("--transactions", type=int, default=20,
                         help="TPC-A transactions to replay")
    recover.add_argument("--kill-at", type=int, default=0,
                         help="flash op to die at (0 = midpoint)")
    recover.add_argument("--tear", action="store_true",
                         help="tear the in-flight program (bad CRC)")
    recover.add_argument("--segments", type=int, default=12)
    recover.add_argument("--pages", type=int, default=16)
    recover.add_argument("--checkpoint", type=int, default=8,
                         help="checkpoint every N flushes (0 = off)")

    observe = sub.add_parser(
        "observe", help="instrumented run: dashboard + timeline exports")
    observe.add_argument("--rate", type=float, default=30_000.0,
                         help="request rate in TPS")
    observe.add_argument("--duration", type=float, default=0.1,
                         help="simulated seconds to observe")
    observe.add_argument("--utilization", type=float, default=0.8)
    observe.add_argument("--policy", choices=["fifo", "greedy", "locality",
                                              "hybrid"], default="hybrid")
    observe.add_argument("--seed", type=int, default=7)
    observe.add_argument("--segments", type=int, default=128)
    observe.add_argument("--pages", type=int, default=1024)
    observe.add_argument("--window-us", type=int, default=1000,
                         dest="window_us",
                         help="time-series window in microseconds")
    observe.add_argument("--out", default="observe-out",
                         help="export directory ('' = no exports)")
    observe.add_argument("--smoke", action="store_true",
                         help="small fixed run + export validation (CI)")
    observe.add_argument("--self-profile", action="store_true",
                         dest="self_profile",
                         help="profile the host cost of simulated time")

    perf = sub.add_parser(
        "perf", help="perf-regression bench: throughput + BENCH_PERF.json")
    perf.add_argument("--smoke", action="store_true",
                      help="small scenarios for CI")
    perf.add_argument("--jobs", type=int, default=None,
                      help="parallel sweep workers (default: ENVY_JOBS "
                           "or CPU count)")
    perf.add_argument("--output", default="BENCH_PERF.json",
                      help="JSON report path (default: %(default)s)")
    perf.add_argument("--compare", metavar="BASELINE",
                      help="fail on regression vs this committed report")
    perf.add_argument("--max-regression", type=float, default=0.25,
                      dest="max_regression")
    perf.add_argument("--seed-baseline", metavar="REPORT",
                      dest="seed_baseline",
                      help="embed a pre-optimization report for speedups")
    perf.add_argument("--no-scaling", action="store_true",
                      dest="no_scaling",
                      help="skip the parallel scaling probe")

    serve = sub.add_parser(
        "serve", help="sharded multi-tenant eNVy storage service")
    serve.add_argument("--shards", type=int, default=4,
                       help="independent eNVy banks (default: %(default)s)")
    serve.add_argument("--segments", type=int, default=16,
                       help="flash segments per shard")
    serve.add_argument("--pages", type=int, default=64,
                       help="pages per segment")
    serve.add_argument("--utilization", type=float, default=0.8)
    serve.add_argument("--policy", choices=["fifo", "greedy", "locality",
                                            "hybrid"], default="hybrid")
    serve.add_argument("--duration", type=float, default=0.002,
                       help="simulated seconds of tenant traffic")
    serve.add_argument("--rate", type=float, default=4e6,
                       help="aggregate offered accesses/s for the "
                            "default tenant mix")
    serve.add_argument("--skew", type=float, default=1.0,
                       help="zipf skew of the hot default tenant")
    serve.add_argument("--queue", type=int, default=256,
                       help="per-shard bounded queue capacity")
    serve.add_argument("--redundancy", default="none",
                       help="cross-bank redundancy policy: none, mirror, "
                            "mirror:K, or parity (default: %(default)s)")
    serve.add_argument("--placement", choices=["striped", "ranged"],
                       default="striped",
                       help="logical page placement across banks")
    serve.add_argument("--retry-limit", type=int, default=0,
                       dest="retry_limit",
                       help="bounded deterministic retries for queue-full "
                            "rejections (default: %(default)s)")
    serve.add_argument("--kill-bank", type=int, default=None,
                       dest="kill_bank", metavar="BANK",
                       help="availability demo: lose this whole bank after "
                            "the healthy run, serve degraded, then rebuild "
                            "online (needs --redundancy)")
    serve.add_argument("--cache", type=int, default=0, metavar="PAGES",
                       help="DRAM read-cache pages per shard "
                            "(0 = no cache tier)")
    serve.add_argument("--cache-policy", choices=["clock", "lru"],
                       default="clock", dest="cache_policy",
                       help="cache replacement policy "
                            "(default: %(default)s)")
    serve.add_argument("--cache-tenant-cap", type=float, default=1.0,
                       dest="cache_tenant_cap", metavar="FRAC",
                       help="per-tenant cache occupancy cap as a "
                            "fraction of one shard's cache "
                            "(default: %(default)s = uncapped)")
    serve.add_argument("--admission", action="store_true",
                       help="closed-loop admission: promote / throttle "
                            "/ shed tenants from their SLO burn "
                            "between runs")
    serve.add_argument("--tenant", action="append", metavar="SPEC",
                       help="tenant spec 'name=a,workload=zipf,"
                            "rate_tps=1e6,...' (repeatable; replaces "
                            "the default mix; slo=READ[:WRITE[:TGT]], "
                            "cache=true|false, arrive_s=/depart_s=/"
                            "burst_every_s= for churn)")
    serve.add_argument("--attack",
                       choices=["targeted-wear", "clean-amp", "squat"],
                       default=None,
                       help="wear-attack demo: add this adversarial "
                            "tenant at half the aggregate rate, turn "
                            "on per-tenant wear attribution and show "
                            "the detector's verdict")
    serve.add_argument("--mitigate", action="store_true",
                       help="with --attack: run the full baseline/"
                            "attack/mitigated comparison (quarantine + "
                            "wear budget + hot-page scatter)")
    serve.add_argument("--seed", type=int, default=0,
                       help="service seed (schedule + shard prewarm)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="shard fan-out workers (default: ENVY_JOBS "
                            "or CPU count); never changes results")
    serve.add_argument("--smoke", action="store_true",
                       help="small fixed run + determinism validation "
                            "(CI)")

    trace = sub.add_parser(
        "trace", help="request-level tracing: slowest requests with "
                      "exact critical paths, per-tenant tail blame, "
                      "SLO burn rates")
    trace.add_argument("--shards", type=int, default=4)
    trace.add_argument("--segments", type=int, default=16,
                       help="flash segments per shard")
    trace.add_argument("--pages", type=int, default=64,
                       help="pages per segment")
    trace.add_argument("--duration", type=float, default=0.002,
                       help="simulated seconds of tenant traffic")
    trace.add_argument("--rate", type=float, default=4e6,
                       help="aggregate offered accesses/s for the "
                            "default online/batch/storm mix")
    trace.add_argument("--queue", type=int, default=64,
                       help="per-shard bounded queue capacity")
    trace.add_argument("--redundancy", default="none",
                       help="cross-bank redundancy policy: none, "
                            "mirror, mirror:K, or parity")
    trace.add_argument("--retry-limit", type=int, default=2,
                       dest="retry_limit",
                       help="bounded retries for queue-full rejections")
    trace.add_argument("--tenant", action="append", metavar="SPEC",
                       help="tenant spec (repeatable; replaces the "
                            "default mix; slo_read_p99_ns=... declares "
                            "objectives)")
    trace.add_argument("--slowest", type=int, default=10,
                       help="list this many slowest requests "
                            "(default: %(default)s)")
    trace.add_argument("--percentile", type=float, default=99.0,
                       help="tail percentile for the blame table")
    trace.add_argument("--out", default=None, metavar="DIR",
                       help="write trace.json (Perfetto), trace.jsonl, "
                            "service.prom and slo.json here")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--jobs", type=int, default=None,
                       help="shard fan-out workers; never changes "
                            "results")
    trace.add_argument("--smoke", action="store_true",
                       help="small fixed run + tracing acceptance "
                            "validation (CI)")

    backends = sub.add_parser(
        "backends", help="list pluggable storage backends / workloads; "
                         "--check runs the cross-backend consistency "
                         "matrix")
    backends.add_argument("--check", action="store_true",
                          help="record one TPC-A trace and prove every "
                               "backend produces the same state digest")
    backends.add_argument("--record", metavar="TRACE.jsonl",
                          help="save the reference run trace to this "
                               "JSONL file (for 'replay')")
    backends.add_argument("--transactions", type=int, default=40,
                          help="TPC-A transactions to record "
                               "(default: %(default)s)")
    backends.add_argument("--seed", type=int, default=0)
    backends.add_argument("--segments", type=int, default=12,
                          help="logical segments (default: %(default)s)")
    backends.add_argument("--pages", type=int, default=16,
                          help="pages per segment")
    backends.add_argument("--reserves", type=int, default=2,
                          help="bad-block reserve segments")

    replay = sub.add_parser(
        "replay", help="re-drive a recorded run trace against any "
                       "backend")
    replay.add_argument("trace", help="run-trace JSONL (from "
                                      "'backends --record')")
    replay.add_argument("--backend", default="flash",
                        help="backend spec name[:key=value,...] "
                             "(default: %(default)s)")
    replay.add_argument("--matrix", action="store_true",
                        help="replay on every registered backend and "
                             "compare digests")
    replay.add_argument("--expect-digest", dest="expect_digest",
                        metavar="SHA256",
                        help="fail unless the replay lands on this "
                             "state digest")
    replay.add_argument("--no-check", action="store_true",
                        dest="no_check",
                        help="skip the trace-header config validation")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--segments", type=int, default=12,
                        help="logical segments of the replay config")
    replay.add_argument("--pages", type=int, default=16,
                        help="pages per segment")
    replay.add_argument("--reserves", type=int, default=2,
                        help="bad-block reserve segments")
    return parser


COMMANDS = {
    "info": cmd_info,
    "claims": cmd_claims,
    "policies": cmd_policies,
    "tpca": cmd_tpca,
    "lifetime": cmd_lifetime,
    "demo": cmd_demo,
    "faults": cmd_faults,
    "recover": cmd_recover,
    "observe": cmd_observe,
    "perf": cmd_perf,
    "serve": cmd_serve,
    "trace": cmd_trace,
    "backends": cmd_backends,
    "replay": cmd_replay,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
