"""Reporting helpers and first-order comparison models."""

from .alternatives import Alternative, compare_alternatives
from .charts import line_chart, sparkline
from .replication import ReplicationSummary, replicate
from .tables import banner, format_series, format_table

__all__ = ["format_table", "format_series", "banner", "line_chart",
           "sparkline", "Alternative", "compare_alternatives", "ReplicationSummary",
           "replicate"]
