"""Quantifying the introduction's motivation: eNVy vs the alternatives.

Section 1 argues qualitatively: disks are mechanically bound, DRAM needs
more standby power than batteries can provide, SRAM is four times the
price, so Flash + tricks wins for "small to medium sized high
performance databases."  This module turns the Figure 1 numbers into the
actual comparison table for a target workload.

All models are deliberately first-order — arm counts from access time,
battery energy from retention current — because that is the granularity
of the paper's own argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.config import GIB, MIB, EnvyConfig
from ..core.costmodel import TECHNOLOGIES, system_cost

__all__ = ["Alternative", "compare_alternatives", "DISK_ACCESS_MS"]

DISK_ACCESS_MS = 8.3  # Figure 1
#: Random I/Os a TPC-A transaction costs a disk-resident database
#: (three record writes; index interior nodes assumed cached in RAM).
DISK_IOS_PER_TXN = 3.0
#: Supply voltage for battery-energy estimates (5 V logic of the era).
SUPPLY_VOLTS = 5.0


@dataclass(frozen=True)
class Alternative:
    """One storage option sized for a capacity and transaction rate."""

    name: str
    dollars: float
    achievable_tps: float
    units: str
    retention: str

    def row(self) -> List[str]:
        tps = ("unbounded (memory)" if self.achievable_tps == float("inf")
               else f"{self.achievable_tps:,.0f}")
        return [self.name, f"${self.dollars:,.0f}", tps, self.units,
                self.retention]


def disk_alternative(capacity_bytes: int, target_tps: float,
                     disk_bytes: int = 2 * GIB) -> Alternative:
    """A disk array sized to sustain ``target_tps`` TPC-A transactions.

    Each arm does ``1000 / 8.3`` random I/Os per second; throughput
    needs arms, not capacity, so the array is arm-bound long before it
    is capacity-bound — the disk bottleneck of Section 1.
    """
    iops_per_arm = 1000.0 / DISK_ACCESS_MS
    arms_for_rate = max(1, int(-(-target_tps * DISK_IOS_PER_TXN
                                 // iops_per_arm)))
    arms_for_capacity = max(1, -(-capacity_bytes // disk_bytes))
    arms = max(arms_for_rate, arms_for_capacity)
    dollars = (arms * disk_bytes / MIB) * TECHNOLOGIES["disk"].cost_per_mib
    achievable = arms * iops_per_arm / DISK_IOS_PER_TXN
    return Alternative(
        name=f"disk array ({arms} arms)",
        dollars=dollars,
        achievable_tps=achievable,
        units=f"{arms} x {disk_bytes >> 30} GiB disks",
        retention="none needed",
    )


def dram_alternative(capacity_bytes: int,
                     ride_through_hours: float = 48.0) -> Alternative:
    """Battery-backed DRAM: fast but hungry (1 A/GiB retention).

    The battery to ride out a ``ride_through_hours`` outage is the
    catch the paper points at ("requires more power for data retention
    than batteries can provide for extended periods").
    """
    gib = capacity_bytes / GIB
    amps = 1.0 * gib  # Figure 1: 1 A per GiB
    watt_hours = amps * SUPPLY_VOLTS * ride_through_hours
    dollars = (capacity_bytes / MIB) * TECHNOLOGIES["dram"].cost_per_mib
    return Alternative(
        name="battery-backed DRAM",
        dollars=dollars,
        achievable_tps=float("inf"),
        units=f"{gib:.0f} GiB DRAM",
        retention=f"{amps:.0f} A standby -> {watt_hours:,.0f} Wh battery "
                  f"for {ride_through_hours:.0f} h",
    )


def sram_alternative(capacity_bytes: int) -> Alternative:
    gib = capacity_bytes / GIB
    milliamps = 2.0 * gib  # Figure 1: 2 mA per GiB
    dollars = (capacity_bytes / MIB) * TECHNOLOGIES["sram"].cost_per_mib
    return Alternative(
        name="battery-backed SRAM",
        dollars=dollars,
        achievable_tps=float("inf"),
        units=f"{gib:.0f} GiB SRAM",
        retention=f"{milliamps:.0f} mA standby (trivial battery)",
    )


def envy_alternative(config: EnvyConfig,
                     saturation_tps: float = 30_000.0) -> Alternative:
    cost = system_cost(config)
    return Alternative(
        name="eNVy (Flash + SRAM)",
        dollars=cost.total_dollars,
        achievable_tps=saturation_tps,
        units=f"{config.flash.array_bytes >> 30} GiB Flash + "
              f"{(config.sram.buffer_bytes + config.page_table_bytes) >> 20}"
              f" MiB SRAM",
        retention="none needed (Flash) + small battery (SRAM)",
    )


def compare_alternatives(target_tps: float = 30_000.0,
                         config: EnvyConfig = None) -> List[Alternative]:
    """The Section 1 comparison for a capacity and transaction target."""
    config = config or EnvyConfig.paper()
    capacity = config.flash.array_bytes
    return [
        disk_alternative(capacity, target_tps),
        dram_alternative(capacity),
        sram_alternative(capacity),
        envy_alternative(config, target_tps),
    ]
