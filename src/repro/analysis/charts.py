"""Terminal line charts for the figure benchmarks.

The paper's results are line plots; the benchmarks print their data as
tables, and these helpers additionally render them as ASCII charts so a
terminal run shows the *shape* — the thing the reproduction targets —
at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["line_chart", "sparkline"]

_MARKERS = "o+x*#@"
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line bar sketch of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    cells = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK) - 1))
        cells.append(_SPARK[index])
    return "".join(cells)


def line_chart(series: Dict[str, List[Tuple[float, float]]],
               width: int = 60, height: int = 16,
               x_label: str = "", y_label: str = "",
               y_min: Optional[float] = None,
               y_max: Optional[float] = None) -> str:
    """Plot named (x, y) series on a shared ASCII grid.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Axes are annotated with the data ranges.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("no data to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low = y_min if y_min is not None else min(ys)
    y_high = y_max if y_max is not None else max(ys)
    if x_high == x_low:
        x_high = x_low + 1
    if y_high == y_low:
        y_high = y_low + 1

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        column = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y - y_low) / (y_high - y_low) * (height - 1))
        row = min(max(row, 0), height - 1)
        grid[height - 1 - row][column] = marker

    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        previous = None
        for x, y in sorted(values):
            if previous is not None:
                # Linear interpolation so the lines read as lines.
                px, py = previous
                steps = max(1, int((x - px) / (x_high - x_low)
                                   * (width - 1)))
                for step in range(1, steps):
                    t = step / steps
                    plot(px + (x - px) * t, py + (y - py) * t, ".")
            plot(x, y, marker)
            previous = (x, y)

    lines = []
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width // 2) + f"{x_high:g}".rjust(
        width - width // 2)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    lines.append(" " * (margin + 1) + "   ".join(legend))
    return "\n".join(lines)
