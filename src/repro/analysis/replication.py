"""Replication statistics for stochastic experiments.

Single-seed results can flatter or slander a policy; the cleaning-cost
and throughput experiments are all seeded simulations, so proper
reporting runs several seeds and quotes mean ± confidence interval.
This helper keeps that honest without dragging in scipy for a t-table —
the two-sided 95% t quantiles are embedded for the small sample counts
replication actually uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["ReplicationSummary", "replicate"]

#: Two-sided 95% Student-t quantiles by degrees of freedom (1..30).
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def _t95(dof: int) -> float:
    if dof < 1:
        raise ValueError("need at least two samples for an interval")
    if dof <= len(_T95):
        return _T95[dof - 1]
    return 1.96  # the normal limit is fine past 30 samples


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and spread of one metric over replicated runs."""

    samples: tuple

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (Bessel-corrected)."""
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples)
                         / (len(self.samples) - 1))

    @property
    def sem(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return self.std / math.sqrt(len(self.samples))

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval on the mean."""
        if len(self.samples) < 2:
            return 0.0
        return _t95(len(self.samples) - 1) * self.sem

    def overlaps(self, other: "ReplicationSummary") -> bool:
        """Whether the two 95% intervals overlap (a quick screen, not a
        substitute for a proper test)."""
        return (abs(self.mean - other.mean)
                <= self.ci95 + other.ci95)

    def __str__(self) -> str:
        if self.count < 2:
            return f"{self.mean:.3g} (n=1)"
        return (f"{self.mean:.3g} ± {self.ci95:.2g} "
                f"(n={self.count})")


def replicate(experiment: Callable[[int], float],
              seeds: Sequence[int]) -> ReplicationSummary:
    """Run ``experiment(seed)`` for every seed and summarise.

    >>> summary = replicate(lambda seed: float(seed % 3), [0, 1, 2, 3])
    >>> round(summary.mean, 3)
    1.0
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: List[float] = [float(experiment(seed)) for seed in seeds]
    return ReplicationSummary(tuple(samples))
