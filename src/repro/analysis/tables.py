"""Formatting helpers for the benchmark harness.

The benchmarks print each figure/table of the paper as plain-text rows
(the same series the paper plots); these helpers keep that output
consistent and machine-greppable for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "banner"]


def banner(title: str, width: int = 72) -> str:
    """A visually distinct header for one experiment's output."""
    line = "=" * width
    return f"{line}\n{title}\n{line}"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 precision: int = 2) -> str:
    """Render rows as an aligned plain-text table."""
    rendered: List[List[str]] = [[_cell(h, precision) for h in headers]]
    for row in rows:
        rendered.append([_cell(value, precision) for value in row])
    widths = [max(len(r[col]) for r in rendered)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[object]],
                  precision: int = 2) -> str:
    """Render one plotted series as "name: (x, y) (x, y) ..."."""
    cells = " ".join(
        "(" + ", ".join(_cell(v, precision) for v in point) + ")"
        for point in points)
    return f"{name}: {cells}"


def _cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)
