"""Pluggable storage backends and the trace/replay subsystem.

The controller consumes the :class:`~repro.backends.base.
StorageBackend` contract instead of constructing the Flash array
directly; ``EnvyConfig(backend="<spec>")`` names any registered
substrate.  Shipped backends:

==========  ==========================================================
``flash``   the simulated Flash array (Figure 12 timing; the default)
``ramdisk`` the :mod:`repro.ramdisk` block device over a DRAM image
``file``    file-backed persistent store, survives process restarts
``onfi``    ONFI-style NAND with command/address/status cycle timing
            and factory bad-block marks
==========  ==========================================================

``python -m repro backends`` lists the registries; ``python -m repro
replay`` re-drives a recorded run against any backend.  See
``docs/BACKENDS.md``.

Importing this package registers the built-in backends and workloads
(each module's ``@register_backend`` decorator runs at import time).
"""

from . import flashsim as _flashsim  # noqa: F401  (registers "flash")
from . import filestore as _filestore  # noqa: F401  (registers "file")
from . import onfi as _onfi  # noqa: F401  (registers "onfi")
from . import ramdisk as _ramdisk  # noqa: F401  (registers "ramdisk")
from .base import StorageBackend
from .consistency import (consistency_report, default_backends,
                          default_config, run_consistency)
from .filestore import FileBackend, FileStoreError
from .onfi import OnfiBackend, OnfiBus
from .ramdisk import RamdiskBackend, RamImage
from .registry import (BackendInfo, RegistryError, WorkloadInfo,
                       backend_info, backend_names, create_backend,
                       create_workload, parse_spec, register_backend,
                       register_workload, workload_info, workload_names)
from .trace import (ReplayResult, RunRecorder, RunTrace, config_digest,
                    record_tpca, record_workload, replay_trace,
                    state_digest)

__all__ = [
    "StorageBackend",
    "BackendInfo", "WorkloadInfo", "RegistryError",
    "register_backend", "register_workload",
    "create_backend", "create_workload",
    "backend_names", "workload_names",
    "backend_info", "workload_info", "parse_spec",
    "FileBackend", "FileStoreError",
    "OnfiBackend", "OnfiBus",
    "RamdiskBackend", "RamImage",
    "RunTrace", "RunRecorder", "ReplayResult",
    "config_digest", "state_digest",
    "record_tpca", "record_workload", "replay_trace",
    "run_consistency", "consistency_report",
    "default_config", "default_backends",
]
