"""The storage-backend contract: one controller, many substrates.

eNVy's controller logic — copy-on-write remapping, FIFO write
buffering, segment cleaning, wear leveling, and the recovery scan — is
substrate-independent in the paper: nothing in Sections 3-4 depends on
the medium being the simulated Flash array beyond write-once pages,
bulk-erase segments, and per-operation timing.  This module names that
boundary.  :class:`StorageBackend` is the abstract contract consumed by
:class:`~repro.core.binding.BoundStore`,
:class:`~repro.core.controller.EnvyController`,
:func:`~repro.core.recovery.recover_from_flash`, and the chaos
harness's :class:`~repro.core.chaos.KillSwitch`.

The contract (all of it already honoured by
:class:`~repro.flash.array.FlashArray`, the reference implementation):

Geometry and addressing
    ``num_segments``, ``pages_per_segment``, ``page_bytes``,
    ``total_pages``, ``store_data``, ``segment(i)``,
    ``split_physical``/``join_physical``, ``bank_of``.

Page and segment operations
    ``program_page(segment, data, oob) -> (page, time_ns)`` — append at
    the segment's write pointer, stamping the out-of-band
    self-description record in the same cycle;
    ``read_page``/``read_oob`` — through the fault/ECC path when armed;
    ``invalidate_page`` — mark a superseded copy; ``erase_segment ->
    time_ns`` — bulk erase, raising
    :class:`~repro.flash.errors.BadBlockError` on permanent failure so
    the caller can retire the block.

Per-operation cost hooks
    ``read_time_ns``/``program_time_ns``/``erase_time_ns(segment)`` —
    the controller charges every host access and every piece of
    background work through these, so a backend changes the timing
    model simply by overriding them (the ONFI backend adds its
    command/address/data cycles here; the ramdisk backend substitutes
    DRAM constants from :mod:`repro.core.costmodel`).

Wear, faults, bad blocks
    ``wear_stats()``, ``attach_faults(...)``, ``fault_listeners``,
    ``emit_fault``, ``bad_segments()``, ``strict_endurance``,
    ``fault_stats``.

Optional backend extensions (discovered by ``getattr``, so the default
Flash path pays nothing):

* ``backend_name`` — short registry name, folded into
  ``health_report()``;
* ``factory_bad_segments`` — physical segments carrying factory
  bad-block marks; the controller retires them into the PR-1
  :class:`~repro.faults.badblocks.BadBlockTable` at format time;
* ``media_report()`` — flat dict of medium-level counters (bus cycles,
  device ops, file bytes), surfaced as ``backend_*`` keys in
  ``health_report()``;
* ``reopen()`` — return a fresh backend instance rebuilt from the
  persistent medium (the file-backed store uses this to prove restart
  survival: the reopened array must recover byte-identically).

Backends are free to subclass :class:`~repro.flash.array.FlashArray`
(all four registered implementations do) — that inherits the
write-once/bulk-erase state machine, the fault/ECC plumbing and the
wear bookkeeping, so a backend only overrides where its medium
genuinely differs.  A from-scratch implementation just has to satisfy
this ABC.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from ..flash.array import FlashArray, WearStats

__all__ = ["StorageBackend"]


class StorageBackend(abc.ABC):
    """Abstract contract every storage backend satisfies.

    ``isinstance(obj, StorageBackend)`` holds for
    :class:`~repro.flash.array.FlashArray` and every subclass — the
    array is registered below as the reference implementation.
    """

    # --- geometry ------------------------------------------------------
    num_segments: int
    pages_per_segment: int
    page_bytes: int
    store_data: bool

    @abc.abstractmethod
    def segment(self, index: int):
        """The :class:`~repro.flash.segment.FlashSegment` at ``index``."""

    # --- operations ----------------------------------------------------

    @abc.abstractmethod
    def program_page(self, segment: int, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> Tuple[int, int]:
        """Program the next page of ``segment``; return (page, ns)."""

    @abc.abstractmethod
    def read_page(self, segment: int, page: int) -> Optional[bytes]:
        """Read one page's payload (None in stateless mode)."""

    @abc.abstractmethod
    def read_oob(self, segment: int, page: int) -> Optional[bytes]:
        """Read one page's spare-area self-description."""

    @abc.abstractmethod
    def invalidate_page(self, segment: int, page: int) -> None:
        """Mark a superseded copy INVALID (reclaimed only by erase)."""

    @abc.abstractmethod
    def erase_segment(self, segment: int) -> int:
        """Bulk-erase ``segment``; return the erase time in ns."""

    # --- per-op cost hooks ---------------------------------------------

    @abc.abstractmethod
    def read_time_ns(self, segment: int = 0) -> int: ...

    @abc.abstractmethod
    def program_time_ns(self, segment: int = 0) -> int: ...

    @abc.abstractmethod
    def erase_time_ns(self, segment: int = 0) -> int: ...

    # --- wear / faults -------------------------------------------------

    @abc.abstractmethod
    def wear_stats(self) -> WearStats: ...

    @abc.abstractmethod
    def bad_segments(self) -> List[int]: ...

    # --- optional extensions (defaults keep the Flash path untouched) --

    def media_report(self) -> dict:
        """Medium-level counters for ``health_report()`` (flat dict)."""
        return {}


#: FlashArray predates the ABC; register it as the reference
#: implementation rather than inserting an abc into its MRO (which
#: would add metaclass overhead to the hot simulation path).
StorageBackend.register(FlashArray)
