"""Backend-matrix benchmark: the cross-backend consistency gate, timed.

``benchmarks/bench_backends.py`` and the CI ``backend-matrix`` job land
here.  The backend boundary promises three things, each a scenario:

* **consistency** — one recorded TPC-A trace replayed on every
  registered backend produces one logical page-state digest (the file
  backend also reopens its image and recovers to the same digest).
* **default_parity** — ``backend=None`` and ``backend="flash"`` are
  the same system: identical digest *and* identical simulated
  nanoseconds for the same trace (the bit-identical-default gate
  behind the committed PERF/SERVICE/ATTACK/OBS baselines).
* **replay_throughput** — replaying a recorded trace through the
  default backend, wall-clock; this is the gated perf number (the
  backend indirection must not slow the hot path).

As everywhere in the perf harness, wall numbers are compared only
after normalizing by :func:`repro.perf.bench.calibrate`, and the
seeded simulated outputs (digests, simulated ns, op counts) must match
the committed baseline bit for bit.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional

from ..core.config import EnvyConfig
from ..perf.bench import calibrate
from .consistency import default_config, run_consistency
from .trace import record_tpca, record_workload, replay_trace

__all__ = ["SCENARIOS", "run_bench", "check_contract",
           "compare_reports", "main"]

SCHEMA = "envy-bench-backends/1"

SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    "consistency": {
        "full": dict(kind="consistency", transactions=60, seed=0),
        "smoke": dict(kind="consistency", transactions=24, seed=0),
    },
    "default_parity": {
        "full": dict(kind="parity", transactions=40, seed=1),
        "smoke": dict(kind="parity", transactions=16, seed=1),
    },
    "replay_throughput": {
        "full": dict(kind="throughput", writes=4000, seed=3, repeats=3,
                     num_segments=16, pages_per_segment=64),
        "smoke": dict(kind="throughput", writes=1200, seed=3, repeats=5,
                      num_segments=8, pages_per_segment=32),
    },
}


def _run_consistency(spec: Dict[str, Any]) -> Dict[str, Any]:
    start = time.perf_counter()
    report = run_consistency(transactions=spec["transactions"],
                             seed=spec["seed"])
    wall_s = time.perf_counter() - start
    # Key per-backend results by backend name, not spec string (the
    # file spec embeds a temp path that differs every run).
    backends = {}
    for entry in report["backends"].values():
        backends[entry["backend_name"]] = {
            "digest": entry["digest"],
            "total_ns": entry["total_ns"],
            "match": entry["match"],
            "reopen_digest": entry["reopen_digest"],
        }
    return {
        "wall_s": round(wall_s, 4),
        "fidelity": {
            "reference_digest": report["reference_digest"],
            "consistent": report["consistent"],
            "distinct_digests": report["distinct_digests"],
            "ops": report["ops"],
            "backends": backends,
        },
    }


def _run_parity(spec: Dict[str, Any]) -> Dict[str, Any]:
    base = default_config()
    start = time.perf_counter()
    trace, reference = record_tpca(base,
                                   transactions=spec["transactions"],
                                   seed=spec["seed"])
    direct = replay_trace(trace, replace(base, backend=None))
    named = replay_trace(trace, replace(base, backend="flash"))
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "fidelity": {
            "reference_digest": reference.digest,
            "digest_default": direct.digest,
            "digest_flash": named.digest,
            "ns_default": direct.total_ns,
            "ns_flash": named.total_ns,
            "ops": direct.ops,
        },
    }


def _run_throughput(spec: Dict[str, Any]) -> Dict[str, Any]:
    config = EnvyConfig.small(num_segments=spec["num_segments"],
                              pages_per_segment=spec["pages_per_segment"])
    trace, _ = record_workload(config, "uniform", spec["writes"],
                               seed=spec["seed"])
    wall_s = float("inf")
    result = None
    for _ in range(spec.get("repeats", 1)):
        start = time.perf_counter()
        result = replay_trace(trace, config)
        wall_s = min(wall_s, time.perf_counter() - start)
    return {
        "wall_s": round(wall_s, 4),
        "ops_per_wall_s": round(len(trace.ops) / wall_s, 1),
        "fidelity": {
            "digest": result.digest,
            "ops": result.ops,
            "total_ns": result.total_ns,
        },
    }


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    """Run every scenario and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        # Best-of-5: scheduler noise only ever slows the probe, so the
        # fastest sample is the machine's true speed score.
        "calibration_ops_per_s": round(max(calibrate()
                                           for _ in range(5)), 1),
        "scenarios": {},
    }
    runners = {"consistency": _run_consistency, "parity": _run_parity,
               "throughput": _run_throughput}
    for name, variants in SCENARIOS.items():
        spec = variants[mode]
        report["scenarios"][name] = runners[spec["kind"]](spec)
    return report


def check_contract(report: Dict[str, Any]) -> List[str]:
    """Self-contained contract checks (no baseline needed)."""
    failures: List[str] = []
    scenarios = report.get("scenarios", {})
    consistency = scenarios.get("consistency", {}).get("fidelity", {})
    if not consistency.get("consistent"):
        digests = {name: entry["digest"][:12] for name, entry in
                   consistency.get("backends", {}).items()}
        failures.append(
            f"cross-backend digests diverged: {digests} — a backend "
            f"influenced placement")
    backends = consistency.get("backends", {})
    file_entry = backends.get("file", {})
    if file_entry and file_entry.get("reopen_digest") != \
            file_entry.get("digest"):
        failures.append(
            f"file backend lost state across reopen+recovery "
            f"({file_entry.get('reopen_digest')!r} != "
            f"{file_entry.get('digest')!r})")
    parity = scenarios.get("default_parity", {}).get("fidelity", {})
    if parity:
        if parity.get("digest_default") != parity.get("digest_flash"):
            failures.append("backend='flash' digest differs from the "
                            "direct-construction default")
        if parity.get("ns_default") != parity.get("ns_flash"):
            failures.append(
                f"backend='flash' simulated time differs from the "
                f"default ({parity.get('ns_flash')} != "
                f"{parity.get('ns_default')} ns) — the registry path "
                f"is not bit-identical")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25) -> List[str]:
    """Regression check vs a committed report; returns failures.

    Fidelity (digests, simulated ns, op counts) must match exactly for
    every scenario; the replay throughput is the gated wall number.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same "
            f"--smoke setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        if cur_entry["fidelity"] != base_entry["fidelity"]:
            failures.append(f"{name}: seeded outputs changed — "
                            f"determinism break")
        if name != "replay_throughput":
            continue
        # Gate on the more favourable of the raw and calibration-
        # normalized ratios (see obs/bench_overhead.py for why).
        base_raw = base_entry["ops_per_wall_s"]
        raw_ratio = (cur_entry["ops_per_wall_s"] / base_raw
                     if base_raw else 0.0)
        cur_norm = cur_entry["ops_per_wall_s"] / cur_calib
        base_norm = base_entry["ops_per_wall_s"] / base_calib
        norm_ratio = cur_norm / base_norm if base_norm else 0.0
        ratio = max(raw_ratio, norm_ratio)
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: replay throughput fell to {ratio:.0%} of "
                f"baseline (raw {raw_ratio:.0%}, normalized "
                f"{norm_ratio:.0%}; {cur_entry['ops_per_wall_s']:,.0f}/s "
                f"vs {base_entry['ops_per_wall_s']:,.0f}/s)")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"backend-matrix bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    consistency = report["scenarios"]["consistency"]["fidelity"]
    lines.append(
        f"  consistency        reference "
        f"{consistency['reference_digest'][:16]} over "
        f"{consistency['ops']:,} ops")
    for name, entry in sorted(consistency["backends"].items()):
        mark = "ok" if entry["match"] else "MISMATCH"
        reopen = (" (reopen ok)" if entry["reopen_digest"] ==
                  entry["digest"] and entry["reopen_digest"] else "")
        lines.append(f"    {name:<9} {entry['digest'][:16]} "
                     f"{entry['total_ns']:>14,} ns  {mark}{reopen}")
    parity = report["scenarios"]["default_parity"]["fidelity"]
    same = (parity["digest_default"] == parity["digest_flash"]
            and parity["ns_default"] == parity["ns_flash"])
    lines.append(f"  default_parity     backend='flash' "
                 f"{'bit-identical to default' if same else 'DIVERGED'} "
                 f"({parity['ns_default']:,} ns)")
    throughput = report["scenarios"]["replay_throughput"]
    lines.append(f"  replay_throughput  "
                 f"{throughput['ops_per_wall_s']:>10,.0f} ops/wall-s "
                 f"({throughput['fidelity']['ops']:,} ops, digest "
                 f"{throughput['fidelity']['digest'][:16]})")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_backends",
        description="eNVy backend-matrix benchmark (cross-backend "
                    "digest consistency, default-backend parity, "
                    "replay throughput)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--output", default="BENCH_BACKENDS.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized replay-throughput "
                             "drop (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_contract(report)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression)
    if failures:
        print("\nBACKEND-MATRIX BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
