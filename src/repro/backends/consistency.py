"""Cross-backend consistency: same trace, same state, every substrate.

The backend boundary's core promise is that nothing below it influences
*placement*: timing hooks change how long operations are charged, media
mirrors change where bytes additionally land, factory bad blocks change
which physical segments serve which positions — but the logical page
state after a run is a pure function of the config and the host
operation stream.  This harness makes the promise executable:

1. record one seeded TPC-A run against the default Flash backend,
2. replay the identical trace against every backend under test
   (file-backed runs also reopen their image and recover, proving the
   persisted state carries the same digest),
3. compare :func:`~repro.backends.trace.state_digest` across all runs.

``python -m repro backends --check`` and the ``backend-matrix`` CI job
drive :func:`consistency_report`; the bench harness
(:mod:`repro.backends.bench`) embeds the same check as its fidelity
gate.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import replace
from typing import List, Optional, Sequence

from ..core.config import EnvyConfig
from .trace import RunTrace, record_tpca, replay_trace, state_digest

__all__ = ["default_config", "default_backends", "consistency_report",
           "run_consistency"]


def default_config(**overrides) -> EnvyConfig:
    """The harness geometry: small, with reserves for factory bads."""
    params = {"num_segments": 12, "pages_per_segment": 16,
              "reserve_segments": 2}
    params.update(overrides)
    return EnvyConfig.small(**params)


def default_backends(tmpdir: str) -> List[str]:
    """One spec per registered backend family, image files in tmpdir."""
    image = os.path.join(tmpdir, "envy-consistency.img")
    return ["flash",
            "ramdisk",
            f"file:path={image}",
            "onfi:factory_bad=1,bb_seed=7"]


def _file_reopen_digest(result) -> Optional[str]:
    """For a file-backed run: reopen the image and recover from it.

    Returns the digest of the *recovered* controller — the state that
    actually survived the simulated process restart — or None when the
    backend has no reopen.
    """
    ctrl = result.controller
    if ctrl is None or not hasattr(ctrl.array, "reopen"):
        return None
    from ..core.recovery import recover_from_flash

    reopened = ctrl.array.reopen()
    recovered, _report = recover_from_flash(reopened, ctrl.config)
    return state_digest(recovered)


def run_consistency(config: Optional[EnvyConfig] = None,
                    backends: Optional[Sequence[str]] = None,
                    transactions: int = 40, seed: int = 0,
                    tmpdir: Optional[str] = None,
                    trace: Optional[RunTrace] = None) -> dict:
    """Record once, replay everywhere, compare digests.

    Returns a JSON-safe report::

        {"reference_digest": ..., "transactions": ..., "ops": ...,
         "backends": {spec: {"digest": ..., "match": ...,
                             "total_ns": ..., "reopen_digest": ...}},
         "consistent": bool}

    A caller-supplied ``trace`` skips the recording step (the CLI uses
    this to replay a saved trace across the matrix).
    """
    own_tmp = None
    if tmpdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="envy-backends-")
        tmpdir = own_tmp.name
    try:
        base = config if config is not None else default_config()
        base = replace(base, backend=None)
        if trace is None:
            trace, reference = record_tpca(base,
                                           transactions=transactions,
                                           seed=seed)
            reference_digest = reference.digest
        else:
            reference_digest = None
        specs = (list(backends) if backends is not None
                 else default_backends(tmpdir))
        report = {
            "transactions": transactions,
            "seed": seed,
            "ops": len(trace.ops),
            "writes": trace.writes,
            "reads": trace.reads,
            "reference_digest": reference_digest,
            "backends": {},
        }
        digests = set()
        if reference_digest is not None:
            digests.add(reference_digest)
        consistent = True
        for spec in specs:
            cfg = replace(base, backend=spec)
            result = replay_trace(trace, cfg,
                                  keep_controller=True)
            reopen_digest = _file_reopen_digest(result)
            expected = reference_digest or result.digest
            match = (result.digest == expected
                     and (reopen_digest is None
                          or reopen_digest == expected))
            consistent = consistent and match
            digests.add(result.digest)
            entry = result.summary()
            entry["match"] = match
            entry["reopen_digest"] = reopen_digest
            entry["backend_name"] = getattr(result.controller.array,
                                            "backend_name", "flash")
            report["backends"][spec] = entry
            result.controller = None
        report["distinct_digests"] = len(digests)
        report["consistent"] = consistent and len(digests) == 1
        return report
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


#: Alias matching the CLI/CI vocabulary.
consistency_report = run_consistency
