"""Backend (c): a file-backed persistent store that survives restarts.

Every program, invalidate, and erase is written through to a flat image
file, so the array's durable contents — page payloads, out-of-band
self-description stamps, erase counts, bad-block marks — exist outside
the Python process.  Re-opening the file reconstructs the array, and
:func:`~repro.core.recovery.recover_from_flash` over the reopened array
rebuilds the controller exactly as it would over the in-memory one:
the restart-survival property the chaos parity tests pin down.

What is persisted is what real cells hold: payloads, OOB stamps, and
whether a slot was ever programmed.  The VALID/INVALID distinction is
controller bookkeeping (invalidate marks are persisted as a courtesy
for inspection, but recovery re-derives liveness from OOB epochs), and
the SRAM side — page table, write buffer — is deliberately absent, so
a reopened image *must* go through the recovery scan, exactly like
powering on a real device.

File layout (little-endian, version 1)::

    header   magic "eNVyFSB1", u32 version, u32 num_segments,
             u32 pages_per_segment, u32 page_bytes, u32 oob_bytes
    segment  u64 erase_count, u8 is_bad, 7 pad bytes, then per page:
             u8 state (0 erased / 1 programmed / 2 invalidated),
             u8 has_data, u8 has_oob, 5 pad bytes,
             page_bytes payload, oob_bytes spare area

Writes go through a buffered handle flushed after every mutating
operation (op-granularity durability: a chaos kill raises *before* the
interrupted operation mutates the array, so the file never holds a
half-applied operation the in-memory model doesn't).
"""

from __future__ import annotations

import os
import struct
from typing import Optional, Tuple

from ..flash.array import FlashArray
from ..flash.errors import BadBlockError
from ..flash.oob import OOB_BYTES
from ..flash.segment import PageState
from .registry import register_backend

__all__ = ["FileBackend", "FileStoreError", "make_file_backend"]

MAGIC = b"eNVyFSB1"
VERSION = 1
_HEADER = struct.Struct("<8s5I")
_SEG_HEADER = struct.Struct("<QB7x")
_SLOT_HEADER = struct.Struct("<BBB5x")


class FileStoreError(Exception):
    """Raised for malformed or geometry-mismatched image files."""


class FileBackend(FlashArray):
    """FlashArray whose durable state is written through to a file."""

    backend_name = "file"

    def __init__(self, params=None, page_bytes: int = 256,
                 store_data: bool = True, spare_segments: int = 0,
                 path: Optional[str] = None, create: bool = True,
                 fsync: bool = False) -> None:
        if path is None:
            raise ValueError("file backend needs path=<image file>")
        super().__init__(params, page_bytes, store_data=store_data,
                         spare_segments=spare_segments)
        self.path = str(path)
        self.fsync = bool(fsync)
        self._spare_segments = spare_segments
        self.media_writes = 0
        self.media_bytes_written = 0
        self._slot_size = _SLOT_HEADER.size + page_bytes + OOB_BYTES
        self._seg_size = (_SEG_HEADER.size
                          + self.pages_per_segment * self._slot_size)
        if create:
            self._fh = open(self.path, "w+b")
            self._format_file()
        else:
            self._fh = open(self.path, "r+b")
            self._load_file()

    # ------------------------------------------------------------------
    # Image layout
    # ------------------------------------------------------------------

    def _seg_offset(self, segment: int) -> int:
        return _HEADER.size + segment * self._seg_size

    def _slot_offset(self, segment: int, page: int) -> int:
        return (self._seg_offset(segment) + _SEG_HEADER.size
                + page * self._slot_size)

    def _write_at(self, offset: int, payload: bytes) -> None:
        self._fh.seek(offset)
        self._fh.write(payload)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.media_writes += 1
        self.media_bytes_written += len(payload)

    def _slot_record(self, segment: int, page: int) -> bytes:
        seg = self.segments[segment]
        state = int(seg.states[page])
        data = seg.data[page] if (self.store_data and seg.data) else None
        oob = seg.oob[page]
        return (_SLOT_HEADER.pack(state, int(data is not None),
                                  int(oob is not None))
                + (data if data is not None else bytes(self.page_bytes))
                + (oob if oob is not None else bytes(OOB_BYTES)))

    def _seg_header(self, segment: int) -> bytes:
        seg = self.segments[segment]
        return _SEG_HEADER.pack(seg.erase_count, int(seg.is_bad))

    def _format_file(self) -> None:
        """Write the whole (erased) image in one pass."""
        self._fh.seek(0)
        self._fh.truncate()
        image = bytearray()
        image += _HEADER.pack(MAGIC, VERSION, self.num_segments,
                              self.pages_per_segment, self.page_bytes,
                              OOB_BYTES)
        erased_slot = (_SLOT_HEADER.pack(0, 0, 0)
                       + bytes(self.page_bytes) + bytes(OOB_BYTES))
        for segment in range(self.num_segments):
            image += self._seg_header(segment)
            image += erased_slot * self.pages_per_segment
        self._write_at(0, bytes(image))

    def _load_file(self) -> None:
        """Rebuild the in-memory segments from an existing image."""
        self._fh.seek(0)
        raw = self._fh.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise FileStoreError(f"{self.path}: truncated header")
        magic, version, n_seg, n_pages, p_bytes, o_bytes = \
            _HEADER.unpack(raw)
        if magic != MAGIC:
            raise FileStoreError(f"{self.path}: not an eNVy image "
                                 f"(bad magic {magic!r})")
        if version != VERSION:
            raise FileStoreError(
                f"{self.path}: image version {version} not supported "
                f"(expected {VERSION})")
        if (n_seg, n_pages, p_bytes) != (self.num_segments,
                                         self.pages_per_segment,
                                         self.page_bytes):
            raise FileStoreError(
                f"{self.path}: geometry mismatch — image has {n_seg} "
                f"segments x {n_pages} pages x {p_bytes} B, config "
                f"expects {self.num_segments} x "
                f"{self.pages_per_segment} x {self.page_bytes} B")
        if o_bytes != OOB_BYTES:
            raise FileStoreError(
                f"{self.path}: OOB size mismatch ({o_bytes} != "
                f"{OOB_BYTES})")
        for segment in range(self.num_segments):
            seg = self.segments[segment]
            self._fh.seek(self._seg_offset(segment))
            erase_count, is_bad = _SEG_HEADER.unpack(
                self._fh.read(_SEG_HEADER.size))
            seg.erase_count = erase_count
            seg.is_bad = bool(is_bad)
            write_pointer = 0
            for page in range(self.pages_per_segment):
                state, has_data, has_oob = _SLOT_HEADER.unpack(
                    self._fh.read(_SLOT_HEADER.size))
                payload = self._fh.read(self.page_bytes)
                oob = self._fh.read(OOB_BYTES)
                if state == int(PageState.ERASED):
                    continue
                seg.states[page] = PageState(state)
                if self.store_data and has_data:
                    seg.data[page] = bytes(payload)
                if has_oob:
                    seg.oob[page] = bytes(oob)
                seg.program_count += 1
                write_pointer = page + 1
            seg.write_pointer = write_pointer
            seg.rebuild_live_slots()
            seg.live_count = len(seg.live_slots)

    def reopen(self) -> "FileBackend":
        """A fresh backend rebuilt from the image file on disk.

        Models a process restart: only the file survives.  The caller
        should feed the result to :func:`~repro.core.recovery.
        recover_from_flash` — the SRAM side is gone.
        """
        self._fh.flush()
        return FileBackend(self.params, self.page_bytes,
                           store_data=self.store_data,
                           spare_segments=self._spare_segments,
                           path=self.path, create=False,
                           fsync=self.fsync)

    def close(self) -> None:
        self._fh.close()

    # ------------------------------------------------------------------
    # Write-through operations
    # ------------------------------------------------------------------

    def program_page(self, segment: int, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> Tuple[int, int]:
        page, ns = super().program_page(segment, data, oob)
        self._write_at(self._slot_offset(segment, page),
                       self._slot_record(segment, page))
        return page, ns

    def invalidate_page(self, segment: int, page: int) -> None:
        super().invalidate_page(segment, page)
        self._write_at(self._slot_offset(segment, page),
                       self._slot_record(segment, page))

    def erase_segment(self, segment: int) -> int:
        try:
            ns = super().erase_segment(segment)
        except BadBlockError:
            # The grown-bad mark is durable state: persist it so a
            # reopened image knows the segment is retired.
            self._write_at(self._seg_offset(segment),
                           self._seg_header(segment))
            raise
        erased_slot = (_SLOT_HEADER.pack(0, 0, 0)
                       + bytes(self.page_bytes) + bytes(OOB_BYTES))
        self._write_at(self._seg_offset(segment),
                       self._seg_header(segment)
                       + erased_slot * self.pages_per_segment)
        return ns

    # ------------------------------------------------------------------

    def media_report(self) -> dict:
        return {
            "medium": "file",
            "path": self.path,
            "image_bytes": _HEADER.size
            + self.num_segments * self._seg_size,
            "media_writes": self.media_writes,
            "media_bytes_written": self.media_bytes_written,
            "fsync": self.fsync,
        }


@register_backend(
    "file",
    summary="file-backed persistent store (survives process restarts; "
            "reopen + recovery scan rebuilds the controller)",
    options="path=<image file> (required), fsync=<bool>")
def make_file_backend(config, store_data, spare_segments,
                      path=None, fsync=False):
    return FileBackend(config.flash, config.page_bytes,
                       store_data=store_data,
                       spare_segments=spare_segments,
                       path=path, fsync=fsync)
