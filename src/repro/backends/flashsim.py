"""Backend (a): the simulated Flash array — the default substrate.

This is :class:`~repro.flash.array.FlashArray` itself, registered under
the name ``flash``.  ``EnvyConfig(backend=None)`` and
``EnvyConfig(backend="flash")`` construct byte-identical arrays: the
registry factory passes exactly the arguments the controller's direct
construction path passes, so the default configuration remains
bit-identical to the pre-backend-era system (gated by the committed
PERF/SERVICE/ATTACK/OBS baselines).
"""

from __future__ import annotations

from ..flash.array import FlashArray
from .registry import register_backend

__all__ = ["make_flash_backend"]


@register_backend(
    "flash",
    summary="simulated Flash array (Figure 12 timing; the default)",
    options="none")
def make_flash_backend(config, store_data, spare_segments):
    return FlashArray(config.flash, config.page_bytes,
                      store_data=store_data,
                      spare_segments=spare_segments)
