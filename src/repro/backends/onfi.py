"""Backend (d): an ONFI-style NAND device with real command cycles.

The other backends hand the controller an abstract "program this page"
operation; a real NAND part hands it a bus.  This backend models the
ONFI command set a Flash controller actually drives:

=========  =====================================  ==================
operation  command sequence                        cycles on the bus
=========  =====================================  ==================
read       00h, 5 address cycles, 30h, data out   2 + A + page bytes
program    80h, 5 address cycles, data in, 10h,   2 + A + page+OOB
           70h status poll                        + 1 status
erase      60h, 3 row-address cycles, D0h,        2 + 3 + 1 status
           70h status poll
=========  =====================================  ==================

Every cycle costs ``cycle_ns`` on top of the cell-level Figure 12
array times (tR/tPROG/tBERS), and the total is charged through the
standard per-op cost hooks — so the controller's latency accounting
sees ONFI bus transfer time without knowing ONFI exists.  The
:class:`OnfiBus` keeps cycle counters and a bounded log of recent
command sequences for the tests and ``media_report()``.

Real parts also ship with factory bad-block marks (ONFI 5.x: the
defect area of a factory-bad block reads non-FFh).  ``factory_bad=N``
marks N seeded-random segments bad before the controller ever sees the
array; the controller retires them into the PR-1
:class:`~repro.faults.badblocks.BadBlockTable` at format time, exactly
as a real FTL builds its initial bad-block table from the factory scan.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Tuple

from ..flash.array import FlashArray
from ..flash.oob import OOB_BYTES
from .registry import register_backend

__all__ = ["OnfiBus", "OnfiBackend", "make_onfi_backend"]

# ONFI command opcodes (the subset a log-structured FTL issues).
CMD_READ = 0x00
CMD_READ_CONFIRM = 0x30
CMD_PROGRAM = 0x80
CMD_PROGRAM_CONFIRM = 0x10
CMD_ERASE = 0x60
CMD_ERASE_CONFIRM = 0xD0
CMD_STATUS = 0x70

#: Status-register value for ready / pass (SR[6]=RDY, SR[5]=ARDY).
STATUS_READY = 0x60
#: Ready with FAIL bit set (SR[0]).
STATUS_FAIL = 0x61


class OnfiBus:
    """Cycle-accurate counters for an ONFI command/address/data bus."""

    def __init__(self, cycle_ns: int = 25, log_limit: int = 32) -> None:
        self.cycle_ns = int(cycle_ns)
        self.command_cycles = 0
        self.address_cycles = 0
        self.data_in_cycles = 0
        self.data_out_cycles = 0
        self.status_cycles = 0
        self.operations = 0
        self.log: deque = deque(maxlen=log_limit)

    def sequence(self, name: str, commands: List[int], addresses: int,
                 data_in: int = 0, data_out: int = 0,
                 status: int = 0) -> int:
        """Record one command sequence; return its bus time in ns."""
        self.command_cycles += len(commands)
        self.address_cycles += addresses
        self.data_in_cycles += data_in
        self.data_out_cycles += data_out
        self.status_cycles += status
        self.operations += 1
        cycles = len(commands) + addresses + data_in + data_out + status
        self.log.append((name, tuple(commands), addresses,
                         data_in, data_out, status))
        return cycles * self.cycle_ns

    @property
    def total_cycles(self) -> int:
        return (self.command_cycles + self.address_cycles
                + self.data_in_cycles + self.data_out_cycles
                + self.status_cycles)

    def stats(self) -> dict:
        return {
            "operations": self.operations,
            "command_cycles": self.command_cycles,
            "address_cycles": self.address_cycles,
            "data_in_cycles": self.data_in_cycles,
            "data_out_cycles": self.data_out_cycles,
            "status_cycles": self.status_cycles,
            "total_cycles": self.total_cycles,
            "bus_ns": self.total_cycles * self.cycle_ns,
        }


class OnfiBackend(FlashArray):
    """FlashArray driven through ONFI command/address/status cycles."""

    backend_name = "onfi"

    def __init__(self, params=None, page_bytes: int = 256,
                 store_data: bool = True, spare_segments: int = 0,
                 cycle_ns: int = 25, addr_cycles: int = 5,
                 factory_bad: int = 0, bb_seed: int = 0) -> None:
        super().__init__(params, page_bytes, store_data=store_data,
                         spare_segments=spare_segments)
        self.bus = OnfiBus(cycle_ns=cycle_ns)
        self.addr_cycles = int(addr_cycles)
        self.status_register = STATUS_READY
        marks: List[int] = []
        if factory_bad:
            if factory_bad >= self.num_segments:
                raise ValueError(
                    f"factory_bad={factory_bad} would mark every "
                    f"segment of a {self.num_segments}-segment array")
            rng = random.Random(bb_seed)
            marks = sorted(rng.sample(range(self.num_segments),
                                      int(factory_bad)))
            for phys in marks:
                self.segments[phys].mark_bad()
        self._factory_marks: Tuple[int, ...] = tuple(marks)

    @property
    def factory_bad_segments(self) -> Tuple[int, ...]:
        """Segments the factory scan marked bad (ONFI defect area)."""
        return self._factory_marks

    # --- per-cycle timing folded into the standard cost hooks ---------

    def _read_cycles(self) -> int:
        return 2 + self.addr_cycles + self.page_bytes

    def _program_cycles(self) -> int:
        return 2 + self.addr_cycles + self.page_bytes + OOB_BYTES + 1

    def _erase_cycles(self) -> int:
        return 2 + 3 + 1

    def read_time_ns(self, segment: int = 0) -> int:
        return (super().read_time_ns(segment)
                + self._read_cycles() * self.bus.cycle_ns)

    def program_time_ns(self, segment: int = 0) -> int:
        return (super().program_time_ns(segment)
                + self._program_cycles() * self.bus.cycle_ns)

    def erase_time_ns(self, segment: int = 0) -> int:
        return (super().erase_time_ns(segment)
                + self._erase_cycles() * self.bus.cycle_ns)

    # --- operations issue their command sequences ---------------------

    def program_page(self, segment: int, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> Tuple[int, int]:
        try:
            page, ns = super().program_page(segment, data, oob)
        except Exception:
            self.status_register = STATUS_FAIL
            raise
        self.bus.sequence("program",
                          [CMD_PROGRAM, CMD_PROGRAM_CONFIRM],
                          self.addr_cycles,
                          data_in=self.page_bytes + OOB_BYTES,
                          status=1)
        self.status_register = STATUS_READY
        return page, ns

    def read_page(self, segment: int, page: int) -> Optional[bytes]:
        data = super().read_page(segment, page)
        self.bus.sequence("read", [CMD_READ, CMD_READ_CONFIRM],
                          self.addr_cycles, data_out=self.page_bytes)
        return data

    def read_oob(self, segment: int, page: int) -> Optional[bytes]:
        oob = super().read_oob(segment, page)
        # Spare-area random-out: 05h/E0h column jump, OOB bytes out.
        self.bus.sequence("read_oob", [0x05, 0xE0], 2,
                          data_out=OOB_BYTES)
        return oob

    def erase_segment(self, segment: int) -> int:
        try:
            ns = super().erase_segment(segment)
        except Exception:
            # The erase still consumed bus cycles; the status poll is
            # how the controller learns it failed (SR[0]=FAIL).
            self.bus.sequence("erase",
                              [CMD_ERASE, CMD_ERASE_CONFIRM],
                              3, status=1)
            self.status_register = STATUS_FAIL
            raise
        self.bus.sequence("erase", [CMD_ERASE, CMD_ERASE_CONFIRM],
                          3, status=1)
        self.status_register = STATUS_READY
        return ns

    def read_status(self) -> int:
        """70h status poll (SR[6]=ready, SR[0]=fail on last op)."""
        self.bus.sequence("status", [CMD_STATUS], 0, status=1)
        return self.status_register

    # ------------------------------------------------------------------

    def media_report(self) -> dict:
        report = {"medium": "onfi",
                  "cycle_ns": self.bus.cycle_ns,
                  "factory_bad": len(self._factory_marks)}
        report.update(self.bus.stats())
        return report


@register_backend(
    "onfi",
    summary="ONFI-style NAND model (command/address/status cycles "
            "charged through the cost model; factory bad blocks)",
    options="cycle_ns=25, addr_cycles=5, factory_bad=0, bb_seed=0")
def make_onfi_backend(config, store_data, spare_segments, cycle_ns=25,
                      addr_cycles=5, factory_bad=0, bb_seed=0):
    return OnfiBackend(config.flash, config.page_bytes,
                       store_data=store_data,
                       spare_segments=spare_segments,
                       cycle_ns=cycle_ns, addr_cycles=addr_cycles,
                       factory_bad=factory_bad, bb_seed=bb_seed)
