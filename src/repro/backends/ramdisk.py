"""Backend (b): the ``repro.ramdisk`` block device as the medium.

The RAM-disk backend keeps the controller-facing segment model (the
write-once/bulk-erase state machine is what the cleaner relies on) but
moves every payload through a :class:`~repro.ramdisk.blockdev.
BlockDevice` over a flat byte image — the Section 1 "simple RAM disk
program" running in reverse: instead of a filesystem on top of eNVy,
eNVy on top of a block device.

Consequences the tests pin down:

* every program/read/erase is a block-device operation, counted and
  timed by the device (satellite: blockdev ops are charged through
  :mod:`repro.core.costmodel` and surface in ``health_report()``);
* per-op cost hooks return the Figure 1 DRAM constants instead of
  Flash timing — a RAM disk has no 4 us programs or 50 ms erases —
  so the same workload runs with DRAM-speed maintenance while the
  logical page-state digest stays identical to the Flash backend;
* the image is a complete, independently readable copy of the array:
  after any fault-free run, ``image_page(flat_page)`` equals the bytes
  the controller returns.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.costmodel import DRAM_READ_NS, DRAM_WRITE_NS
from ..flash.array import FlashArray
from ..ramdisk.blockdev import BlockDevice
from .registry import register_backend

__all__ = ["RamImage", "RamdiskBackend", "make_ramdisk_backend"]


class RamImage:
    """Flat byte memory with DRAM-cost timed accessors.

    The minimal ``memory`` contract :class:`BlockDevice` consumes:
    ``read_timed``/``write`` return the nanoseconds the access cost at
    the Figure 1 DRAM rate (one wide access per block-sized chunk).
    """

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = size_bytes
        self.data = bytearray(size_bytes)

    def read_timed(self, address: int, length: int) -> Tuple[bytes, int]:
        return bytes(self.data[address:address + length]), DRAM_READ_NS

    def read(self, address: int, length: int) -> bytes:
        return self.read_timed(address, length)[0]

    def write(self, address: int, data: bytes) -> int:
        self.data[address:address + len(data)] = data
        return DRAM_WRITE_NS


class RamdiskBackend(FlashArray):
    """FlashArray semantics over a block-device RAM image."""

    backend_name = "ramdisk"

    def __init__(self, params=None, page_bytes: int = 256,
                 store_data: bool = True, spare_segments: int = 0,
                 block_bytes: Optional[int] = None) -> None:
        super().__init__(params, page_bytes, store_data=store_data,
                         spare_segments=spare_segments)
        block = int(block_bytes) if block_bytes else page_bytes
        if page_bytes % block:
            raise ValueError("block_bytes must divide the page size")
        self.image = RamImage(self.total_pages * page_bytes)
        self.device = BlockDevice(self.image, block_bytes=block)
        self._blocks_per_page = page_bytes // block
        self._erased_page = b"\xff" * page_bytes

    # --- medium access -------------------------------------------------

    def _page_blocks(self, segment: int, page: int) -> range:
        first = (segment * self.pages_per_segment + page) \
            * self._blocks_per_page
        return range(first, first + self._blocks_per_page)

    def _device_write_page(self, segment: int, page: int,
                           payload: bytes) -> None:
        block_bytes = self.device.block_bytes
        for i, block in enumerate(self._page_blocks(segment, page)):
            chunk = payload[i * block_bytes:(i + 1) * block_bytes]
            self.device.write_block(block, chunk)

    def image_page(self, flat_page: int) -> bytes:
        """The image's bytes for one physical page (inspection/tests)."""
        offset = flat_page * self.page_bytes
        return bytes(self.image.data[offset:offset + self.page_bytes])

    # --- operations ----------------------------------------------------

    def program_page(self, segment: int, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> Tuple[int, int]:
        page, ns = super().program_page(segment, data, oob)
        payload = bytes(data) if data is not None \
            else bytes(self.page_bytes)
        self._device_write_page(segment, page, payload)
        return page, ns

    def read_page(self, segment: int, page: int) -> Optional[bytes]:
        data = super().read_page(segment, page)
        # The medium access: the payload crosses the block interface
        # (and is counted/timed there) even though the fault/ECC path
        # above decides what the caller actually sees.
        for block in self._page_blocks(segment, page):
            self.device.read_block(block)
        return data

    def erase_segment(self, segment: int) -> int:
        ns = super().erase_segment(segment)
        # Erased Flash reads all-ones; mirror that into the image.
        for page in range(self.pages_per_segment):
            self._device_write_page(segment, page, self._erased_page)
        return ns

    # --- per-op cost hooks: DRAM, not Flash ----------------------------

    def read_time_ns(self, segment: int = 0) -> int:
        return DRAM_READ_NS * self._blocks_per_page

    def program_time_ns(self, segment: int = 0) -> int:
        return DRAM_WRITE_NS * self._blocks_per_page

    def erase_time_ns(self, segment: int = 0) -> int:
        return (DRAM_WRITE_NS * self._blocks_per_page
                * self.pages_per_segment)

    # --- reporting -----------------------------------------------------

    def media_report(self) -> dict:
        return {
            "medium": "ramdisk",
            "device_reads": self.device.reads,
            "device_writes": self.device.writes,
            "device_read_ns": self.device.read_ns,
            "device_write_ns": self.device.write_ns,
            "device_blocks": self.device.num_blocks,
        }


@register_backend(
    "ramdisk",
    summary="repro.ramdisk block device over a DRAM image "
            "(Figure 1 DRAM timing)",
    options="block_bytes=<divides page size; default page_bytes>")
def make_ramdisk_backend(config, store_data, spare_segments,
                         block_bytes=None):
    return RamdiskBackend(config.flash, config.page_bytes,
                          store_data=store_data,
                          spare_segments=spare_segments,
                          block_bytes=block_bytes)
