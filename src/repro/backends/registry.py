"""Plugin registries for storage backends and workload generators.

Backends and workloads used to be hardcoded imports; this module makes
them discoverable plugins in the style of Glasgow's applet registry:
each implementation registers itself under a short name with a one-line
summary and an option grammar, ``python -m repro backends`` lists
everything, and any consumer (controller config, CLI flags, bench
scenarios, traces) names its substrate with a *spec string*::

    flash                           # the default simulated Flash array
    ramdisk:block_bytes=256         # block-device-backed, DRAM timing
    file:path=/tmp/envy.img         # persistent, survives restarts
    onfi:factory_bad=2,bb_seed=7    # ONFI NAND with factory bad marks

A spec is ``name`` or ``name:key=value,key=value,...``; values are
coerced to int/float/bool where they parse as one.  The same grammar
serves workloads (``zipf:skew=1.2``, ``trace:path=writes.jsonl``).

Third-party code registers with the decorators::

    @register_backend("mybackend", summary="...", options="...")
    def _make(config, store_data, spare_segments, **options): ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BackendInfo", "WorkloadInfo", "RegistryError",
    "register_backend", "register_workload",
    "create_backend", "create_workload",
    "backend_names", "workload_names",
    "backend_info", "workload_info",
    "parse_spec",
]


class RegistryError(ValueError):
    """Unknown plugin name or malformed spec string."""


@dataclass(frozen=True)
class BackendInfo:
    """One registered storage backend."""

    name: str
    factory: Callable
    summary: str = ""
    options: str = ""


@dataclass(frozen=True)
class WorkloadInfo:
    """One registered workload generator."""

    name: str
    factory: Callable
    summary: str = ""
    options: str = ""


_BACKENDS: Dict[str, BackendInfo] = {}
_WORKLOADS: Dict[str, WorkloadInfo] = {}


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

def _coerce(value: str) -> Any:
    """Best-effort typing for option values (int, float, bool, str)."""
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``name[:key=value,...]`` into (name, options).

    Values containing ``=`` after the first (paths with commas are not
    supported; use simple paths) are kept verbatim as strings.
    """
    if not spec or not spec.strip():
        raise RegistryError("empty backend/workload spec")
    name, _, rest = spec.strip().partition(":")
    options: Dict[str, Any] = {}
    if rest:
        for chunk in rest.split(","):
            if not chunk:
                continue
            key, eq, value = chunk.partition("=")
            if not eq:
                raise RegistryError(
                    f"malformed option {chunk!r} in spec {spec!r} "
                    f"(expected key=value)")
            options[key.strip()] = _coerce(value.strip())
    return name, options


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

def register_backend(name: str, summary: str = "",
                     options: str = "") -> Callable:
    """Decorator: register ``factory(config, store_data,
    spare_segments, **options)`` under ``name``."""
    def decorator(factory: Callable) -> Callable:
        if name in _BACKENDS:
            raise RegistryError(f"backend {name!r} already registered")
        _BACKENDS[name] = BackendInfo(name, factory, summary, options)
        return factory
    return decorator


def backend_names() -> List[str]:
    return sorted(_BACKENDS)


def backend_info(name: str) -> BackendInfo:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise RegistryError(
            f"unknown backend {name!r} (registered: "
            f"{', '.join(backend_names()) or 'none'})") from None


def create_backend(spec: str, config, store_data: bool = True,
                   spare_segments: int = 0):
    """Instantiate the backend named by ``spec`` for ``config``.

    ``config`` is an :class:`~repro.core.config.EnvyConfig`; the
    factory receives it plus the controller's ``store_data`` /
    ``spare_segments`` geometry and the spec's parsed options.
    """
    name, options = parse_spec(spec)
    info = backend_info(name)
    try:
        return info.factory(config, store_data, spare_segments, **options)
    except TypeError as exc:
        raise RegistryError(
            f"backend {name!r} rejected options {options!r}: {exc} "
            f"(accepted: {info.options or 'none'})") from exc


# ----------------------------------------------------------------------
# Workload registry
# ----------------------------------------------------------------------

def register_workload(name: str, summary: str = "",
                      options: str = "") -> Callable:
    """Decorator: register ``factory(num_pages, seed, **options)``."""
    def decorator(factory: Callable) -> Callable:
        if name in _WORKLOADS:
            raise RegistryError(f"workload {name!r} already registered")
        _WORKLOADS[name] = WorkloadInfo(name, factory, summary, options)
        return factory
    return decorator


def workload_names() -> List[str]:
    return sorted(_WORKLOADS)


def workload_info(name: str) -> WorkloadInfo:
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise RegistryError(
            f"unknown workload {name!r} (registered: "
            f"{', '.join(workload_names()) or 'none'})") from None


def create_workload(spec: str, num_pages: int,
                    seed: Optional[int] = 0):
    """Instantiate the page-write workload named by ``spec``."""
    name, options = parse_spec(spec)
    info = workload_info(name)
    try:
        return info.factory(num_pages, seed, **options)
    except TypeError as exc:
        raise RegistryError(
            f"workload {name!r} rejected options {options!r}: {exc} "
            f"(accepted: {info.options or 'none'})") from exc


# ----------------------------------------------------------------------
# Built-in workload plugins (the repro.workloads generators)
# ----------------------------------------------------------------------

def _register_builtin_workloads() -> None:
    from ..workloads import (BimodalWorkload, SequentialWorkload,
                             StridedWorkload, TraceWorkload,
                             UniformWorkload, ZipfWorkload)

    @register_workload("uniform", "uniformly random page writes")
    def _uniform(num_pages, seed):
        return UniformWorkload(num_pages, seed=seed)

    @register_workload("sequential", "ascending page sweep",
                       options="start=<page>")
    def _sequential(num_pages, seed, start=0):
        return SequentialWorkload(num_pages, start=start)

    @register_workload("strided", "fixed-stride page sweep",
                       options="stride=<pages>,start=<page>")
    def _strided(num_pages, seed, stride=7, start=0):
        return StridedWorkload(num_pages, stride, start=start)

    @register_workload("bimodal", "hot/cold two-level locality "
                                  "(Section 5.3)",
                       options="hot_data=<frac>,hot_access=<frac>")
    def _bimodal(num_pages, seed, hot_data=0.1, hot_access=0.9):
        return BimodalWorkload(num_pages, hot_data_fraction=hot_data,
                               hot_access_fraction=hot_access, seed=seed)

    @register_workload("zipf", "Zipf-skewed page popularity",
                       options="skew=<s>")
    def _zipf(num_pages, seed, skew=1.0):
        return ZipfWorkload(num_pages, skew=skew, seed=seed)

    @register_workload("trace", "replay a recorded page-write trace",
                       options="path=<file> (.jsonl or binary)")
    def _trace(num_pages, seed, path=None):
        if path is None:
            raise TypeError("trace workload needs path=<file>")
        if str(path).endswith(".jsonl"):
            return TraceWorkload.load_jsonl(
                str(path), expect_num_pages=num_pages)
        return TraceWorkload.load(str(path))


_register_builtin_workloads()
