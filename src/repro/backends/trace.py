"""Record host-level runs to versioned JSONL and replay them anywhere.

The backend boundary makes "same input" testable: a *run trace* is the
full host-level operation stream — every write with its payload, every
read — plus a header fingerprinting the geometry it was recorded
under.  Replaying the same trace against the same config on a
different backend must produce the same logical page state, because
nothing below the backend boundary is allowed to influence placement.
:func:`state_digest` reduces that state to one hash, and
:mod:`repro.backends.consistency` turns the equality into a gate.

Trace format (JSONL, version 1)::

    {"format": "envy-run-trace", "version": 1, "page_bytes": 256,
     "seed": 0, "config_digest": "9f2c..."}
    {"op": "w", "a": 4096, "d": "0100000000000000"}
    {"op": "r", "a": 4096, "n": 8}

The ``config_digest`` hashes the full controller config *except* the
``backend`` field — a trace is a property of the logical system, and
pinning the substrate into it would defeat cross-backend replay.

This builds on the lower layers rather than replacing them:
:class:`~repro.workloads.trace.TraceWorkload` (page-reference traces)
feeds :func:`record_workload`, and
:class:`~repro.core.tracing.AccessTrace` remains the address-level
summary view; the run trace adds what neither carries — write payloads.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, TextIO, Tuple, Union

from ..core.config import EnvyConfig
from ..workloads.trace import TraceError
from .registry import create_workload

__all__ = ["RunTrace", "RunRecorder", "ReplayResult", "config_digest",
           "state_digest", "record_tpca", "record_workload",
           "replay_trace"]

TRACE_FORMAT = "envy-run-trace"
TRACE_VERSION = 1

#: Bytes per TPC-A balance update (matches the chaos harness).
_WORD = 8


def config_digest(config: EnvyConfig) -> str:
    """A short stable fingerprint of a controller configuration.

    Hashes every config field *except* ``backend``: two configs that
    differ only in substrate are the same logical system, so their
    traces interchange.
    """
    payload = asdict(config)
    payload.pop("backend", None)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def state_digest(controller) -> str:
    """SHA-256 over every logical page's bytes, in page order.

    Reads bypass the fault-injection path (the digest captures what the
    cells hold, not what an armed injector shows), so it is stable
    across backends and across reruns.  Call after ``drain()`` for a
    buffered controller — SRAM-resident pages are not part of the
    Flash-side state.
    """
    from ..core.chaos import recovered_page_bytes

    digest = hashlib.sha256()
    for page in range(controller.config.logical_pages):
        digest.update(recovered_page_bytes(controller, page))
    return digest.hexdigest()


def _page_payload(page: int, seq: int, page_bytes: int) -> bytes:
    """Deterministic, page- and sequence-unique full-page payload."""
    stamp = page.to_bytes(4, "little") + seq.to_bytes(4, "little")
    repeats = (page_bytes + len(stamp) - 1) // len(stamp)
    return (stamp * repeats)[:page_bytes]


class RunTrace:
    """An ordered host-operation stream with a geometry header."""

    def __init__(self, page_bytes: int, seed: Optional[int] = None,
                 config_digest: Optional[str] = None,
                 ops: Optional[List[tuple]] = None) -> None:
        self.page_bytes = int(page_bytes)
        self.seed = seed
        self.config_digest = config_digest
        #: ("w", address, payload bytes) or ("r", address, length).
        self.ops: List[tuple] = ops if ops is not None else []

    def record_write(self, address: int, data: bytes) -> None:
        self.ops.append(("w", address, bytes(data)))

    def record_read(self, address: int, length: int) -> None:
        self.ops.append(("r", address, length))

    @property
    def writes(self) -> int:
        return sum(1 for op in self.ops if op[0] == "w")

    @property
    def reads(self) -> int:
        return sum(1 for op in self.ops if op[0] == "r")

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------

    def save(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                self._write(handle)
        else:
            self._write(target)

    def _write(self, handle: TextIO) -> None:
        header = {"format": TRACE_FORMAT, "version": TRACE_VERSION,
                  "page_bytes": self.page_bytes}
        if self.seed is not None:
            header["seed"] = self.seed
        if self.config_digest is not None:
            header["config_digest"] = self.config_digest
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for op in self.ops:
            if op[0] == "w":
                handle.write('{"op": "w", "a": %d, "d": "%s"}\n'
                             % (op[1], op[2].hex()))
            else:
                handle.write('{"op": "r", "a": %d, "n": %d}\n'
                             % (op[1], op[2]))

    @classmethod
    def load(cls, source: Union[str, TextIO]) -> "RunTrace":
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls._read(handle, name=source)
        return cls._read(source, name="<stream>")

    @classmethod
    def _read(cls, handle: TextIO, name: str) -> "RunTrace":
        first = handle.readline()
        if not first.strip():
            raise TraceError(f"{name}: empty run trace")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{name}: malformed header: {exc}") from exc
        if not isinstance(header, dict) or \
                header.get("format") != TRACE_FORMAT:
            raise TraceError(f"{name}: not an eNVy run trace "
                             f"(header {header!r})")
        if header.get("version") != TRACE_VERSION:
            raise TraceError(
                f"{name}: run-trace version {header.get('version')} "
                f"not supported (expected {TRACE_VERSION})")
        page_bytes = header.get("page_bytes")
        if not isinstance(page_bytes, int) or page_bytes <= 0:
            raise TraceError(f"{name}: bad page_bytes {page_bytes!r}")
        trace = cls(page_bytes, seed=header.get("seed"),
                    config_digest=header.get("config_digest"))
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op = record["op"]
                if op == "w":
                    trace.record_write(record["a"],
                                       bytes.fromhex(record["d"]))
                elif op == "r":
                    trace.record_read(record["a"], record["n"])
                else:
                    raise KeyError(f"unknown op {op!r}")
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                raise TraceError(
                    f"{name}:{lineno}: malformed record "
                    f"{line.strip()!r}: {exc}") from exc
        return trace

    def roundtrip(self) -> "RunTrace":
        """Save to memory and reload (used by tests)."""
        buffer = io.StringIO()
        self.save(buffer)
        buffer.seek(0)
        return type(self).load(buffer)

    def validate_for(self, config: EnvyConfig, name: str = "trace") -> None:
        """Refuse to drive a system the trace was not recorded for."""
        if self.page_bytes != config.page_bytes:
            raise TraceError(
                f"{name}: geometry mismatch — recorded with "
                f"{self.page_bytes}-byte pages, this config uses "
                f"{config.page_bytes}-byte pages")
        expected = config_digest(config)
        if self.config_digest is not None and \
                self.config_digest != expected:
            raise TraceError(
                f"{name}: config mismatch — recorded under config "
                f"{self.config_digest}, this config is {expected} "
                f"(the backend field is excluded, so this is a real "
                f"logical-geometry difference)")


class RunRecorder:
    """Forwards host operations to a controller, capturing each one.

    A thin proxy in the :class:`~repro.core.tracing.TracingController`
    style, but payload-preserving: the recorded trace can re-drive any
    backend bit-for-bit.  Attribute access falls through to the wrapped
    controller.
    """

    def __init__(self, controller, seed: Optional[int] = None,
                 trace: Optional[RunTrace] = None) -> None:
        self.controller = controller
        self.trace = trace if trace is not None else RunTrace(
            controller.config.page_bytes, seed=seed,
            config_digest=config_digest(controller.config))

    def write(self, address: int, data: bytes) -> int:
        self.trace.record_write(address, data)
        return self.controller.write(address, data)

    def read(self, address: int, length: int) -> bytes:
        self.trace.record_read(address, length)
        return self.controller.read(address, length)

    def read_timed(self, address: int, length: int) -> Tuple[bytes, int]:
        self.trace.record_read(address, length)
        return self.controller.read_timed(address, length)

    def __getattr__(self, name):
        return getattr(self.controller, name)


@dataclass
class ReplayResult:
    """Outcome of replaying one trace against one backend/config."""

    backend: str
    digest: str
    total_ns: int
    ops: int
    writes: int
    reads: int
    health: dict = field(default_factory=dict)
    controller: object = None

    def summary(self) -> dict:
        """JSON-safe view (drops the live controller)."""
        return {"backend": self.backend, "digest": self.digest,
                "total_ns": self.total_ns, "ops": self.ops,
                "writes": self.writes, "reads": self.reads}


def replay_trace(trace: RunTrace, config: EnvyConfig, policy=None,
                 check_config: bool = True,
                 keep_controller: bool = False) -> ReplayResult:
    """Drive ``config``'s backend with every operation of ``trace``.

    Drains the write buffer at the end so the digest covers the full
    Flash-side state.  ``check_config=False`` skips the header
    validation (for exploratory replays against deliberately different
    configs — the digest then means nothing across runs).
    """
    from ..core.controller import EnvyController

    if check_config:
        trace.validate_for(config)
    ctrl = EnvyController(config, policy)
    total_ns = 0
    for op in trace.ops:
        if op[0] == "w":
            total_ns += ctrl.write(op[1], op[2])
        else:
            _, ns = ctrl.read_timed(op[1], op[2])
            total_ns += ns
    ctrl.drain()
    return ReplayResult(
        backend=config.backend or "flash",
        digest=state_digest(ctrl),
        total_ns=total_ns,
        ops=len(trace.ops),
        writes=trace.writes,
        reads=trace.reads,
        health=ctrl.health_report(),
        controller=ctrl if keep_controller else None)


def record_tpca(config: EnvyConfig, transactions: int = 40,
                seed: int = 0, policy=None
                ) -> Tuple[RunTrace, "ReplayResult"]:
    """Record a seeded TPC-A run (the chaos harness's workload).

    Returns the trace plus the recording run's own
    :class:`ReplayResult`, so the recorder doubles as the reference
    point for cross-backend comparison.
    """
    from ..core.controller import EnvyController
    from ..db.layout import TpcaLayout
    from ..workloads.tpca import TpcaWorkload

    ctrl = EnvyController(config, policy)
    recorder = RunRecorder(ctrl, seed=seed)
    layout = TpcaLayout.sized_for(config.logical_bytes)
    workload = TpcaWorkload(layout, rate_tps=100.0, seed=seed)
    stamp = 0
    for txn in workload.transactions(transactions):
        for is_write, address in workload.accesses(txn):
            address = min(address, ctrl.size_bytes - _WORD)
            if is_write:
                stamp += 1
                recorder.write(address, stamp.to_bytes(_WORD, "little"))
            else:
                recorder.read(address, _WORD)
    ctrl.drain()
    trace = recorder.trace
    reference = ReplayResult(
        backend=config.backend or "flash",
        digest=state_digest(ctrl), total_ns=0, ops=len(trace.ops),
        writes=trace.writes, reads=trace.reads,
        health=ctrl.health_report())
    return trace, reference


def record_workload(config: EnvyConfig, workload_spec: str,
                    writes: int, seed: int = 0, policy=None
                    ) -> Tuple[RunTrace, "ReplayResult"]:
    """Record ``writes`` full-page writes from a registry workload.

    The workload names pages; payloads are deterministic functions of
    (page, sequence), so the recorded trace fully determines the final
    state.
    """
    from ..core.controller import EnvyController

    ctrl = EnvyController(config, policy)
    workload = create_workload(workload_spec, config.logical_pages,
                               seed=seed)
    recorder = RunRecorder(ctrl, seed=seed)
    page_bytes = config.page_bytes
    for seq in range(writes):
        page = workload.next_page()
        recorder.write(page * page_bytes,
                       _page_payload(page, seq, page_bytes))
    ctrl.drain()
    trace = recorder.trace
    reference = ReplayResult(
        backend=config.backend or "flash",
        digest=state_digest(ctrl), total_ns=0, ops=len(trace.ops),
        writes=trace.writes, reads=trace.reads,
        health=ctrl.health_report())
    return trace, reference
