"""Cleaning subsystem: policies, cost model, wear leveling, simulator.

Implements Section 4 of the paper: the analytic cleaning-cost model
(Figure 6), the greedy/FIFO/locality-gathering/hybrid policies compared
in Figure 8, partitioning (Figure 9), segment-count scaling (Figure 10)
and the 100-cycle wear-leveling swap.
"""

# Policy/base imports come first: the controller imports them from this
# package while the simulator import below is still in progress (the
# simulator pulls in the workloads package, which reaches the core
# package, which needs the names bound so far).
from .base import CleaningPolicy
from .cost import (cleaning_cost, cost_curve, utilization_for_cost,
                   write_amplification)
from .fifo import FifoPolicy
from .greedy import GreedyPolicy
from .hybrid import HybridPolicy, PartitionState
from .locality import LocalityGatheringPolicy
from .store import IN_BUFFER, Position, SegmentStore, StoreError
from .wear import WearLeveler

POLICIES = {
    "greedy": GreedyPolicy,
    "fifo": FifoPolicy,
    "locality": LocalityGatheringPolicy,
    "hybrid": HybridPolicy,
}


def make_policy(name: str, **kwargs) -> CleaningPolicy:
    """Instantiate a policy by its configuration name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown cleaning policy {name!r}; "
                         f"choose from {sorted(POLICIES)}")
    return factory(**kwargs)


from .simulator import (PolicySimulator, SimulationResult,  # noqa: E402
                        measure_cleaning_cost)

__all__ = [
    "CleaningPolicy",
    "GreedyPolicy",
    "FifoPolicy",
    "LocalityGatheringPolicy",
    "HybridPolicy",
    "PartitionState",
    "WearLeveler",
    "SegmentStore",
    "Position",
    "StoreError",
    "IN_BUFFER",
    "PolicySimulator",
    "SimulationResult",
    "measure_cleaning_cost",
    "cleaning_cost",
    "utilization_for_cost",
    "write_amplification",
    "cost_curve",
    "POLICIES",
    "make_policy",
]
