"""Cleaning-policy interface (Section 4: "Cleaning Policy").

A cleaning policy answers the three questions of Section 4: *which*
segments to clean, *when* to clean them, and *where* to write new data.
It owns the placement of every page flushed from the SRAM write buffer
and initiates cleaning (via the store) whenever its chosen destination is
out of space.

Policies operate on a :class:`~repro.cleaning.store.SegmentStore`; the
same implementations drive both the untimed cost simulator (Figures 8-10)
and the timed TPC-A simulator (Figures 13-15).
"""

from __future__ import annotations

import abc
from typing import Optional

from .store import SegmentStore

__all__ = ["CleaningPolicy"]


class CleaningPolicy(abc.ABC):
    """Decides victim selection and flush placement for the cleaner."""

    #: Short name used in reports ("greedy", "fifo", "locality", "hybrid").
    name: str = "abstract"
    #: Initial data layout this policy assumes: "sequential" fills
    #: segments in order (greedy/FIFO); "spread" levels all segments to
    #: equal utilization (locality gathering and hybrid, which rely on
    #: per-segment free space).
    preferred_layout: str = "sequential"

    def __init__(self) -> None:
        self.store: Optional[SegmentStore] = None

    def attach(self, store: SegmentStore) -> None:
        """Bind the policy to a populated store."""
        self.store = store
        self._on_attach()

    def _on_attach(self) -> None:
        """Hook for subclasses to initialise placement state."""

    @abc.abstractmethod
    def flush(self, logical_page: int, origin: int) -> int:
        """Write one page from the buffer into Flash.

        ``origin`` is the position the page lived in when it was pulled
        into the SRAM buffer; the locality-aware policies flush it back
        near there (Section 4.3/4.4), the others ignore it.  Cleans as a
        side effect whenever the destination lacks space.  Returns the
        position written.
        """

    # Convenience accessors -------------------------------------------

    @property
    def _store(self) -> SegmentStore:
        if self.store is None:
            raise RuntimeError(f"policy {self.name!r} is not attached")
        return self.store

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
