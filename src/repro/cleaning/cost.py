"""Analytic Flash cleaning-cost model (Section 4.1, Figure 6).

The paper defines *Flash cleaning cost* as "the number of Flash program
operations performed by the cleaning algorithm for every page that is
flushed from the write buffer".  Cleaning a segment whose utilization is
``u`` copies ``u * C`` live pages and recovers ``(1 - u) * C`` writable
pages, so the overhead per recovered (useful) write is ``u / (1 - u)``.

At 80% utilization the cost is 4 — the paper's "naive cleaning scheme that
keeps each segment at 80% utilization would have an average cleaning cost
of 4" — and beyond ~80% it "quickly reaches unreasonable levels", which is
why eNVy reserves 20% of the array (Section 4.1, reinforced by Figure 14).

Unlike the Sprite LFS *write cost*, the cleaning cost excludes both the
reads done while cleaning (writes dominate Flash cleaning time) and the
initial flush itself (that is useful work, not overhead).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

__all__ = [
    "cleaning_cost",
    "utilization_for_cost",
    "write_amplification",
    "cost_curve",
    "MAX_FINITE_UTILIZATION",
]

#: Above this utilization the model reports infinity rather than a number
#: so large it would be meaningless (a full segment cannot be cleaned at
#: all: copying C live pages recovers zero space).
MAX_FINITE_UTILIZATION = 1.0 - 1e-12


def cleaning_cost(utilization: float) -> float:
    """Program operations of cleaning overhead per useful page write.

    ``u / (1 - u)`` for a segment at utilization ``u``:

    >>> cleaning_cost(0.5)
    1.0
    >>> cleaning_cost(0.75)
    3.0
    >>> cleaning_cost(0.0)
    0.0
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    if utilization >= MAX_FINITE_UTILIZATION:
        return math.inf
    return utilization / (1.0 - utilization)


def utilization_for_cost(cost: float) -> float:
    """Inverse of :func:`cleaning_cost`: the utilization giving ``cost``.

    >>> utilization_for_cost(3.0)
    0.75
    """
    if cost < 0:
        raise ValueError(f"cost must be non-negative, got {cost}")
    if math.isinf(cost):
        return 1.0
    return cost / (1.0 + cost)


def write_amplification(utilization: float) -> float:
    """Total programs per useful page write, including the flush itself.

    This is ``1 + cleaning_cost(u)`` and is the quantity that divides the
    array's endurance in the lifetime model of Section 5.5.
    """
    return 1.0 + cleaning_cost(utilization)


def cost_curve(utilizations: Iterable[float]
               ) -> List[Tuple[float, float]]:
    """The (utilization, cost) series plotted in Figure 6."""
    return [(u, cleaning_cost(u)) for u in utilizations]
