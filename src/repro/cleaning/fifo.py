"""FIFO cleaning policy (Sections 4.2 and 4.4).

Cleans segments in fixed cyclic order.  The paper shows greedy behaves
like FIFO in steady state ("the greedy policy tends to clean segments in
a FIFO order") and picks FIFO over greedy inside hybrid partitions
"because it is simpler to implement and produces the same cleaning cost".

FIFO maximises the time each segment's data has to be invalidated between
cleans, which minimises cleaned-segment utilization under uniform access.
"""

from __future__ import annotations

from .base import CleaningPolicy

__all__ = ["FifoPolicy"]


class FifoPolicy(CleaningPolicy):
    """Flush to one active segment; clean segments round-robin."""

    name = "fifo"
    preferred_layout = "sequential"

    def __init__(self) -> None:
        super().__init__()
        self._active = 0
        self._next_victim = 0

    def _on_attach(self) -> None:
        store = self._store
        self._active = 0
        self._next_victim = 0
        for pos in store.positions:
            if pos.free_slots > 0:
                self._active = pos.index
                self._next_victim = (pos.index + 1) % store.num_positions
                return
        self._clean_next()

    def _clean_next(self) -> None:
        store = self._store
        # A victim that is fully live recovers no space; keep advancing
        # (still in FIFO order) until cleaning frees at least one page.
        for _ in range(store.num_positions + 1):
            victim = self._next_victim
            if victim == self._active:
                # Skip the active segment: it is the one we just filled.
                victim = (victim + 1) % store.num_positions
            store.clean(victim)
            self._next_victim = (victim + 1) % store.num_positions
            self._active = victim
            if store.positions[victim].free_slots > 0:
                return
        raise RuntimeError(
            "FIFO cleaner recovered no space in a full cycle; the array "
            "is over-committed (utilization must stay below 100%)")

    def flush(self, logical_page: int, origin: int) -> int:
        store = self._store
        if store.positions[self._active].free_slots == 0:
            self._clean_next()
        store.append(self._active, logical_page)
        return self._active
