"""Greedy cleaning policy (Section 4.2).

"When there is no space to flush data, the cleaner chooses to clean the
segment with the most invalidated space, hoping to recover as much space
as possible.  After a cleaning operation, further writes are directed to
the free space in the newly cleaned segment until it is full, at which
time a new cleaning operation is started."

Unlike Sprite LFS's enhanced greedy cleaner, this one deliberately does
*no* age sorting and cleans one segment at a time — eNVy's segments are
too large and too few for multi-segment cleaning (Section 4.1).

As the paper observes, greedy degenerates to FIFO-like behaviour in
steady state: good for uniform access, increasingly poor as locality
rises because every segment ends up holding the same hot/cold mixture.
"""

from __future__ import annotations

from .base import CleaningPolicy

__all__ = ["GreedyPolicy"]


class GreedyPolicy(CleaningPolicy):
    """Flush to one active segment; clean the most-invalidated victim."""

    name = "greedy"
    preferred_layout = "sequential"

    def __init__(self) -> None:
        super().__init__()
        self._active = 0

    def _on_attach(self) -> None:
        store = self._store
        self._active = 0
        for pos in store.positions:
            if pos.free_slots > 0:
                self._active = pos.index
                return
        self._clean_next()

    def _recoverable(self, index: int) -> int:
        """Space a clean of ``index`` would make writable."""
        pos = self._store.positions[index]
        return pos.dead_slots + pos.free_slots

    def _clean_next(self) -> None:
        store = self._store
        # Most invalidated space == fewest live pages; the store's
        # bucket index answers that in O(1) with the same lowest-index
        # tie-break as the original full scan.
        best = store.min_live_position(exclude=self._active)
        if (best is None
                or store.positions[best].live_count
                >= store.pages_per_segment):
            raise RuntimeError(
                "greedy cleaner found no reclaimable space; the array is "
                "over-committed (utilization must stay below 100%)")
        store.clean(best)
        self._active = best

    def flush(self, logical_page: int, origin: int) -> int:
        store = self._store
        active = self._active
        if store.positions[active].free_slots == 0:
            self._clean_next()
            active = self._active
        store.append(active, logical_page)
        return active
