"""Hybrid cleaning policy (Section 4.4).

"Several adjoining segments are gathered into a single partition.  The
locality gathering approach is used to manage pages between partitions,
while a FIFO cleaning order is used within each partition. ... Each write
gets flushed back to the same partition (not segment) it was read from,
where it is written sequentially into the active segment within the
partition."

The intuition (Section 4.4): locality gathering sorts the array by access
frequency; *within* a band of similar frequency accesses look uniform,
which FIFO handles at low cost.  Partition size trades the two effects —
Figure 9 sweeps it and finds 16 segments per partition best for a
128-segment array; 1 degenerates to pure locality gathering and 128 to
pure FIFO.

Between partitions the same transfer machinery as
:class:`~repro.cleaning.locality.LocalityGatheringPolicy` applies, at
partition granularity: page flows run from high freq x cost product
partitions to low ones (plus a small always-on ordering trickle), and an
under-used partition absorbs extra pages from a genuinely fuller
neighbour while it is cleaning.  Within a partition the FIFO rotation
mixes data of similar hotness, so incoming pages simply join the active
segment's tail; no demotion marks are needed (position inside a partition
does not encode hotness the way it does inside a single gathered
segment).
"""

from __future__ import annotations

from typing import List, Optional

from .base import CleaningPolicy

__all__ = ["HybridPolicy", "PartitionState"]


class PartitionState:
    """Per-partition FIFO cursor and locality-gathering statistics."""

    __slots__ = ("index", "members", "active", "next_victim", "clean_count",
                 "last_clean_seq", "avg_clean_interval", "product")

    def __init__(self, index: int, members: List[int]) -> None:
        self.index = index
        #: Position indices belonging to this partition (adjoining).
        self.members = members
        #: Position currently accepting sequential flushes.
        self.active = members[0]
        #: Offset into ``members`` of the next FIFO victim.
        self.next_victim = 1 % len(members)
        self.clean_count = 0
        self.last_clean_seq = 0
        self.avg_clean_interval: Optional[float] = None
        #: freq x cost product, by analogy with Section 4.3.
        self.product: Optional[float] = None


class HybridPolicy(CleaningPolicy):
    """FIFO inside partitions, locality gathering between partitions."""

    name = "hybrid"
    preferred_layout = "contiguous"

    def __init__(self, partition_segments: int = 16,
                 gather_pages: int = 1,
                 max_move_fraction: float = 0.25,
                 min_free_fraction: float = 0.02,
                 deadband: float = 0.30,
                 interval_alpha: float = 0.15) -> None:
        super().__init__()
        if partition_segments < 1:
            raise ValueError("partition_segments must be at least 1")
        if gather_pages < 0:
            raise ValueError("gather_pages cannot be negative")
        if not 0 <= deadband < 1:
            raise ValueError("deadband must be in [0, 1)")
        self.partition_segments = partition_segments
        self.gather_pages = gather_pages
        self.max_move_fraction = max_move_fraction
        self.min_free_fraction = min_free_fraction
        self.deadband = deadband
        self.interval_alpha = interval_alpha
        self.partitions: List[PartitionState] = []

    # ------------------------------------------------------------------

    def _on_attach(self) -> None:
        store = self._store
        k = self.partition_segments
        if store.num_positions % k:
            raise ValueError(
                f"{store.num_positions} segments do not divide into "
                f"partitions of {k}")
        capacity = store.pages_per_segment
        self._max_move = max(1, int(capacity * self.max_move_fraction))
        self._reserve = max(1, int(capacity * self.min_free_fraction))
        self.partitions = [
            PartitionState(i, list(range(i * k, (i + 1) * k)))
            for i in range(store.num_positions // k)
        ]

    def partition_of(self, position: int) -> PartitionState:
        return self.partitions[position // self.partition_segments]

    def partition_utilization(self, part: PartitionState) -> float:
        store = self._store
        live = sum(store.positions[m].live_count for m in part.members)
        capacity = len(part.members) * store.pages_per_segment
        return live / capacity

    # ------------------------------------------------------------------

    def flush(self, logical_page: int, origin: int) -> int:
        store = self._store
        part = self.partition_of(origin)
        if store.positions[part.active].free_slots == 0:
            self._clean_partition(part)
        store.append(part.active, logical_page)
        return part.active

    # ------------------------------------------------------------------
    # FIFO within the partition
    # ------------------------------------------------------------------

    def _clean_partition(self, part: PartitionState) -> None:
        store = self._store
        for _ in range(len(part.members) + 1):
            victim = part.members[part.next_victim]
            if victim == part.active and len(part.members) > 1:
                # Skip the active segment: it is the one we just filled.
                part.next_victim = (part.next_victim + 1) % len(part.members)
                victim = part.members[part.next_victim]
            utilization = store.positions[victim].utilization
            store.clean(victim)
            part.next_victim = (part.next_victim + 1) % len(part.members)
            part.active = victim
            self._update_stats(part, utilization)
            self._redistribute(part)
            if store.positions[part.active].free_slots > 0:
                return
        raise RuntimeError(
            f"partition {part.index} recovered no space in a full FIFO "
            f"cycle; its utilization is too high")

    def _update_stats(self, part: PartitionState, utilization: float) -> None:
        store = self._store
        interval = max(1, store.flush_count - part.last_clean_seq)
        if part.avg_clean_interval is None:
            part.avg_clean_interval = float(interval)
        else:
            a = self.interval_alpha
            part.avg_clean_interval = (a * interval
                                       + (1 - a) * part.avg_clean_interval)
        part.last_clean_seq = store.flush_count
        part.clean_count += 1
        if utilization < 1.0:
            cost = utilization / (1.0 - utilization)
        else:
            cost = float(store.pages_per_segment)
        part.product = cost / part.avg_clean_interval

    # ------------------------------------------------------------------
    # Locality gathering between partitions
    # ------------------------------------------------------------------

    def _redistribute(self, part: PartitionState) -> None:
        """Exchange pages with neighbour partitions after a clean.

        The just-cleaned segment plays the role the cleaned segment plays
        in Section 4.3: hot pages leave from its tail toward the hotter
        (lower) partition, cold pages leave from its head toward the
        colder one.  Flows run from high-product partitions to low, with
        the one-page ordering trickle always on; an under-utilised
        partition additionally absorbs pages from a genuinely fuller
        neighbour.
        """
        if len(self.partitions) < 2:
            return
        my_product = part.product if part.product is not None else 0.0
        my_util = self.partition_utilization(part)
        i = part.index
        for neighbour_index, hot_direction in ((i - 1, True), (i + 1, False)):
            if not 0 <= neighbour_index < len(self.partitions):
                continue
            other = self.partitions[neighbour_index]
            other_product = other.product
            rel = 0.0
            if other_product is not None and my_product + other_product > 0:
                rel = ((my_product - other_product)
                       / (my_product + other_product))
            # Push: ordering trickle plus product-driven shedding.
            n_push = self.gather_pages
            if rel > self.deadband:
                n_push += int(rel * self._max_move)
            self._push(part, other, n_push, from_end=hot_direction)
            # Pull: absorb from a fuller, higher-product neighbour.
            if (rel < -self.deadband
                    and self.partition_utilization(other) - my_util > 0.08):
                n_pull = int(-rel * self._max_move)
                self._pull(other, part, n_pull, hot_source=hot_direction)

    def _push(self, src: PartitionState, dst: PartitionState, want: int,
              from_end: bool) -> int:
        """Move pages from src's just-cleaned active segment into dst."""
        return self._move_pages(src.active, dst.active, want,
                                from_end=from_end)

    def _pull(self, src: PartitionState, dst: PartitionState, want: int,
              hot_source: bool) -> int:
        """Absorb pages from a neighbour partition into dst's active.

        A hotter source gives up its coldest data (the head of its oldest,
        next-to-clean segment); a colder source gives up its hottest (the
        tail of its active segment).
        """
        if hot_source:
            source_position = src.members[src.next_victim]
            from_end = False
        else:
            source_position = src.active
            from_end = True
        return self._move_pages(source_position, dst.active, want,
                                from_end=from_end)

    def _move_pages(self, src_pos: int, dst_pos: int, want: int,
                    from_end: bool) -> int:
        store = self._store
        dst = store.positions[dst_pos]
        src = store.positions[src_pos]
        moved = 0
        while (moved < want and src.live_count > 0
               and dst.free_slots > self._reserve):
            page = store.pop_live(src_pos, from_end=from_end)
            if page is None:
                break
            store.receive(dst_pos, page)
            moved += 1
        return moved
