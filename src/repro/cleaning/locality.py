"""Locality-gathering cleaning policy (Section 4.3).

Two cooperating mechanisms:

*Locality preservation* — every page flushed from the SRAM buffer returns
to the segment it was copied from, so segments keep a stable working set
and hot segments stay hot.

*Gathering and redistribution* — when a segment is cleaned, the cleaner
compares ``frequency-of-cleaning x cleaning-cost`` for that segment with
the average over all segments and transfers pages to/from its neighbours
to pull the product toward the average: "a segment that is used ten times
more often than another one should have one tenth its cleaning cost".
Transfers exploit the preserved program order inside a segment — data
near the tail is recently written (hot), data at the head has survived
many cleans (cold) — and always move hot pages toward segment 0 and cold
pages toward segment N-1, creating the multimodal hot/cold layout of
Figure 7.

Under a uniform workload every product is equal, no redistribution
happens, all segments sit at the global utilization, and the cost is
pinned at ``u/(1-u)`` (4 at 80%) — exactly the weakness Figure 8 shows
and the hybrid policy of Section 4.4 repairs.
"""

from __future__ import annotations

from .base import CleaningPolicy

__all__ = ["LocalityGatheringPolicy"]


class LocalityGatheringPolicy(CleaningPolicy):
    """Flush back to the origin segment; equalise freq x cost products."""

    name = "locality"
    preferred_layout = "contiguous"

    def __init__(self, gather_pages: int = 1,
                 max_move_fraction: float = 0.25,
                 min_free_fraction: float = 0.02,
                 deadband: float = 0.30) -> None:
        """
        Parameters
        ----------
        gather_pages:
            Pages exchanged with each neighbour on *every* clean
            regardless of the product balance.  This is the ordering
            current of Section 4.3 — hot pages off the tail toward
            segment 0, cold pages off the head the other way — kept to a
            trickle so it costs almost nothing under uniform access but
            steadily repairs any hot/cold mixing.
        max_move_fraction:
            Additional pages moved per clean to pull the segment's
            freq x cost product toward the average, scaled by the
            imbalance.
        min_free_fraction:
            Free slots every segment must retain after receiving pages,
            so flush-back and future cleans can always make progress.
        deadband:
            Relative product difference below which no product-driven
            transfer fires.  Products are noisy estimates; without a
            deadband, uniform workloads (where the true products are all
            equal) pay a steady tax of noise-driven transfers instead of
            the paper's fixed cost of 4.
        """
        super().__init__()
        if gather_pages < 0:
            raise ValueError("gather_pages cannot be negative")
        if not 0 <= deadband < 1:
            raise ValueError("deadband must be in [0, 1)")
        self.gather_pages = gather_pages
        self.max_move_fraction = max_move_fraction
        self.min_free_fraction = min_free_fraction
        self.deadband = deadband

    # ------------------------------------------------------------------

    def _on_attach(self) -> None:
        capacity = self._store.pages_per_segment
        self._gather = self.gather_pages
        self._max_move = max(1, int(capacity * self.max_move_fraction))
        self._reserve = max(1, int(capacity * self.min_free_fraction))

    def flush(self, logical_page: int, origin: int) -> int:
        store = self._store
        pos = store.positions[origin]
        if pos.free_slots == 0:
            self._clean_and_gather(origin)
            if pos.free_slots == 0:
                # The segment is packed solid with live data; shed pages
                # unconditionally so the flush can land.
                self._force_shed(origin, self._reserve)
        store.append(origin, logical_page)
        return origin

    # ------------------------------------------------------------------
    # Redistribution heuristic
    # ------------------------------------------------------------------

    def _average_product(self) -> float:
        products = [p.product for p in self._store.positions
                    if p.product is not None]
        if not products:
            return 0.0
        return sum(products) / len(products)

    def _clean_and_gather(self, index: int) -> None:
        """Clean ``index``, then push pages toward lower-product neighbours.

        Implements the Section 4.3 transfer rule as flows from segments
        whose freq x cost product is high toward neighbours whose product
        is lower, which "brings their products closer to the average"
        from both sides and is stable (a segment that sheds pages lowers
        its own product and raises the receiver's).

        Source side follows the paper exactly: pages headed to the lower
        numbered (hotter) neighbour come off this segment's *tail*, pages
        headed up come off its *head*.  On the receive side a page can
        only be programmed at the tail; upward moves genuinely belong
        there (the sender's coldest pages rank with the receiver's
        hottest), while downward moves are marked *demoted* so the
        receiver's next clean re-homes them at its cold head.  Both
        directions therefore preserve the global hot-to-cold ordering.

        A one-page "gathering trickle" flows in both directions on every
        clean regardless of products, so the ordering keeps getting
        refined even at equilibrium.
        """
        store = self._store
        pos = store.positions[index]
        # --- pulls, planned before the clean so pages from the hotter
        # neighbour can be programmed first (at the cold head) ----------
        head_pull, tail_pull = self._pull_plan(index)
        head_pages = []
        if head_pull:
            for _ in range(head_pull):
                page = store.pop_live(index - 1, from_end=False)
                if page is None:
                    break
                head_pages.append(page)
        store.clean(index, prepend=head_pages)
        if tail_pull:
            for _ in range(tail_pull):
                if pos.free_slots <= self._reserve:
                    break
                page = store.pop_live(index + 1, from_end=True)
                if page is None:
                    break
                store.receive(index, page)
        # --- pushes toward lower-product neighbours + ordering trickle -
        product = pos.product if pos.product is not None else 0.0
        for neighbour, from_end in ((index - 1, True), (index + 1, False)):
            if not 0 <= neighbour < store.num_positions:
                continue
            other = store.positions[neighbour].product
            rel = 0.0
            if other is not None and product + other > 0:
                rel = (product - other) / (product + other)
            n_move = self._gather
            if rel > self.deadband:
                n_move += int(rel * self._max_move)
            self._push(index, neighbour, n_move, from_end=from_end)

    def _pull_plan(self, index: int) -> "tuple[int, int]":
        """Pages to absorb from each overloaded neighbour at this clean.

        A segment whose product is *below* a neighbour's is being cleaned
        too rarely for its cost — it has spare capacity in the product
        sense — so while it holds the spare segment it soaks up the
        neighbour's misfit pages: the hotter neighbour's head (programmed
        first, at this segment's cold head) and the colder neighbour's
        tail (programmed last, at its hot tail).  This is the fast path
        of the Section 4.3 redistribution: cold segments clean rarely,
        but each clean can absorb many pages at once.
        """
        store = self._store
        pos = store.positions[index]
        mine = pos.product
        if mine is None:
            return 0, 0
        room = pos.capacity - pos.live_count - self._reserve
        if room <= 0:
            return 0, 0
        pulls = [0, 0]
        for side, neighbour in enumerate((index - 1, index + 1)):
            if not 0 <= neighbour < store.num_positions:
                continue
            other_pos = store.positions[neighbour]
            other = other_pos.product
            if other is None or other + mine <= 0:
                continue
            # Products are noisy estimates; utilization is exact.  Only
            # absorb from a neighbour that is genuinely fuller, which
            # keeps uniform workloads (equal utilizations) pull-free and
            # prevents tug-of-war transfers between equals.
            if other_pos.utilization - pos.utilization < 0.08:
                continue
            rel = (other - mine) / (other + mine)
            if rel > self.deadband:
                pulls[side] = int(rel * self._max_move)
        total = pulls[0] + pulls[1]
        if total > room:
            scale = room / total
            pulls = [int(p * scale) for p in pulls]
        return pulls[0], pulls[1]

    def _push(self, src: int, dst: int, want: int, from_end: bool) -> int:
        """Move up to ``want`` live pages src -> dst (demote if downward)."""
        store = self._store
        dst_pos = store.positions[dst]
        src_pos = store.positions[src]
        demote = dst < src  # downward moves land at the cold head later
        moved = 0
        while (moved < want and src_pos.live_count > 0
               and dst_pos.free_slots > self._reserve):
            page = store.pop_live(src, from_end=from_end)
            if page is None:
                break
            store.receive(dst, page, demote=demote)
            moved += 1
        return moved

    def _force_shed(self, index: int, needed: int) -> None:
        """Evict pages from a solid segment so a flush can proceed."""
        store = self._store
        shed = 0
        for neighbour, from_end in ((index - 1, True), (index + 1, False)):
            if not 0 <= neighbour < store.num_positions:
                continue
            dst_pos = store.positions[neighbour]
            demote = neighbour < index
            while (shed < needed and dst_pos.free_slots > 0
                   and store.positions[index].live_count > 0):
                page = store.pop_live(index, from_end=from_end)
                if page is None:
                    break
                store.receive(neighbour, page, demote=demote)
                shed += 1
            if shed >= needed:
                return
        if shed == 0:
            raise RuntimeError(
                f"segment {index} is full and both neighbours have no "
                f"room; utilization is too high for locality gathering")
