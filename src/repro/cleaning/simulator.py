"""Untimed cleaning-policy simulator (drives Figures 6, 8, 9 and 10).

Feeds a stream of logical page writes through the SRAM write buffer and a
cleaning policy over a :class:`~repro.cleaning.store.SegmentStore`,
reporting the steady-state *cleaning cost* — cleaner program operations
per page flushed (Section 4.1).

Timing is irrelevant to cleaning cost, so this simulator has no clock:
the buffer drains one page for every page inserted once it reaches its
threshold, which is the steady state of the real controller's background
flushing.  What *is* modelled faithfully:

* copy-on-write invalidation the moment a page enters the buffer,
* FIFO buffer order with write coalescing (hits do not flush),
* origin tracking so locality-aware policies flush back where the page
  came from (segment for locality gathering, partition for hybrid),
* one always-erased spare segment, and
* the 100-cycle wear-leveling swap (optional).

Scale note: results depend on the number of segments, pages per segment,
utilization and the buffer:segment ratio — all preserved by default —
not on absolute capacity, so experiments run with fewer pages per
segment than the 65,536 of the 2 GB system.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..workloads.base import WriteWorkload
from .base import CleaningPolicy
from .store import SegmentStore
from .wear import WearLeveler

__all__ = ["PolicySimulator", "SimulationResult", "measure_cleaning_cost"]


@dataclass
class SimulationResult:
    """Steady-state measurements from a policy run."""

    policy: str
    workload: str
    num_segments: int
    pages_per_segment: int
    utilization: float
    host_writes: int
    buffer_hits: int
    flushes: int
    clean_copies: int
    transfers: int
    erases: int
    wear_spread: int
    wear_swaps: int

    @property
    def cleaning_cost(self) -> float:
        """Cleaner programs per flushed page (the Figure 8 metric)."""
        if self.flushes == 0:
            return 0.0
        return self.clean_copies / self.flushes

    @property
    def write_amplification(self) -> float:
        """Total Flash programs per flushed page (1 + cleaning cost)."""
        return 1.0 + self.cleaning_cost

    @property
    def buffer_hit_rate(self) -> float:
        if self.host_writes == 0:
            return 0.0
        return self.buffer_hits / self.host_writes

    def __str__(self) -> str:
        return (f"{self.policy:>8} {self.workload:>6}: "
                f"cost={self.cleaning_cost:.2f} "
                f"(flushes={self.flushes}, copies={self.clean_copies}, "
                f"erases={self.erases})")


class PolicySimulator:
    """Run one cleaning policy under one write workload."""

    __slots__ = ("policy", "utilization", "store", "buffer_pages",
                 "buffer_policy", "_buffer", "buffer_hits", "host_writes",
                 "leveler", "_store_buffer_page", "_policy_flush",
                 "_maybe_level")

    def __init__(self, policy: CleaningPolicy, num_segments: int = 128,
                 pages_per_segment: int = 256, utilization: float = 0.80,
                 buffer_pages: Optional[int] = None,
                 wear_leveling: bool = True,
                 wear_threshold: int = 100,
                 buffer_policy: str = "fifo",
                 layout_seed: Optional[int] = 1234) -> None:
        if not 0.0 < utilization < 1.0:
            raise ValueError("utilization must be in (0, 1)")
        self.policy = policy
        self.utilization = utilization
        num_logical = int(num_segments * pages_per_segment * utilization)
        self.store = SegmentStore(num_segments, pages_per_segment,
                                  num_logical)
        if policy.preferred_layout == "sequential":
            self.store.populate_sequential()
        elif policy.preferred_layout == "contiguous":
            self.store.populate_contiguous()
        else:
            rng = random.Random(layout_seed)
            self.store.populate_spread(rng)
        policy.attach(self.store)
        # The paper sizes the buffer to one segment (Section 5.1).  A
        # buffer of 0 bypasses SRAM entirely: every write flushes
        # immediately, which matches the Section 4 policy analysis where
        # uniform locality gathering is pinned at exactly cost 4 (buffer
        # coalescing would shave cleaned-segment utilization below 80%).
        self.buffer_pages = (buffer_pages if buffer_pages is not None
                             else pages_per_segment)
        if self.buffer_pages < 0:
            raise ValueError("buffer size cannot be negative")
        if buffer_policy not in ("fifo", "lru"):
            raise ValueError("buffer_policy must be 'fifo' or 'lru'")
        #: "fifo" evicts by insertion order (the paper's hardware
        #: choice, Section 3.2); "lru" promotes on every hit — the
        #: complex scheme the paper rejected, kept for the ablation.
        self.buffer_policy = buffer_policy
        #: Buffered pages: logical page -> origin position.
        self._buffer: "OrderedDict[int, int]" = OrderedDict()
        self.buffer_hits = 0
        self.host_writes = 0
        self.leveler = (WearLeveler(wear_threshold) if wear_leveling
                        else None)
        # Bound-method caches for the per-write hot path: the store and
        # policy never change after construction.
        self._store_buffer_page = self.store.buffer_page
        self._policy_flush = self.policy.flush
        self._maybe_level = (self.leveler.maybe_level
                             if self.leveler is not None else None)

    # ------------------------------------------------------------------

    def write(self, logical_page: int) -> None:
        """Apply one host write (word writes collapse to page writes)."""
        self.host_writes += 1
        if self.buffer_pages == 0:
            origin = self._store_buffer_page(logical_page)
            if origin is None:
                raise RuntimeError(
                    f"page {logical_page} has no initial placement; "
                    f"populate the store before writing")
            self._policy_flush(logical_page, origin)
            if self._maybe_level is not None:
                self._maybe_level(self.store)
            return
        buffer = self._buffer
        if logical_page in buffer:
            # Coalesced: the page is already in SRAM; update in place.
            self.buffer_hits += 1
            if self.buffer_policy == "lru":
                buffer.move_to_end(logical_page)
            return
        if len(buffer) >= self.buffer_pages:
            self._flush_one()
        origin = self._store_buffer_page(logical_page)
        if origin is None:
            raise RuntimeError(
                f"page {logical_page} has no initial placement; "
                f"populate the store before writing")
        buffer[logical_page] = origin

    def _flush_one(self) -> None:
        """Flush the FIFO tail through the cleaning policy."""
        buffer = self._buffer
        page, origin = next(iter(buffer.items()))
        del buffer[page]
        self._policy_flush(page, origin)
        if self._maybe_level is not None:
            self._maybe_level(self.store)

    def drain(self) -> None:
        """Flush every buffered page (used at the end of experiments)."""
        while self._buffer:
            self._flush_one()

    # ------------------------------------------------------------------

    def run(self, workload: WriteWorkload, num_writes: int,
            warmup_writes: int = 0) -> SimulationResult:
        """Drive ``num_writes`` measured writes (after optional warm-up).

        Warm-up writes bring the array to steady state; counters reset
        before measurement so transients do not bias the cost.
        """
        if workload.num_pages != self.store.num_logical_pages:
            raise ValueError(
                f"workload covers {workload.num_pages} pages but the "
                f"store exposes {self.store.num_logical_pages}")
        write = self.write
        next_page = workload.next_page
        for _ in range(warmup_writes):
            write(next_page())
        self.reset_counters()
        for _ in range(num_writes):
            write(next_page())
        return self.result(workload.label)

    def reset_counters(self) -> None:
        self.store.reset_counters()
        self.buffer_hits = 0
        self.host_writes = 0

    def result(self, workload_label: str = "") -> SimulationResult:
        store = self.store
        return SimulationResult(
            policy=self.policy.name,
            workload=workload_label,
            num_segments=store.num_positions,
            pages_per_segment=store.pages_per_segment,
            utilization=self.utilization,
            host_writes=self.host_writes,
            buffer_hits=self.buffer_hits,
            flushes=store.flush_count,
            clean_copies=store.clean_copy_count,
            transfers=store.transfer_count,
            erases=store.erase_count,
            wear_spread=store.wear_spread(),
            wear_swaps=self.leveler.swap_count if self.leveler else 0,
        )


def measure_cleaning_cost(policy: CleaningPolicy,
                          locality: str = "50/50",
                          num_segments: int = 128,
                          pages_per_segment: int = 256,
                          utilization: float = 0.80,
                          turnovers: float = 6.0,
                          warmup_turnovers: float = 4.0,
                          wear_leveling: bool = True,
                          buffer_pages: Optional[int] = 0,
                          seed: Optional[int] = 1234) -> SimulationResult:
    """Convenience wrapper: build, warm up, measure, return the result.

    ``locality`` is a Figure 8 label ("50/50" ... "5/95"); the bimodal
    workload is sized to the store's logical page count automatically.
    ``turnovers`` expresses run length in multiples of the live data set
    (one turnover rewrites, on average, every live page once).
    """
    from ..workloads.bimodal import BimodalWorkload

    simulator = PolicySimulator(policy, num_segments, pages_per_segment,
                                utilization, buffer_pages=buffer_pages,
                                wear_leveling=wear_leveling,
                                layout_seed=seed)
    live_pages = simulator.store.num_logical_pages
    workload = BimodalWorkload.from_label(live_pages, locality, seed=seed)
    warmup = int(live_pages * warmup_turnovers)
    measured = int(live_pages * turnovers)
    return simulator.run(workload, measured, warmup_writes=warmup)
