"""Fast page-mapped model of the Flash array for cleaning studies.

The cleaning experiments of Section 4 (Figures 6, 8, 9, 10) need millions
of page writes to reach steady state, far more than the byte-accurate
substrate can process quickly.  This module provides the page-granularity
state machine those experiments run on.  It models exactly the structure
the cleaning policies care about:

* *positions* — logical segment slots 0..N-1.  The locality-gathering
  policy sorts data hotness by position number ("migrate hot data towards
  the lower numbered segments", Section 4.3), so a position's identity
  must survive cleaning even though the data moves to a different
  physical segment each time.
* *physical segments* — N+1 of them; one is always kept erased as the
  cleaning target ("eNVy must always keep one segment completely erased
  between cleaning operations", Section 3.4).  Wear (erase cycles) is
  physical and follows the physical segment, which is what the
  wear-leveler equalises.
* append-only *slots* within a position, preserving program order — the
  cleaner relies on order ("when cleaning a segment, the order of the
  pages is maintained", Section 4.3) so hot data accumulates at the tail
  and cold data sinks to the head.

Invalidation is lazy: a slot's occupant is live if and only if the global
page-location table still points back at that slot.  Cleaning compacts
live slots in order onto the spare physical segment and erases the old
one.  Every mutation is counted so the simulator can report the paper's
cleaning-cost metric, and an optional observer receives (operation,
amount) callbacks so the timed simulator can charge wall-clock time.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

__all__ = ["Position", "SegmentStore", "StoreError"]


class StoreError(RuntimeError):
    """Raised when an operation violates the store's invariants."""


class Position:
    """One logical segment: an ordered, append-only run of page slots."""

    __slots__ = ("index", "capacity", "slots", "live_count", "phys",
                 "demoted", "clean_count", "last_clean_seq",
                 "avg_clean_interval", "last_clean_utilization", "product")

    def __init__(self, index: int, capacity: int, phys: int) -> None:
        self.index = index
        self.capacity = capacity
        #: Logical page numbers in program order (may contain dead slots).
        self.slots: List[int] = []
        self.live_count = 0
        #: Physical segment currently backing this position.
        self.phys = phys
        #: Pages received from a hotter neighbour that belong at the cold
        #: head; the next clean re-homes them there (see receive()).
        self.demoted: set = set()
        # --- cleaning statistics used by locality gathering -----------
        self.clean_count = 0
        self.last_clean_seq = 0
        #: Exponentially weighted flushes-between-cleans.
        self.avg_clean_interval: Optional[float] = None
        self.last_clean_utilization = 0.0
        #: freq x cost product from the most recent clean (Section 4.3).
        self.product: Optional[float] = None

    @property
    def write_pointer(self) -> int:
        return len(self.slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.slots)

    @property
    def dead_slots(self) -> int:
        return len(self.slots) - self.live_count

    @property
    def utilization(self) -> float:
        return self.live_count / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Position({self.index}: live={self.live_count}"
                f"/{self.capacity}, wp={self.write_pointer}, "
                f"phys={self.phys})")


#: Observer signature: (event, position_index, amount).  Events are
#: "program", "clean_copy", "erase" and "transfer".
Observer = Callable[[str, int, int], None]

#: page_location value meaning "the live copy is in the SRAM buffer".
IN_BUFFER: Tuple[int, int] = (-1, -1)


class SegmentStore:
    """N logical positions over N+1 physical segments (one spare)."""

    def __init__(self, num_positions: int, pages_per_segment: int,
                 num_logical_pages: int,
                 observer: Optional[Observer] = None) -> None:
        if num_positions < 2:
            raise ValueError("need at least two positions")
        if num_logical_pages > num_positions * pages_per_segment:
            raise ValueError("logical pages exceed array capacity")
        self.num_positions = num_positions
        self.pages_per_segment = pages_per_segment
        self.num_logical_pages = num_logical_pages
        self.positions = [Position(i, pages_per_segment, i)
                          for i in range(num_positions)]
        #: Physical erase-cycle counters; index num_positions is the spare.
        self.phys_erase_counts = [0] * (num_positions + 1)
        self.spare_phys = num_positions
        #: Physical segments retired as bad blocks (see repro.faults) —
        #: out of the cleaning rotation, excluded from wear accounting.
        self.retired_phys: set = set()
        #: Fresh physical segments held in reserve as replacements; they
        #: join the rotation only when a retirement swaps them in.
        self.reserve_phys: List[int] = []
        #: Physical segments dedicated to flash-resident metadata (page
        #: table checkpoints).  They never hold logical pages, so they
        #: are outside the cleaning rotation and its wear accounting.
        self.metadata_phys: set = set()
        #: Where each logical page's live copy is: (position, slot),
        #: IN_BUFFER, or None if never written.
        self.page_location: List[Optional[Tuple[int, int]]] = (
            [None] * num_logical_pages)
        self.observer = observer
        #: Primary relocation callback (see the copy_listener property);
        #: a read-cache tier hooks this to invalidate entries whose
        #: backing copy moved.  The observer cannot serve that purpose
        #: because it only reports (operation, position, amount), never
        #: page identity.
        self._copy_listener: Optional[Callable[[int], None]] = None
        #: Additional relocation listeners (add_copy_listener); they
        #: fire after the primary, in registration order, so several
        #: consumers (cache invalidation + trace recording) can watch
        #: the same store without displacing each other.
        self._copy_listeners: List[Callable[[int], None]] = []
        # --- global counters (the cleaning-cost numerator/denominator) -
        self.flush_count = 0
        self.clean_copy_count = 0
        self.transfer_count = 0
        self.erase_count = 0
        self.host_write_count = 0
        #: Smoothing constant for per-position clean intervals.
        self.interval_alpha = 0.15
        # --- derived accounting, maintained incrementally --------------
        # Running totals and a live-count bucket index make live_pages()
        # and greedy victim selection O(1) instead of O(positions).  Any
        # code that mutates position/physical state directly (recovery,
        # snapshot restore) must call rebuild_derived() afterwards.
        self._live_total = 0
        self._slot_total = 0
        #: _live_buckets[k] = indices of positions with exactly k live
        #: pages.  Greedy's victim (max dead+free = min live) is the
        #: lowest index in the lowest occupied bucket.
        self._live_buckets: List[set] = [set()
                                         for _ in range(pages_per_segment + 1)]
        self._live_buckets[0].update(range(num_positions))
        #: Lazy floor: no occupied bucket exists below this live count.
        self._min_live = 0
        #: Bumped whenever the active-segment membership may have
        #: changed; keys the active_phys()/wear_spread() caches.
        self._derived_version = 0
        self._active_key = None
        self._active_cache: List[int] = []
        self._wear_key = None
        self._wear_value = 0

    # ------------------------------------------------------------------
    # Copy listeners
    # ------------------------------------------------------------------

    @property
    def copy_listener(self) -> Optional[Callable[[int], None]]:
        """The primary relocation callback (single-listener slot).

        Kept as a plain read/write property for the existing consumers
        that save-and-restore it (the DRAM read cache, the transaction
        executor); code that must coexist with them registers through
        :meth:`add_copy_listener` instead.
        """
        return self._copy_listener

    @copy_listener.setter
    def copy_listener(self,
                      callback: Optional[Callable[[int], None]]) -> None:
        self._copy_listener = callback

    def add_copy_listener(self,
                          callback: Callable[[int], None]) -> None:
        """Register an additional relocation listener.

        Fires with each logical page whose live Flash copy the cleaner
        physically relocated (clean survivors, prepended transfers,
        receive()), after the primary listener.
        """
        self._copy_listeners.append(callback)

    def remove_copy_listener(self,
                             callback: Callable[[int], None]) -> None:
        self._copy_listeners.remove(callback)

    def _notify_copies(self, pages) -> None:
        listener = self._copy_listener
        extras = self._copy_listeners
        if listener is None and not extras:
            return
        for page in pages:
            if listener is not None:
                listener(page)
            for extra in extras:
                extra(page)

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------

    def _live_delta(self, pos: Position, delta: int) -> None:
        """Adjust a position's live count, keeping the bucket index and
        running total consistent."""
        buckets = self._live_buckets
        live = pos.live_count
        buckets[live].discard(pos.index)
        live += delta
        pos.live_count = live
        buckets[live].add(pos.index)
        self._live_total += delta
        if live < self._min_live:
            self._min_live = live

    def min_live_position(self, exclude: int = -1) -> Optional[int]:
        """Lowest-indexed position with the fewest live pages.

        This is greedy's victim: most dead+free space == fewest live
        pages, ties broken by position index (matching the original
        first-wins scan).  ``exclude`` skips one position (the active
        segment).  Returns None when every position is excluded.
        """
        buckets = self._live_buckets
        n = len(buckets)
        live = self._min_live
        while live < n and not buckets[live]:
            live += 1
        self._min_live = min(live, n - 1) if n else 0
        while live < n:
            bucket = buckets[live]
            if bucket:
                if len(bucket) == 1 and exclude in bucket:
                    live += 1
                    continue
                best = min(bucket)
                if best == exclude:
                    best = min(i for i in bucket if i != exclude)
                return best
            live += 1
        return None

    def rebuild_derived(self) -> None:
        """Recompute the incrementally maintained accounting from the
        positions.  Must be called after any direct mutation of position
        slots/live counts or the physical membership sets (recovery,
        snapshot restore)."""
        buckets = [set() for _ in range(self.pages_per_segment + 1)]
        live_total = 0
        slot_total = 0
        for pos in self.positions:
            buckets[pos.live_count].add(pos.index)
            live_total += pos.live_count
            slot_total += len(pos.slots)
        self._live_buckets = buckets
        self._live_total = live_total
        self._slot_total = slot_total
        self._min_live = 0
        self._derived_version += 1
        self._active_key = None
        self._wear_key = None

    def location(self, logical_page: int) -> Optional[Tuple[int, int]]:
        return self.page_location[logical_page]

    def position_of(self, logical_page: int) -> Optional[int]:
        """Position currently holding the page (None if buffered/unborn)."""
        loc = self.page_location[logical_page]
        if loc is None or loc == IN_BUFFER:
            return None
        return loc[0]

    def is_live_slot(self, pos_index: int, slot: int) -> bool:
        page = self.positions[pos_index].slots[slot]
        return self.page_location[page] == (pos_index, slot)

    def append(self, pos_index: int, logical_page: int,
               count_as_flush: bool = True) -> None:
        """Program ``logical_page`` at the tail of a position.

        ``count_as_flush`` distinguishes useful writes (the denominator of
        the cleaning cost) from cleaner-initiated copies.
        """
        pos = self.positions[pos_index]
        if len(pos.slots) >= pos.capacity:
            raise StoreError(f"position {pos_index} has no free slots")
        old = self.page_location[logical_page]
        if old is not None and old != IN_BUFFER:
            self._kill(old)
        pos.slots.append(logical_page)
        self._slot_total += 1
        self._live_delta(pos, 1)
        self.page_location[logical_page] = (pos_index, len(pos.slots) - 1)
        if pos.demoted:
            # A rewritten page is hot again; cancel any pending demotion.
            pos.demoted.discard(logical_page)
        if count_as_flush:
            self.flush_count += 1
            if self.observer is not None:
                self.observer("program", pos_index, 1)

    def buffer_page(self, logical_page: int) -> Optional[int]:
        """Move a page's live copy to the SRAM buffer (copy-on-write).

        Returns the position the Flash copy lived in (the page's origin)
        or None if the page had never been written.
        """
        loc = self.page_location[logical_page]
        origin: Optional[int] = None
        if loc is not None and loc != IN_BUFFER:
            origin = loc[0]
            self._kill(loc)
        self.page_location[logical_page] = IN_BUFFER
        return origin

    def _kill(self, loc: Tuple[int, int]) -> None:
        """Invalidate the Flash copy at ``loc`` (lazy: just drop liveness)."""
        pos = self.positions[loc[0]]
        if pos.live_count <= 0:
            raise StoreError(f"negative live count in position {loc[0]}")
        self._live_delta(pos, -1)

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------

    def clean(self, pos_index: int,
              prepend: Optional[List[int]] = None) -> int:
        """Clean a position onto the spare physical segment.

        Copies the live pages (in order) to the spare, erases the old
        physical segment which becomes the new spare, and updates the
        position's cleaning statistics.  Returns the number of live pages
        copied (the cleaning-cost numerator contribution).

        ``prepend`` is a list of detached pages (from
        :meth:`pop_live` on other positions) written *before* the
        survivors — the cleaner uses this to place pages pulled from a
        hotter neighbour at the cold head of the fresh segment.  The
        program order of a segment is chosen while cleaning it, so this
        costs nothing extra physically; the copies are charged to the
        cleaning cost like any other cleaner program.
        """
        pos = self.positions[pos_index]
        survivors = [page for slot, page in enumerate(pos.slots)
                     if self.page_location[page] == (pos_index, slot)]
        if len(survivors) != pos.live_count:
            raise StoreError(
                f"position {pos_index} live-count drift: "
                f"{len(survivors)} != {pos.live_count}")
        if pos.demoted:
            # Re-home pages demoted from a hotter neighbour at the cold
            # head, preserving relative order within each group.
            demoted = [p for p in survivors if p in pos.demoted]
            if demoted:
                kept = [p for p in survivors if p not in pos.demoted]
                survivors = demoted + kept
            pos.demoted.clear()
        utilization = pos.live_count / pos.capacity
        # Swap physical segments: survivors land on the spare.
        old_phys = pos.phys
        pos.phys = self.spare_phys
        self.spare_phys = old_phys
        self.phys_erase_counts[old_phys] += 1
        self.erase_count += 1
        copies = len(survivors)
        old_slot_count = len(pos.slots)
        if prepend:
            if len(prepend) + copies > pos.capacity:
                raise StoreError(
                    f"position {pos_index} cannot absorb {len(prepend)} "
                    f"prepended pages")
            pos.slots = list(prepend) + survivors
            self._live_delta(pos, len(prepend))
            self.clean_copy_count += len(prepend)
            self.transfer_count += len(prepend)
            if self.observer is not None:
                self.observer("transfer", pos_index, len(prepend))
        else:
            pos.slots = survivors
        self._slot_total += len(pos.slots) - old_slot_count
        for slot, page in enumerate(pos.slots):
            self.page_location[page] = (pos_index, slot)
        self._notify_copies(pos.slots)
        self.clean_copy_count += copies
        if self.observer is not None:
            self.observer("clean_copy", pos_index, copies)
            self.observer("erase", pos_index, 1)
        # --- statistics for the locality-gathering heuristic ----------
        interval = max(1, self.flush_count - pos.last_clean_seq)
        if pos.avg_clean_interval is None:
            pos.avg_clean_interval = float(interval)
        else:
            a = self.interval_alpha
            pos.avg_clean_interval = (a * interval
                                      + (1.0 - a) * pos.avg_clean_interval)
        pos.last_clean_seq = self.flush_count
        pos.last_clean_utilization = utilization
        pos.clean_count += 1
        if utilization < 1.0:
            cost = utilization / (1.0 - utilization)
        else:
            cost = float(pos.capacity)  # clamp the impossible case
        pos.product = cost / pos.avg_clean_interval
        return copies

    # ------------------------------------------------------------------
    # Page transfers between positions (locality gathering, Section 4.3)
    # ------------------------------------------------------------------

    def pop_live(self, pos_index: int, from_end: bool) -> Optional[int]:
        """Detach the hottest (tail) or coldest (head) live page.

        Returns the logical page, with its location cleared, or None if
        the position holds no live pages.  The caller must immediately
        re-home the page with :meth:`receive`.
        """
        pos = self.positions[pos_index]
        if pos.live_count == 0:
            return None
        indices = (range(len(pos.slots) - 1, -1, -1) if from_end
                   else range(len(pos.slots)))
        for slot in indices:
            page = pos.slots[slot]
            if self.page_location[page] == (pos_index, slot):
                self._live_delta(pos, -1)
                self.page_location[page] = None
                if pos.demoted:
                    pos.demoted.discard(page)
                return page
        raise StoreError(f"position {pos_index} claims live pages "
                         f"but none found")

    def receive(self, pos_index: int, logical_page: int,
                demote: bool = False) -> None:
        """Program a transferred page at the tail of a position.

        Transfer programs are cleaner overhead, so they are counted with
        the clean copies, not the flushes.

        ``demote`` marks a page that arrived from a *hotter* neighbour:
        physically it must be programmed at the tail like everything
        else, but logically it belongs at this segment's cold head, so
        the next clean re-homes it there instead of leaving it among the
        hot recent writes.  (One SRAM bit per transferred page; cleaning
        state is already kept in persistent memory, Section 3.4.)
        """
        pos = self.positions[pos_index]
        if pos.free_slots <= 0:
            raise StoreError(f"position {pos_index} cannot receive: full")
        pos.slots.append(logical_page)
        self._slot_total += 1
        self._live_delta(pos, 1)
        self.page_location[logical_page] = (pos_index, len(pos.slots) - 1)
        self._notify_copies((logical_page,))
        if demote:
            pos.demoted.add(logical_page)
        self.clean_copy_count += 1
        self.transfer_count += 1
        if self.observer is not None:
            self.observer("transfer", pos_index, 1)

    # ------------------------------------------------------------------
    # Initial population
    # ------------------------------------------------------------------

    def populate_sequential(self) -> None:
        """Lay logical pages out in order, filling positions head first.

        The natural state after a bulk load; used by the greedy and FIFO
        policies.
        """
        self._require_empty()
        pos_index = 0
        for page in range(self.num_logical_pages):
            if self.positions[pos_index].free_slots == 0:
                pos_index += 1
            self.append(pos_index, page, count_as_flush=False)

    def populate_contiguous(self) -> None:
        """Give each position an equal, *contiguous* run of logical pages.

        This is the layout a sequential bulk load produces: every
        position ends at the same utilization, and locality in the
        logical address space (e.g. a contiguous hot set) maps directly
        to locality across positions.  The locality-gathering policy
        starts from here, exactly as the real system would after loading
        a database.
        """
        self._require_empty()
        base, remainder = divmod(self.num_logical_pages, self.num_positions)
        page = 0
        for pos_index in range(self.num_positions):
            count = base + (1 if pos_index < remainder else 0)
            for _ in range(count):
                self.append(pos_index, page, count_as_flush=False)
                page += 1

    def populate_spread(self, rng=None) -> None:
        """Distribute logical pages evenly (and shuffled) over positions.

        Every position ends at the same utilization with a random mix of
        pages, so locality gathering has to discover hot data itself
        rather than inheriting a sorted layout.
        """
        self._require_empty()
        pages = list(range(self.num_logical_pages))
        if rng is not None:
            rng.shuffle(pages)
        for offset, page in enumerate(pages):
            self.append(offset % self.num_positions, page,
                        count_as_flush=False)

    def _require_empty(self) -> None:
        if any(pos.slots for pos in self.positions):
            raise StoreError("store already populated")

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def cleaning_cost(self) -> float:
        """Cleaner program operations per flushed page (Section 4.1)."""
        if self.flush_count == 0:
            return 0.0
        return self.clean_copy_count / self.flush_count

    def reset_counters(self) -> None:
        """Zero the cost counters (called after warm-up)."""
        self.flush_count = 0
        self.clean_copy_count = 0
        self.transfer_count = 0
        self.erase_count = 0
        self.host_write_count = 0
        # wear_spread() keys its cache on erase_count; resetting the
        # counter would otherwise reuse stale entries.
        self._derived_version += 1
        self._wear_key = None

    def live_pages(self) -> int:
        return self._live_total

    def active_phys(self) -> List[int]:
        """Physical segments in the cleaning rotation, in id order.

        Excludes retired bad blocks and unprovisioned reserves, so the
        utilization and wear accounting track the array's *usable*
        capacity as it degrades.  Cached: retirement is rare, so the
        membership only changes when _derived_version (or a set size)
        does.  Callers must not mutate the returned list.
        """
        key = (self._derived_version, len(self.phys_erase_counts),
               len(self.retired_phys), len(self.reserve_phys),
               len(self.metadata_phys))
        if key != self._active_key:
            self._active_key = key
            self._active_cache = [
                phys for phys in range(len(self.phys_erase_counts))
                if phys not in self.retired_phys
                and phys not in self.reserve_phys
                and phys not in self.metadata_phys]
        return self._active_cache

    def utilization(self) -> float:
        """Live fraction of the usable array (spare included, like §4.1)."""
        total = len(self.active_phys()) * self.pages_per_segment
        return self._live_total / total

    def wear_spread(self) -> int:
        # Keyed on the erase counter: phys_erase_counts only changes
        # when a segment is erased (erase_count += 1) or on a rebuild.
        key = (self.erase_count, self._derived_version)
        if key != self._wear_key:
            counts = self.phys_erase_counts
            values = [counts[phys] for phys in self.active_phys()]
            self._wear_key = key
            self._wear_value = max(values) - min(values)
        return self._wear_value

    def occupancy(self) -> dict:
        """Gauges for the observability sampler: live/dead pages,
        utilization, and the per-position live fractions (heat data)."""
        return {
            "live_pages": self._live_total,
            "dead_pages": self._slot_total - self._live_total,
            "utilization": self.utilization(),
            "per_position_utilization":
                [p.utilization for p in self.positions],
        }

    def restore_layout(self, position_slots: List[List[int]],
                       position_phys: List[int],
                       page_location: List[Optional[Tuple[int, int]]],
                       spare_phys: int) -> None:
        """Install a layout reconstructed by a recovery scan.

        Replaces the slot runs, position ↔ physical mapping, and page
        locations wholesale; live counts are recomputed from the page
        locations (liveness is lazy, so they are the single source of
        truth).  Counters, cleaning statistics, and the retirement /
        reserve / metadata sets are left for the caller to set — a scan
        recovers layout, not history.
        """
        if len(position_slots) != self.num_positions or \
                len(position_phys) != self.num_positions:
            raise StoreError("layout does not match the position count")
        if len(page_location) != self.num_logical_pages:
            raise StoreError("layout does not match the logical page count")
        self.page_location = list(page_location)
        for pos, slots, phys in zip(self.positions, position_slots,
                                    position_phys):
            if len(slots) > pos.capacity:
                raise StoreError(f"position {pos.index} over capacity")
            pos.slots = list(slots)
            pos.phys = phys
            pos.demoted = set()
            pos.live_count = sum(
                1 for slot, page in enumerate(pos.slots)
                if self.page_location[page] == (pos.index, slot))
        self.spare_phys = spare_phys
        self.rebuild_derived()

    def check_invariants(self) -> None:
        """Expensive consistency check used by the property tests."""
        live_seen = [0] * self.num_positions
        for page, loc in enumerate(self.page_location):
            if loc is None or loc == IN_BUFFER:
                continue
            pos_index, slot = loc
            pos = self.positions[pos_index]
            if not (0 <= slot < len(pos.slots)) or pos.slots[slot] != page:
                raise StoreError(f"page {page} location {loc} is stale")
            live_seen[pos_index] += 1
        for pos in self.positions:
            if live_seen[pos.index] != pos.live_count:
                raise StoreError(
                    f"position {pos.index}: live_count={pos.live_count} "
                    f"but {live_seen[pos.index]} live slots found")
            if len(pos.slots) > pos.capacity:
                raise StoreError(f"position {pos.index} over capacity")
        if self._live_total != sum(live_seen):
            raise StoreError(
                f"live total drift: running={self._live_total} "
                f"actual={sum(live_seen)}")
        if self._slot_total != sum(len(p.slots) for p in self.positions):
            raise StoreError("slot total drift")
        for live, bucket in enumerate(self._live_buckets):
            for index in bucket:
                if self.positions[index].live_count != live:
                    raise StoreError(
                        f"bucket drift: position {index} in bucket {live} "
                        f"but live_count="
                        f"{self.positions[index].live_count}")
        if sum(len(b) for b in self._live_buckets) != self.num_positions:
            raise StoreError("bucket index does not partition positions")
        phys_in_use = [p.phys for p in self.positions] + [self.spare_phys]
        if sorted(phys_in_use) != self.active_phys():
            raise StoreError("physical segment mapping is not a bijection "
                             "onto the active segments")
