"""Even-wear leveling (Section 4.3, last paragraph).

"eNVy keeps statistics on the number of program/erase cycles each segment
has been exposed to and when the oldest segment gets over 100 cycles
older than the youngest, a cleaning operation is initiated that swaps the
data in the two areas.  This leads to an even wearing of the segments."

Locality gathering deliberately cleans hot segments far more often than
cold ones, so without this swap the physical segments under hot data
would wear out years before the rest of the array.  Swapping parks the
cold data (which almost never forces an erase) on the most-cycled
physical segment, retiring it from the erase rotation.

The swap itself is implemented as two back-to-back cleaning operations:
clean the position on the worn segment (its data lands on the spare, the
worn segment is erased and becomes the spare), then clean the position on
the young segment (its cold data lands on the worn segment, and the young
segment becomes the new spare, rejoining the rotation).  Both copies are
charged to the cleaning cost, like any other cleaner work.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .store import SegmentStore

__all__ = ["WearLeveler"]


class WearLeveler:
    """Swap data between the most- and least-cycled physical segments."""

    def __init__(self, threshold_cycles: int = 100,
                 cooldown_erases: int = 16) -> None:
        """
        Parameters
        ----------
        threshold_cycles:
            Erase-count spread that triggers a swap (100 in the paper).
        cooldown_erases:
            Minimum global erase operations between swaps, preventing a
            swap storm while the spread decays back under the threshold.
        """
        if threshold_cycles < 1:
            raise ValueError("threshold_cycles must be positive")
        self.threshold_cycles = threshold_cycles
        self.cooldown_erases = cooldown_erases
        self.swap_count = 0
        self._last_swap_erase_count = -(10 ** 9)

    # ------------------------------------------------------------------

    def _extremes(self, store: SegmentStore) -> Tuple[int, int]:
        """Physical ids of the most- and least-cycled *active* segments.

        Retired bad blocks and unprovisioned reserves are outside the
        erase rotation, so leveling must not try to swap data onto them.
        """
        counts = store.phys_erase_counts
        active = store.active_phys()
        oldest = max(active, key=counts.__getitem__)
        youngest = min(active, key=counts.__getitem__)
        return oldest, youngest

    def _position_on(self, store: SegmentStore, phys: int) -> Optional[int]:
        for pos in store.positions:
            if pos.phys == phys:
                return pos.index
        return None  # the spare

    def maybe_level(self, store: SegmentStore) -> bool:
        """Swap if the wear spread exceeds the threshold; returns True if
        a swap was performed."""
        if (store.erase_count - self._last_swap_erase_count
                < self.cooldown_erases):
            return False
        if store.wear_spread() <= self.threshold_cycles:
            return False
        oldest, youngest = self._extremes(store)
        worn_position = self._position_on(store, oldest)
        young_position = self._position_on(store, youngest)
        if worn_position is None and young_position is None:
            return False
        if worn_position is not None:
            # Data off the worn segment; worn segment becomes the spare.
            store.clean(worn_position)
        if young_position is not None:
            # Cold data onto the worn (now spare) segment; the young
            # segment becomes the spare and rejoins the rotation.
            store.clean(young_position)
        self.swap_count += 1
        self._last_swap_erase_count = store.erase_count
        return True
