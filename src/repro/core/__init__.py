"""Core eNVy system: configuration, controller, metrics, economics.

The controller (`EnvySystem`) is the paper's primary contribution; the
rest of this package holds the Figure 12 configuration, the Figure 1
cost model, the Section 5.5 lifetime model and the metrics plumbing.
"""

from .binding import BoundStore
from .config import EnvyConfig, FlashParams, SramParams, TpcParams
from .controller import EnvyController, EnvySystem
from .costmodel import TECHNOLOGIES, EnvyCostBreakdown, system_cost
from .lifetime import LifetimeEstimate, estimate_lifetime, paper_example
from .memview import EnvyMemoryView
from .metrics import ControllerMetrics, LatencyStat
from .persistence import load_system, save_system
from .prototype import (PrototypeController, PrototypeTimings,
                        narrow_path_timings, prototype_config)
from .tracing import AccessRecord, AccessTrace, TracingController
from .recovery import (CleaningJournal, CleanPhase, CrashInjector,
                       RecoveryError, RecoveryMismatch, RecoveryReport,
                       SimulatedPowerFailure, attach_journal, recover,
                       recover_from_flash, verify_against_scan)
from .checkpoint import (CheckpointError, CheckpointManager,
                         read_latest_checkpoint)
from .chaos import (ChaosResult, KillSwitch, attach_commit_oracle,
                    chaos_sweep, recovered_page_bytes, run_chaos)

__all__ = [
    "EnvyConfig",
    "FlashParams",
    "SramParams",
    "TpcParams",
    "EnvyController",
    "EnvySystem",
    "BoundStore",
    "ControllerMetrics",
    "LatencyStat",
    "TECHNOLOGIES",
    "EnvyCostBreakdown",
    "system_cost",
    "LifetimeEstimate",
    "estimate_lifetime",
    "paper_example",
    "save_system",
    "load_system",
    "PrototypeController",
    "PrototypeTimings",
    "prototype_config",
    "narrow_path_timings",
    "CleaningJournal",
    "CleanPhase",
    "CrashInjector",
    "SimulatedPowerFailure",
    "attach_journal",
    "recover",
    "RecoveryReport",
    "RecoveryError",
    "RecoveryMismatch",
    "recover_from_flash",
    "verify_against_scan",
    "CheckpointManager",
    "CheckpointError",
    "read_latest_checkpoint",
    "ChaosResult",
    "KillSwitch",
    "run_chaos",
    "chaos_sweep",
    "attach_commit_oracle",
    "recovered_page_bytes",
    "EnvyMemoryView",
    "TracingController",
    "AccessTrace",
    "AccessRecord",
]
