"""Binds the placement store to the physical Flash array.

:class:`~repro.cleaning.store.SegmentStore` is the single source of truth
for *where* every logical page lives, and the cleaning policies operate
on it.  :class:`BoundStore` extends it so that every placement operation
also moves real bytes through the byte-semantics
:class:`~repro.flash.array.FlashArray` — programs go to the matching
physical segment in append order, invalidations and erases are mirrored,
and cleaning physically copies survivor data onto the spare segment
before the old one is erased.

Because both sides are append-only per segment, the store's slot index
always equals the Flash page index, so the mirror needs no extra maps.
The FlashArray enforces write-once/bulk-erase at page level, so any
placement bug (double program, erase with live data, read of an erased
page) trips a :class:`~repro.flash.errors.FlashError` instead of passing
silently — the array acts as a runtime checker for the cleaner.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cleaning.store import SegmentStore, StoreError
from ..flash.array import FlashArray
from ..flash.errors import BadBlockError

__all__ = ["BoundStore"]


class BoundStore(SegmentStore):
    """A SegmentStore whose operations carry page data through Flash."""

    def __init__(self, num_positions: int, pages_per_segment: int,
                 num_logical_pages: int, array: FlashArray,
                 observer=None, bad_blocks=None) -> None:
        if array.num_segments < num_positions + 1:
            raise ValueError(
                f"array must provide at least {num_positions + 1} "
                f"segments (positions + the spare); it has "
                f"{array.num_segments}")
        if array.pages_per_segment != pages_per_segment:
            raise ValueError("array/store pages-per-segment mismatch")
        super().__init__(num_positions, pages_per_segment,
                         num_logical_pages, observer=observer)
        self.array = array
        # Segments beyond positions + 1 spare are the bad-block reserve
        # pool; they sit outside the rotation until a retirement swaps
        # one in (see erase_phys).
        self.phys_erase_counts = [0] * array.num_segments
        self.reserve_phys = list(range(num_positions + 1,
                                       array.num_segments))
        #: Battery-backed :class:`~repro.faults.badblocks.BadBlockTable`
        #: recording retirements; None disables retirement (a permanent
        #: erase failure then propagates to the caller).
        self.bad_blocks = bad_blocks
        if bad_blocks is not None:
            bad_blocks.provision(self.reserve_phys)
        #: Data for pages detached by pop_live, awaiting re-programming.
        self._pending_data: Dict[int, Optional[bytes]] = {}
        #: Callbacks invoked with (position, physical_segment) just
        #: before a segment's contents are destroyed by erase.  The
        #: transaction extension (Section 6) uses this to rescue shadow
        #: copies that are still needed for rollback.
        self.pre_erase_hooks: List = []
        #: Optional battery-backed cleaning journal (Section 3.4); when
        #: set, clean() records its phases so a power failure at any
        #: Flash operation is recoverable (see repro.core.recovery).
        self.journal = None

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read_page_data(self, logical_page: int) -> Optional[bytes]:
        """Bytes of a Flash-resident logical page (None = never written)."""
        loc = self.page_location[logical_page]
        if loc is None or loc == (-1, -1):
            raise StoreError(
                f"page {logical_page} is not resident in Flash")
        position, slot = loc
        phys = self.positions[position].phys
        return self.array.read_page(phys, slot)

    # ------------------------------------------------------------------
    # Mirrored operations
    # ------------------------------------------------------------------

    def stage_data(self, logical_page: int, data: Optional[bytes]) -> None:
        """Provide the payload for the next program of ``logical_page``.

        The controller stages buffer contents here before asking the
        cleaning policy to place the flush; whichever position the
        policy appends to receives these bytes.
        """
        self._pending_data[logical_page] = data

    def append(self, pos_index: int, logical_page: int,
               count_as_flush: bool = True,
               data: Optional[bytes] = None) -> None:
        if data is None:
            data = self._pending_data.get(logical_page)
        phys = self.positions[pos_index].phys
        self.array.program_page(phys, data)
        # Consume the staged bytes only after the program committed, so
        # a power failure mid-program still finds them for recovery.
        self._pending_data.pop(logical_page, None)
        super().append(pos_index, logical_page, count_as_flush)

    def _kill(self, loc) -> None:
        position, slot = loc
        phys = self.positions[position].phys
        self.array.invalidate_page(phys, slot)
        super()._kill(loc)

    def pop_live(self, pos_index: int, from_end: bool) -> Optional[int]:
        pos = self.positions[pos_index]
        if pos.live_count == 0:
            return None
        # Find the victim the same way the parent will, to read its data
        # before the location is cleared.
        indices = (range(len(pos.slots) - 1, -1, -1) if from_end
                   else range(len(pos.slots)))
        for slot in indices:
            page = pos.slots[slot]
            if self.page_location[page] == (pos_index, slot):
                self._pending_data[page] = self.array.read_page(pos.phys,
                                                                slot)
                self.array.invalidate_page(pos.phys, slot)
                break
        return super().pop_live(pos_index, from_end)

    def receive(self, pos_index: int, logical_page: int,
                demote: bool = False) -> None:
        data = self._pending_data.get(logical_page)
        phys = self.positions[pos_index].phys
        self.array.program_page(phys, data)
        self._pending_data.pop(logical_page, None)
        super().receive(pos_index, logical_page, demote)

    def clean(self, pos_index: int,
              prepend: Optional[List[int]] = None) -> int:
        """Physically copy survivors to the spare, then mirror the store.

        The program order must match the order the parent class will
        record: prepended pages first, then demoted survivors, then the
        remaining survivors in slot order.  Choosing the order *while*
        programming the fresh segment is exactly what real cleaning
        hardware does; the data just has to be read out before the old
        copies are invalidated.
        """
        pos = self.positions[pos_index]
        old_phys = pos.phys
        new_phys = self.spare_phys
        if not self.array.segment(new_phys).is_erased:
            raise StoreError(f"spare segment {new_phys} is not erased")
        if self.journal is not None:
            # Section 3.4: the clean's phase is journalled in persistent
            # memory.  Until commit, the old segment and the page table
            # are untouched (shadow paging), so a crash during the copy
            # only wastes the spare.
            self.journal.begin(pos_index, old_phys, new_phys)
        survivor_pairs = [(slot, page) for slot, page in enumerate(pos.slots)
                          if self.page_location[page] == (pos_index, slot)]
        ordered = [page for _, page in survivor_pairs]
        if pos.demoted:
            demoted = [p for p in ordered if p in pos.demoted]
            if demoted:
                ordered = demoted + [p for p in ordered
                                     if p not in pos.demoted]
        data_by_page = {page: self.array.read_page(old_phys, slot)
                        for slot, page in survivor_pairs}
        for page in (prepend or ()):
            self.array.program_page(new_phys,
                                    self._pending_data.get(page))
            self._pending_data.pop(page, None)
        for page in ordered:
            self.array.program_page(new_phys, data_by_page[page])
        for slot, _ in survivor_pairs:
            self.array.invalidate_page(old_phys, slot)
        copies = super().clean(pos_index, prepend)
        if self.journal is not None:
            # The remap is now the truth; only the bulk erase remains.
            self.journal.commit()
        for hook in self.pre_erase_hooks:
            hook(pos_index, old_phys)
        self.erase_phys(old_phys)
        if self.journal is not None:
            self.journal.clear()
        return copies

    # ------------------------------------------------------------------
    # Bad-block retirement
    # ------------------------------------------------------------------

    def erase_phys(self, phys: int) -> int:
        """Erase ``phys``, retiring it if the erase fails permanently.

        Every caller erases the segment that is (or is about to become)
        the spare, so retirement never moves data: the failing segment
        drops out of the rotation and a reserve segment — factory-erased,
        so immediately usable — takes its place as the spare.  Returns
        the physical id that ended up as the erased spare.

        Raises :class:`~repro.cleaning.store.StoreError` when the
        reserve pool is exhausted (capacity can no longer be maintained)
        and re-raises :class:`~repro.flash.errors.BadBlockError` when no
        bad-block table was provided.
        """
        try:
            self.array.erase_segment(phys)
            return phys
        except BadBlockError as exc:
            if self.bad_blocks is None:
                raise
            replacement = self.bad_blocks.retire(phys, exc.reason)
            if replacement is None:
                raise StoreError(
                    f"segment {phys} failed ({exc.reason}) and the "
                    f"reserve pool is exhausted") from exc
            self.retired_phys.add(phys)
            self.reserve_phys.remove(replacement)
            if self.spare_phys == phys:
                self.spare_phys = replacement
            self.array.fault_stats.bad_blocks_retired += 1
            self.array.emit_fault("bad_block_retired", phys,
                                  f"replacement={replacement}")
            return replacement

    def verify_against_array(self) -> None:
        """Cross-check placement bookkeeping against the Flash array.

        Used by the integration tests: every live store slot must be a
        VALID page in the matching physical segment, and write pointers
        must agree.
        """
        from ..flash.segment import PageState

        for pos in self.positions:
            segment = self.array.segment(pos.phys)
            if segment.write_pointer != len(pos.slots):
                raise StoreError(
                    f"position {pos.index}: write pointer drift "
                    f"({segment.write_pointer} != {len(pos.slots)})")
            if segment.live_count != pos.live_count:
                raise StoreError(
                    f"position {pos.index}: live-count drift "
                    f"({segment.live_count} != {pos.live_count})")
            for slot, page in enumerate(pos.slots):
                live = self.page_location[page] == (pos.index, slot)
                state = segment.states[slot]
                expected = PageState.VALID if live else PageState.INVALID
                if state is not expected:
                    raise StoreError(
                        f"position {pos.index} slot {slot}: store says "
                        f"{'live' if live else 'dead'}, array says "
                        f"{state.name}")
        spare = self.array.segment(self.spare_phys)
        if not spare.is_erased:
            raise StoreError("spare segment is not erased")
