"""Binds the placement store to the physical Flash array.

:class:`~repro.cleaning.store.SegmentStore` is the single source of truth
for *where* every logical page lives, and the cleaning policies operate
on it.  :class:`BoundStore` extends it so that every placement operation
also moves real bytes through the byte-semantics
:class:`~repro.flash.array.FlashArray` — programs go to the matching
physical segment in append order, invalidations and erases are mirrored,
and cleaning physically copies survivor data onto the spare segment
before the old one is erased.

Because both sides are append-only per segment, the store's slot index
always equals the Flash page index, so the mirror needs no extra maps.
The FlashArray enforces write-once/bulk-erase at page level, so any
placement bug (double program, erase with live data, read of an erased
page) trips a :class:`~repro.flash.errors.FlashError` instead of passing
silently — the array acts as a runtime checker for the cleaner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cleaning.store import IN_BUFFER, SegmentStore, StoreError
from ..flash.array import FlashArray
from ..flash.errors import BadBlockError
from ..flash.oob import DATA, OobRecord, pack_oob, payload_crc

__all__ = ["BoundStore"]


class BoundStore(SegmentStore):
    """A SegmentStore whose operations carry page data through Flash.

    Every program is additionally stamped with an out-of-band record
    (:mod:`repro.flash.oob`): host flushes get a fresh *epoch* from
    ``epoch_source``, cleaner copies and transfers re-stamp the page's
    existing epoch (the copy is the same version), and every program —
    whoever issued it — consumes one global sequence number.  Together
    these make the array reconstructible by scan alone.
    """

    def __init__(self, num_positions: int, pages_per_segment: int,
                 num_logical_pages: int, array: FlashArray,
                 observer=None, bad_blocks=None,
                 checkpoint_segments: int = 0,
                 epoch_source: Optional[Callable[[], int]] = None) -> None:
        if checkpoint_segments < 0:
            raise ValueError("checkpoint_segments cannot be negative")
        if array.num_segments < num_positions + 1 + checkpoint_segments:
            raise ValueError(
                f"array must provide at least "
                f"{num_positions + 1 + checkpoint_segments} segments "
                f"(positions + the spare + checkpoint segments); it has "
                f"{array.num_segments}")
        if array.pages_per_segment != pages_per_segment:
            raise ValueError("array/store pages-per-segment mismatch")
        super().__init__(num_positions, pages_per_segment,
                         num_logical_pages, observer=observer)
        self.array = array
        # The highest-numbered segments are dedicated to page-table
        # checkpoints; segments between positions + 1 spare and the
        # checkpoint region are the bad-block reserve pool.  Both sit
        # outside the cleaning rotation (see erase_phys).
        self.phys_erase_counts = [0] * array.num_segments
        self.metadata_phys = set(
            range(array.num_segments - checkpoint_segments,
                  array.num_segments))
        self.reserve_phys = list(range(
            num_positions + 1,
            array.num_segments - checkpoint_segments))
        #: Where host flushes get their epochs; None falls back to a
        #: private counter so a standalone store still stamps correctly.
        self.epoch_source = epoch_source
        self._epoch_counter = 1
        #: Write epoch of each logical page's current flash copy.
        self.page_epochs: List[int] = [0] * num_logical_pages
        #: Global program sequence counter (every OOB stamp takes one).
        self.seq_counter = 0
        #: Stamping switch; on by default (stamps are free in the timing
        #: model — the OOB shares the program cycle).
        self.stamp_oob = True
        #: Optional callback ``(logical_page, position, slot, epoch)``
        #: fired after a host flush lands in flash; the controller uses
        #: it to mirror epochs into the SRAM page table.
        self.program_listener = None
        #: Crash-consistent mode: keep the last *flushed* copy of a
        #: buffered page alive in flash until its successor flushes.
        #: Without this, cleaning a segment can destroy the only durable
        #: version of a page whose newer contents sit in SRAM — fatal
        #: under full SRAM loss, invisible under the paper's
        #: battery-backed model.  Off by default so the paper-faithful
        #: configurations behave (and time) exactly as before.
        self.preserve_flushed_copies = False
        #: logical page -> (position, slot) of its last flushed copy,
        #: tracked only while the page is buffered (SRAM-resident).
        self.flush_shadows: Dict[int, Tuple[int, int]] = {}
        #: Dead-copy preservation programs performed by clean().
        self.rescue_count = 0
        #: Battery-backed :class:`~repro.faults.badblocks.BadBlockTable`
        #: recording retirements; None disables retirement (a permanent
        #: erase failure then propagates to the caller).
        self.bad_blocks = bad_blocks
        if bad_blocks is not None:
            bad_blocks.provision(self.reserve_phys)
        #: Data for pages detached by pop_live, awaiting re-programming.
        self._pending_data: Dict[int, Optional[bytes]] = {}
        #: Callbacks invoked with (position, physical_segment) just
        #: before a segment's contents are destroyed by erase.  The
        #: transaction extension (Section 6) uses this to rescue shadow
        #: copies that are still needed for rollback.
        self.pre_erase_hooks: List = []
        #: Optional battery-backed cleaning journal (Section 3.4); when
        #: set, clean() records its phases so a power failure at any
        #: Flash operation is recoverable (see repro.core.recovery).
        self.journal = None

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read_page_data(self, logical_page: int) -> Optional[bytes]:
        """Bytes of a Flash-resident logical page (None = never written)."""
        loc = self.page_location[logical_page]
        if loc is None or loc == (-1, -1):
            raise StoreError(
                f"page {logical_page} is not resident in Flash")
        position, slot = loc
        phys = self.positions[position].phys
        return self.array.read_page(phys, slot)

    # ------------------------------------------------------------------
    # OOB stamping
    # ------------------------------------------------------------------

    def _new_epoch(self) -> int:
        if self.epoch_source is not None:
            return self.epoch_source()
        epoch = self._epoch_counter
        self._epoch_counter += 1
        return epoch

    def _data_oob(self, logical_page: int, pos_index: int,
                  data: Optional[bytes], epoch: int) -> Optional[bytes]:
        """Build the spare-area stamp for one data program."""
        if not self.stamp_oob:
            return None
        seq = self.seq_counter
        self.seq_counter += 1
        return pack_oob(OobRecord(DATA, logical_page, epoch, seq,
                                  pos_index, payload_crc(data)))

    # ------------------------------------------------------------------
    # Mirrored operations
    # ------------------------------------------------------------------

    def stage_data(self, logical_page: int, data: Optional[bytes]) -> None:
        """Provide the payload for the next program of ``logical_page``.

        The controller stages buffer contents here before asking the
        cleaning policy to place the flush; whichever position the
        policy appends to receives these bytes.
        """
        self._pending_data[logical_page] = data

    def append(self, pos_index: int, logical_page: int,
               count_as_flush: bool = True,
               data: Optional[bytes] = None) -> None:
        if data is None:
            data = self._pending_data.get(logical_page)
        phys = self.positions[pos_index].phys
        epoch = self._new_epoch() if self.stamp_oob else 0
        self.array.program_page(
            phys, data,
            oob=self._data_oob(logical_page, pos_index, data, epoch))
        # Consume the staged bytes only after the program committed, so
        # a power failure mid-program still finds them for recovery.
        self._pending_data.pop(logical_page, None)
        super().append(pos_index, logical_page, count_as_flush)
        self.flush_shadows.pop(logical_page, None)
        if self.stamp_oob:
            self.page_epochs[logical_page] = epoch
            if self.program_listener is not None:
                slot = len(self.positions[pos_index].slots) - 1
                self.program_listener(logical_page, pos_index, slot, epoch)

    def _kill(self, loc) -> None:
        position, slot = loc
        phys = self.positions[position].phys
        self.array.invalidate_page(phys, slot)
        super()._kill(loc)

    def buffer_page(self, logical_page: int):
        if self.preserve_flushed_copies:
            loc = self.page_location[logical_page]
            if loc is not None and loc != IN_BUFFER:
                # The flash copy being superseded is the page's newest
                # durable version; remember it so clean() keeps it alive
                # until the buffered successor flushes.
                self.flush_shadows[logical_page] = loc
        return super().buffer_page(logical_page)

    def pop_live(self, pos_index: int, from_end: bool) -> Optional[int]:
        pos = self.positions[pos_index]
        if pos.live_count == 0:
            return None
        # Find the victim the same way the parent will, to read its data
        # before the location is cleared.
        indices = (range(len(pos.slots) - 1, -1, -1) if from_end
                   else range(len(pos.slots)))
        for slot in indices:
            page = pos.slots[slot]
            if self.page_location[page] == (pos_index, slot):
                self._pending_data[page] = self.array.read_page(pos.phys,
                                                                slot)
                self.array.invalidate_page(pos.phys, slot)
                break
        return super().pop_live(pos_index, from_end)

    def receive(self, pos_index: int, logical_page: int,
                demote: bool = False) -> None:
        data = self._pending_data.get(logical_page)
        phys = self.positions[pos_index].phys
        # A transfer is a copy, not a new version: same epoch, new seq.
        self.array.program_page(
            phys, data,
            oob=self._data_oob(logical_page, pos_index, data,
                               self.page_epochs[logical_page]))
        self._pending_data.pop(logical_page, None)
        super().receive(pos_index, logical_page, demote)

    def clean(self, pos_index: int,
              prepend: Optional[List[int]] = None) -> int:
        """Physically copy survivors to the spare, then mirror the store.

        The program order must match the order the parent class will
        record: prepended pages first, then demoted survivors, then the
        remaining survivors in slot order.  Choosing the order *while*
        programming the fresh segment is exactly what real cleaning
        hardware does; the data just has to be read out before the old
        copies are invalidated.
        """
        pos = self.positions[pos_index]
        old_phys = pos.phys
        new_phys = self.spare_phys
        if not self.array.segment(new_phys).is_erased:
            raise StoreError(f"spare segment {new_phys} is not erased")
        if self.journal is not None:
            # Section 3.4: the clean's phase is journalled in persistent
            # memory.  Until commit, the old segment and the page table
            # are untouched (shadow paging), so a crash during the copy
            # only wastes the spare.
            self.journal.begin(pos_index, old_phys, new_phys)
        survivor_pairs = [(slot, page) for slot, page in enumerate(pos.slots)
                          if self.page_location[page] == (pos_index, slot)]
        ordered = [page for _, page in survivor_pairs]
        if pos.demoted:
            demoted = [p for p in ordered if p in pos.demoted]
            if demoted:
                ordered = demoted + [p for p in ordered
                                     if p not in pos.demoted]
        data_by_page = {page: self.array.read_page(old_phys, slot)
                        for slot, page in survivor_pairs}
        # Cleaner copies preserve each page's epoch: the shadow copy is
        # the same version, so if the clean never commits (power loss
        # before the old segment is invalidated) recovery's tie-break —
        # equal epoch, lowest seq wins — resolves to the originals and
        # the uncommitted clean simply never happened.
        for page in (prepend or ()):
            pdata = self._pending_data.get(page)
            self.array.program_page(
                new_phys, pdata,
                oob=self._data_oob(page, pos_index, pdata,
                                   self.page_epochs[page]))
            self._pending_data.pop(page, None)
        for page in ordered:
            self.array.program_page(
                new_phys, data_by_page[page],
                oob=self._data_oob(page, pos_index, data_by_page[page],
                                   self.page_epochs[page]))
        # Crash-consistent mode: dead slots holding the newest *flushed*
        # copy of a currently-buffered page are copied too — dead in the
        # bookkeeping, but the only durable version of their page.  They
        # ride at the tail of the fresh segment, immediately marked
        # superseded, and win the recovery scan only if the buffered
        # successor never makes it to flash.
        rescues = []
        if self.preserve_flushed_copies and self.flush_shadows:
            for slot, page in enumerate(pos.slots):
                if self.flush_shadows.get(page) == (pos_index, slot):
                    rescues.append((page, self.array.read_page(old_phys,
                                                               slot)))
            total = len(prepend or ()) + len(ordered) + len(rescues)
            if total > pos.capacity:
                raise StoreError(
                    f"position {pos_index} cannot preserve {len(rescues)} "
                    f"flushed copies: segment capacity exceeded")
            for page, rdata in rescues:
                self.array.program_page(
                    new_phys, rdata,
                    oob=self._data_oob(page, pos_index, rdata,
                                       self.page_epochs[page]))
                tail = self.array.segment(new_phys).write_pointer - 1
                self.array.invalidate_page(new_phys, tail)
            if rescues:
                self.rescue_count += len(rescues)
                if self.observer is not None:
                    self.observer("rescue", pos_index, len(rescues))
        for slot, _ in survivor_pairs:
            self.array.invalidate_page(old_phys, slot)
        copies = super().clean(pos_index, prepend)
        for page, _ in rescues:
            pos.slots.append(page)
            self.flush_shadows[page] = (pos_index, len(pos.slots) - 1)
        if self.journal is not None:
            # The remap is now the truth; only the bulk erase remains.
            self.journal.commit()
        for hook in self.pre_erase_hooks:
            hook(pos_index, old_phys)
        self.erase_phys(old_phys)
        if self.journal is not None:
            self.journal.clear()
        return copies

    # ------------------------------------------------------------------
    # Bad-block retirement
    # ------------------------------------------------------------------

    def erase_phys(self, phys: int) -> int:
        """Erase ``phys``, retiring it if the erase fails permanently.

        Every caller erases the segment that is (or is about to become)
        the spare, so retirement never moves data: the failing segment
        drops out of the rotation and a reserve segment — factory-erased,
        so immediately usable — takes its place as the spare.  Returns
        the physical id that ended up as the erased spare.

        Raises :class:`~repro.cleaning.store.StoreError` when the
        reserve pool is exhausted (capacity can no longer be maintained)
        and re-raises :class:`~repro.flash.errors.BadBlockError` when no
        bad-block table was provided.
        """
        try:
            self.array.erase_segment(phys)
            return phys
        except BadBlockError as exc:
            if self.bad_blocks is None:
                raise
            replacement = self.bad_blocks.retire(phys, exc.reason)
            if replacement is None:
                raise StoreError(
                    f"segment {phys} failed ({exc.reason}) and the "
                    f"reserve pool is exhausted") from exc
            self.retired_phys.add(phys)
            self.reserve_phys.remove(replacement)
            # Active membership changed without an erase-count tick;
            # drop the store's active/wear caches.
            self._derived_version += 1
            self._active_key = None
            self._wear_key = None
            if self.spare_phys == phys:
                self.spare_phys = replacement
            self.array.fault_stats.bad_blocks_retired += 1
            self.array.emit_fault("bad_block_retired", phys,
                                  f"replacement={replacement}")
            return replacement

    def verify_against_array(self) -> None:
        """Cross-check placement bookkeeping against the Flash array.

        Used by the integration tests: every live store slot must be a
        VALID page in the matching physical segment, and write pointers
        must agree.
        """
        from ..flash.segment import PageState

        for pos in self.positions:
            segment = self.array.segment(pos.phys)
            if segment.write_pointer != len(pos.slots):
                raise StoreError(
                    f"position {pos.index}: write pointer drift "
                    f"({segment.write_pointer} != {len(pos.slots)})")
            if segment.live_count != pos.live_count:
                raise StoreError(
                    f"position {pos.index}: live-count drift "
                    f"({segment.live_count} != {pos.live_count})")
            for slot, page in enumerate(pos.slots):
                live = self.page_location[page] == (pos.index, slot)
                state = segment.states[slot]
                expected = PageState.VALID if live else PageState.INVALID
                if state is not expected:
                    raise StoreError(
                        f"position {pos.index} slot {slot}: store says "
                        f"{'live' if live else 'dead'}, array says "
                        f"{state.name}")
        spare = self.array.segment(self.spare_phys)
        if not spare.is_erased:
            raise StoreError("spare segment is not erased")
