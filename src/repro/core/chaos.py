"""Chaos harness: cut the power at arbitrary Flash operations.

The recovery scan (:func:`repro.core.recovery.recover_from_flash`)
claims that whatever instant the power dies, the array alone
reconstructs a consistent store holding, for every logical page, its
newest *committed* copy.  This module makes that claim executable: it
runs a TPC-A workload against a controller whose Flash operations are
counted, kills the run at a chosen operation (optionally *tearing* the
in-flight program — the page is half-written with a payload that no
longer matches its stamped CRC), recovers from the surviving array, and
compares every logical page against an oracle of committed flushes.

``chaos_sweep`` drives the property test: a dry run counts the total
operations of a seeded workload, then the same workload is replayed
once per kill point.  Everything is deterministic — same seed, same
fault plan, same kill point gives byte-identical outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import EnvyConfig
from .controller import EnvyController
from .recovery import (RecoveryReport, SimulatedPowerFailure,
                       recover_from_flash)

__all__ = ["ChaosResult", "KillSwitch", "run_chaos", "chaos_sweep",
           "attach_commit_oracle", "recovered_page_bytes"]

#: Bytes written per TPC-A balance update in the replay.
_WORD = 8


@dataclass
class ChaosResult:
    """Outcome of one chaos run (workload + kill + recovery + verify)."""

    kill_at: Optional[int]
    tear: bool
    #: Flash operations counted before the run ended (the total for an
    #: uninterrupted run — use this to choose kill points).
    ops_seen: int = 0
    #: Whether the kill actually fired (False = workload outran it).
    interrupted: bool = False
    #: Pages with at least one committed flush when the power died.
    committed_pages: int = 0
    report: Optional[RecoveryReport] = None
    #: Logical pages whose recovered bytes differ from the oracle.
    mismatches: List[int] = field(default_factory=list)
    verified: bool = False
    #: ``health_report()`` of the workload controller at the cut —
    #: includes the latency-tail percentiles for the run that died.
    health: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.verified and not self.mismatches


class KillSwitch:
    """Counts Flash programs/erases and cuts the power at one of them.

    ``kill_at`` is 1-based over the operations issued after arming.  A
    plain kill raises :class:`SimulatedPowerFailure` *before* the
    operation touches the array (a clean cut between cycles); with
    ``tear=True`` a killed program first writes a corrupted payload
    under the original OOB stamp — the torn page a mid-cycle power loss
    leaves behind, detected at recovery by the payload-CRC mismatch.

    ``bus`` is an optional :class:`~repro.obs.events.EventBus`; a firing
    kill publishes a ``chaos.kill`` mark so the power cut appears on the
    exported timeline at the exact operation it interrupted.
    """

    def __init__(self, array, kill_at: Optional[int] = None,
                 tear: bool = False, bus=None) -> None:
        self.array = array
        self.kill_at = kill_at
        self.tear = tear
        self.bus = bus
        self.ops = 0
        self._program = array.program_page
        self._erase = array.erase_segment
        array.program_page = self._wrap_program
        array.erase_segment = self._wrap_erase

    def _fire(self) -> bool:
        self.ops += 1
        return self.kill_at is not None and self.ops == self.kill_at

    def _mark_kill(self, op: str) -> None:
        if self.bus is not None and self.bus.active:
            from ..obs.events import CHAOS_KILL

            self.bus.mark(CHAOS_KILL, {"op": self.ops, "kind": op,
                                       "tear": self.tear})

    def _wrap_program(self, segment, data=None, oob=None):
        if self._fire():
            if self.tear and data is not None:
                torn = bytes([data[0] ^ 0xFF]) + bytes(data[1:])
                self._program(segment, torn, oob=oob)
            self._mark_kill("program")
            raise SimulatedPowerFailure(
                f"power lost at flash op {self.ops} (program)")
        return self._program(segment, data, oob=oob)

    def _wrap_erase(self, segment):
        if self._fire():
            self._mark_kill("erase")
            raise SimulatedPowerFailure(
                f"power lost at flash op {self.ops} (erase)")
        return self._erase(segment)

    def detach(self) -> None:
        self.array.__dict__.pop("program_page", None)
        self.array.__dict__.pop("erase_segment", None)


def attach_commit_oracle(ctrl: EnvyController
                         ) -> Dict[int, Optional[bytes]]:
    """Record every committed flush's payload, keyed by logical page.

    Wraps ``store.append`` so the payload is logged only after the
    program (and the bookkeeping behind it) completed — a killed or
    torn program never commits.
    """
    store = ctrl.store
    committed: Dict[int, Optional[bytes]] = {}
    original = store.append

    def logged(pos_index, logical_page, count_as_flush=True, data=None):
        payload = data if data is not None \
            else store._pending_data.get(logical_page)
        original(pos_index, logical_page, count_as_flush, data)
        committed[logical_page] = (bytes(payload) if payload is not None
                                   else None)

    store.append = logged
    return committed


#: Backwards-compatible private aliases (pre-service-layer names).
_attach_oracle = attach_commit_oracle


def recovered_page_bytes(ctrl: EnvyController, page: int) -> bytes:
    """A page's recovered bytes, read without the fault path."""
    zeros = bytes(ctrl.config.page_bytes)
    loc = ctrl.store.page_location[page]
    if loc is None or loc == (-1, -1):
        return zeros
    position, slot = loc
    phys = ctrl.store.positions[position].phys
    data = ctrl.array.segment(phys).read_page(slot)
    return bytes(data) if data is not None else zeros


_page_bytes = recovered_page_bytes


def _replay(ctrl: EnvyController, layout,
            transactions: int, seed: int) -> None:
    """Replay a seeded TPC-A access trace against the controller."""
    # Imported here: workloads imports core.config, so a module-level
    # import would close a cycle through core/__init__.
    from ..workloads.tpca import TpcaWorkload

    workload = TpcaWorkload(layout, rate_tps=100.0, seed=seed)
    stamp = 0
    for txn in workload.transactions(transactions):
        for is_write, address in workload.accesses(txn):
            address = min(address, ctrl.size_bytes - _WORD)
            if is_write:
                stamp += 1
                ctrl.write(address,
                           stamp.to_bytes(_WORD, "little"))
            else:
                ctrl.read(address, _WORD)


def run_chaos(config: EnvyConfig, transactions: int = 20,
              kill_at: Optional[int] = None, tear: bool = False,
              seed: int = 0, policy=None,
              recover: bool = True) -> ChaosResult:
    """One chaos run: workload, optional kill, recovery, verification.

    ``kill_at=None`` runs to completion (a dry run when ``recover`` is
    False — its ``ops_seen`` is the kill-point space).  Requires a
    data-bearing controller; when checkpointing is off, the store's
    flushed-copy preservation is enabled anyway, since the committed-
    prefix guarantee depends on it once SRAM is assumed lossy.
    """
    from ..db.layout import TpcaLayout

    ctrl = EnvyController(config, policy)
    if not ctrl.store_data:
        raise ValueError("chaos runs need a data-bearing controller")
    ctrl.store.preserve_flushed_copies = True
    layout = TpcaLayout.sized_for(config.logical_bytes)
    committed = attach_commit_oracle(ctrl)
    switch = KillSwitch(ctrl.array, kill_at=kill_at, tear=tear,
                        bus=ctrl.events)
    result = ChaosResult(kill_at=kill_at, tear=tear)
    try:
        _replay(ctrl, layout, transactions, seed)
        ctrl.drain()
    except SimulatedPowerFailure:
        result.interrupted = True
    switch.detach()
    result.ops_seen = switch.ops
    result.committed_pages = len(committed)
    result.health = ctrl.health_report()
    if not recover:
        return result
    recovered, report = recover_from_flash(ctrl.array, config,
                                           policy=policy)
    recovered.check_consistency()
    result.report = report
    zeros = bytes(config.page_bytes)
    for page in range(config.logical_pages):
        want = committed.get(page)
        if want is None:
            want = zeros
        if recovered_page_bytes(recovered, page) != want:
            result.mismatches.append(page)
    result.verified = True
    return result


def chaos_sweep(config: EnvyConfig, transactions: int = 20,
                stride: int = 1, tear: bool = False, seed: int = 0,
                policy=None) -> List[ChaosResult]:
    """Kill the same seeded run at every ``stride``-th Flash operation.

    Returns one :class:`ChaosResult` per kill point (all of which
    should satisfy ``result.ok``); the dry run that sized the sweep is
    not included.
    """
    dry = run_chaos(config, transactions, kill_at=None, tear=False,
                    seed=seed, policy=policy, recover=False)
    results = []
    for kill_at in range(1, dry.ops_seen + 1, max(1, stride)):
        results.append(run_chaos(config, transactions, kill_at=kill_at,
                                 tear=tear, seed=seed, policy=policy))
    return results
