"""Flash-resident page-table checkpoints (crash-consistent metadata).

The paper keeps every piece of mapping state in battery-backed SRAM and
never writes it to Flash.  That makes recovery instant while the battery
holds — and total when it does not.  This module adds the production
counterpart: a periodic *checkpoint* of the controller's SRAM metadata,
written to dedicated metadata segments through the normal program path,
so that :func:`repro.core.recovery.recover_from_flash` can rebuild the
system from Flash alone and only roll forward the small tail of
programs issued after the last checkpoint.

Contents and format
-------------------

A checkpoint is a zlib-compressed pickle of a plain dict capturing

* the write-epoch and program-sequence counters,
* per-physical-segment slot records ``(kind, page, epoch, seq,
  position)`` — exactly the information stamped in each page's OOB
  region, cached so recovery does not have to re-read pages programmed
  before the checkpoint,
* each segment's erase count and write pointer at capture time (the
  roll-forward bounds: a segment whose erase count changed is rescanned
  in full, otherwise only slots past the recorded write pointer are
  read),
* the cleaning-position statistics, policy registers, wear-leveler
  state and store counters, which a bare scan could not reconstruct.

The blob is chunked into pages and programmed into one metadata segment;
each chunk's OOB carries ``kind=CHECKPOINT``, the chunk index as its
logical page, the checkpoint id as its epoch, the total chunk count in
the position field, the chunk's true byte length in ``aux``, and a CRC
of the (padded) chunk payload.  A checkpoint is usable only if *every*
chunk of its id is present and CRC-clean, so a torn checkpoint is
simply ignored in favour of the previous one.

Ping-pong placement
-------------------

With ``checkpoint_segments >= 2`` metadata segments, a new checkpoint is
always programmed into an erased segment *before* the stale one is
erased.  A power failure at any point therefore leaves at least one
complete checkpoint intact — the write is atomic at the granularity of
"latest complete id wins".
"""

from __future__ import annotations

import pickle
import zlib
from typing import Dict, Optional, Tuple

from ..flash.array import FlashArray
from ..flash.errors import FlashError
from ..flash.oob import CHECKPOINT, OobRecord, pack_oob, payload_crc, unpack_oob

__all__ = ["CheckpointManager", "CheckpointError", "read_latest_checkpoint"]


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be captured or placed."""


def _capture_positions(store) -> list:
    from .persistence import _position_state

    return [_position_state(p) for p in store.positions]


def _capture_policy(policy) -> dict:
    from .persistence import _policy_state

    return _policy_state(policy)


class CheckpointManager:
    """Writes periodic metadata checkpoints through the program path."""

    def __init__(self, controller) -> None:
        self.controller = controller
        self.segments = sorted(controller.store.metadata_phys)
        if len(self.segments) < 2:
            raise CheckpointError(
                "checkpointing needs at least two metadata segments")
        #: Id of the newest complete checkpoint (0 = none yet).
        self.checkpoint_id = 0
        #: Metadata segment holding the newest complete checkpoint.
        self.holder: Optional[int] = None
        self.enabled = True
        #: Why checkpointing shut itself off (None while healthy).
        self.failure_reason: Optional[str] = None
        self.checkpoints_written = 0
        self.last_write_ns = 0
        self.last_chunk_count = 0
        self.total_ns = 0

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def capture(self) -> dict:
        """Snapshot the SRAM metadata as a plain, pickle-friendly dict.

        The slot records are parsed from the array's stored OOB images —
        information the controller equivalently holds in SRAM, so the
        capture itself is a memory dump and costs no Flash reads.
        """
        ctrl = self.controller
        store = ctrl.store
        segments = []
        for seg in ctrl.array.segments:
            records = []
            for slot in range(seg.write_pointer):
                rec = unpack_oob(seg.oob[slot])
                records.append(None if rec is None else
                               (rec.kind, rec.logical_page, rec.epoch,
                                rec.seq, rec.position))
            segments.append({
                "erase_count": seg.erase_count,
                "write_pointer": seg.write_pointer,
                "slots": records,
            })
        return {
            "checkpoint_id": self.checkpoint_id + 1,
            "write_epoch": ctrl.page_table.write_epoch,
            "seq_counter": store.seq_counter,
            "segments": segments,
            "spare_phys": store.spare_phys,
            "retired_phys": sorted(store.retired_phys),
            "reserve_phys": list(store.reserve_phys),
            "metadata_phys": sorted(store.metadata_phys),
            "phys_erase_counts": list(store.phys_erase_counts),
            "counters": {
                "flush_count": store.flush_count,
                "clean_copy_count": store.clean_copy_count,
                "transfer_count": store.transfer_count,
                "erase_count": store.erase_count,
                "host_write_count": store.host_write_count,
                "rescue_count": store.rescue_count,
            },
            "positions": _capture_positions(store),
            "policy": _capture_policy(ctrl.policy),
            "leveler": {
                "swap_count": ctrl.leveler.swap_count,
                "last_swap": ctrl.leveler._last_swap_erase_count,
            },
        }

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _disable(self, reason: str) -> None:
        self.enabled = False
        self.failure_reason = reason
        self.controller.array.emit_fault("checkpoint_disabled", -1, reason)
        bus = self.controller.events
        if bus.active:
            from ..obs.events import CHECKPOINT_DISABLED

            bus.mark(CHECKPOINT_DISABLED, {"reason": reason})

    def _erase_metadata(self, phys: int) -> int:
        """Erase a metadata segment (its chunks are always disposable)."""
        from ..flash.segment import PageState

        array = self.controller.array
        seg = array.segment(phys)
        for slot in range(seg.write_pointer):
            if seg.states[slot] is PageState.VALID:
                seg.invalidate_page(slot)
        return array.erase_segment(phys)

    def _pick_target(self) -> Optional[Tuple[int, int]]:
        """An erased metadata segment to write into; returns
        ``(phys, erase_ns)`` where erase_ns is time spent making room."""
        array = self.controller.array
        for phys in self.segments:
            if phys == self.holder:
                continue
            seg = array.segment(phys)
            if seg.is_bad:
                continue
            if seg.is_erased:
                return phys, 0
        # No erased segment free (e.g. a torn checkpoint left a partial
        # one behind): reclaim the first healthy non-holder.
        for phys in self.segments:
            if phys == self.holder or array.segment(phys).is_bad:
                continue
            try:
                return phys, self._erase_metadata(phys)
            except FlashError as exc:
                self._disable(f"metadata segment {phys} failed: {exc}")
                return None
        self._disable("no healthy metadata segment available")
        return None

    def write_checkpoint(self) -> int:
        """Capture and program one checkpoint; returns nanoseconds spent.

        On any failure (oversized state, exhausted program retries, bad
        metadata block) checkpointing disables itself and records the
        reason — the system keeps running, recovery just falls back to a
        full scan.
        """
        if not self.enabled:
            return 0
        ctrl = self.controller
        array = ctrl.array
        page_bytes = array.page_bytes
        state = self.capture()
        blob = zlib.compress(
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        chunk_count = max(1, -(-len(blob) // page_bytes))
        if chunk_count > array.pages_per_segment:
            self._disable(
                f"checkpoint needs {chunk_count} pages but a metadata "
                f"segment holds {array.pages_per_segment}")
            return 0
        picked = self._pick_target()
        if picked is None:
            return 0
        target, ns = picked
        cid = state["checkpoint_id"]
        try:
            for index in range(chunk_count):
                chunk = blob[index * page_bytes:(index + 1) * page_bytes]
                data = chunk.ljust(page_bytes, b"\0")
                oob = pack_oob(OobRecord(CHECKPOINT, index, cid, index,
                                         chunk_count, payload_crc(data),
                                         len(chunk)))
                _, program_ns = array.program_page(target, data, oob=oob)
                ns += program_ns
        except FlashError as exc:
            self._disable(f"checkpoint program failed: {exc}")
            return ns
        stale, self.holder = self.holder, target
        self.checkpoint_id = cid
        self.checkpoints_written += 1
        self.last_chunk_count = chunk_count
        if stale is not None:
            try:
                ns += self._erase_metadata(stale)
            except FlashError as exc:
                # The new checkpoint is safe; we just lost the ping-pong
                # partner.  _pick_target will route around it next time.
                ctrl.array.emit_fault("checkpoint_erase_failed", stale,
                                      str(exc))
        self.last_write_ns = ns
        self.total_ns += ns
        return ns


# ----------------------------------------------------------------------
# Read path (used by recovery, which has no CheckpointManager yet)
# ----------------------------------------------------------------------

def read_latest_checkpoint(array: FlashArray,
                           metadata_phys) -> Tuple[Optional[dict], int, int]:
    """Find and decode the newest complete checkpoint.

    Scans every metadata segment's OOB records, groups CHECKPOINT chunks
    by id, and — newest id first — reassembles any id whose chunks are
    all present with clean payload CRCs.  Returns ``(state, chunks_read,
    holder)``; ``(None, chunks_read, -1)`` when no complete checkpoint
    survives.  Reads go through the array's fault path, so a bit flip in
    a chunk simply demotes that checkpoint like a torn write would.
    """
    candidates: Dict[int, Dict[int, bytes]] = {}
    totals: Dict[int, int] = {}
    holders: Dict[int, int] = {}
    chunks_read = 0
    for phys in sorted(metadata_phys):
        seg = array.segment(phys)
        if seg.is_bad:
            continue
        for slot in range(seg.write_pointer):
            chunks_read += 1
            rec = unpack_oob(array.read_oob(phys, slot))
            if rec is None or not rec.is_checkpoint:
                continue
            data = array.read_page(phys, slot)
            if data is None or payload_crc(data) != rec.payload_crc:
                continue
            cid = rec.epoch
            totals[cid] = rec.position
            holders[cid] = phys
            chunk = bytes(data[:rec.aux])
            candidates.setdefault(cid, {})[rec.logical_page] = chunk
    for cid in sorted(candidates, reverse=True):
        total = totals[cid]
        chunks = candidates[cid]
        if len(chunks) != total or set(chunks) != set(range(total)):
            continue
        blob = b"".join(chunks[i] for i in range(total))
        try:
            state = pickle.loads(zlib.decompress(blob))
        except Exception:
            continue
        if state.get("checkpoint_id") != cid:
            continue
        return state, chunks_read, holders[cid]
    return None, chunks_read, -1
