"""Configuration objects for the eNVy storage system.

The defaults mirror Figure 12 of the paper ("eNVy Simulation Parameters"):
a 2 gigabyte Flash array built from 2048 one-megabyte chips organised as
8 banks of 256 byte-wide chips, a 16 megabyte battery-backed SRAM write
buffer, 256-byte pages, and the timing constants of 1994-era parts.

Because a full-scale (2 GB) software model is slow to simulate in Python,
:meth:`EnvyConfig.scaled` produces smaller configurations that preserve the
*ratios* the paper's results depend on: flash utilization, the number of
segments, pages per segment relative to erase time, and the SRAM buffer to
segment-size relationship.  Every benchmark documents the scale it ran at.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from ..faults.plan import FaultPlan

__all__ = [
    "FlashParams",
    "SramParams",
    "TpcParams",
    "EnvyConfig",
    "PAPER_FLASH",
    "PAPER_SRAM",
    "PAPER_TPC",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MS = 1_000_000  # nanoseconds per millisecond
US = 1_000  # nanoseconds per microsecond


@dataclass(frozen=True)
class FlashParams:
    """Physical parameters of the Flash array (Figure 12, left column).

    A *segment* is the smallest independently erasable unit of the array:
    one erase block from each chip of a bank (Section 3.4, Figure 4).
    """

    chip_bytes: int = 1 * MIB
    chips_per_bank: int = 256
    num_banks: int = 8
    erase_blocks_per_chip: int = 16
    read_ns: int = 100
    write_ns: int = 100
    program_ns: int = 4000
    erase_ns: int = 50 * MS
    #: Guaranteed program/erase cycles per block (Section 5.5 uses 1M parts).
    endurance_cycles: int = 1_000_000
    #: Dollars per megabyte (Figure 1).
    cost_per_mib: float = 30.0

    @property
    def array_bytes(self) -> int:
        """Total capacity of the Flash array."""
        return self.chip_bytes * self.chips_per_bank * self.num_banks

    @property
    def erase_block_bytes(self) -> int:
        """Size of one erase block inside a single chip."""
        return self.chip_bytes // self.erase_blocks_per_chip

    @property
    def segment_bytes(self) -> int:
        """One erase block across every chip of a bank (Figure 4)."""
        return self.erase_block_bytes * self.chips_per_bank

    @property
    def segments_per_bank(self) -> int:
        return self.erase_blocks_per_chip

    @property
    def num_segments(self) -> int:
        """Independently erasable segments in the whole array."""
        return self.segments_per_bank * self.num_banks

    @property
    def num_chips(self) -> int:
        return self.chips_per_bank * self.num_banks

    def validate(self) -> None:
        if self.chip_bytes % self.erase_blocks_per_chip:
            raise ValueError("chip size must be a multiple of the erase block count")
        for name in ("chip_bytes", "chips_per_bank", "num_banks",
                     "erase_blocks_per_chip", "read_ns", "program_ns",
                     "erase_ns", "endurance_cycles"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class SramParams:
    """Battery-backed SRAM parameters (Figure 12, right column)."""

    buffer_bytes: int = 16 * MIB
    read_ns: int = 100
    write_ns: int = 100
    #: Dollars per megabyte (Figure 1).
    cost_per_mib: float = 120.0

    def validate(self) -> None:
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ValueError("SRAM access times must be positive")


@dataclass(frozen=True)
class TpcParams:
    """TPC-A database geometry (Figure 12, bottom table, and Section 5.2).

    For every branch there are 10 tellers, each responsible for 10,000
    accounts.  Balance information is a 100-byte record; each index tree is
    a B-Tree with 32 entries per node.
    """

    num_accounts: int = 15_500_000
    tellers_per_branch: int = 10
    accounts_per_teller: int = 10_000
    record_bytes: int = 100
    btree_fanout: int = 32

    @property
    def accounts_per_branch(self) -> int:
        return self.tellers_per_branch * self.accounts_per_teller

    @property
    def num_branches(self) -> int:
        return max(1, self.num_accounts // self.accounts_per_branch)

    @property
    def num_tellers(self) -> int:
        return self.num_branches * self.tellers_per_branch

    def index_levels(self, num_records: int) -> int:
        """Depth of a B-tree with ``btree_fanout`` entries per node.

        The paper quotes 2 levels for 155 branches, 3 for 1,550 tellers and
        5 for 15.5 million accounts, which matches ``ceil(log_32(n))``.
        """
        if num_records <= 1:
            return 1
        levels = 1
        capacity = self.btree_fanout
        while capacity < num_records:
            capacity *= self.btree_fanout
            levels += 1
        return levels

    def scaled_to_accounts(self, num_accounts: int) -> "TpcParams":
        """Return a copy resized to ``num_accounts``.

        Keeps the branch:teller ratio (1:10) and shrinks the accounts
        per teller so the tellers still cover the whole account range —
        the structural property every TPC-A transaction depends on
        (Section 5.2: "The database can be scaled to fit any storage
        system using the ratios described above").
        """
        num_accounts = int(num_accounts)
        if num_accounts < 1:
            raise ValueError("need at least one account")
        branches = max(1, num_accounts // self.accounts_per_branch)
        tellers = branches * self.tellers_per_branch
        per_teller = -(-num_accounts // tellers)  # ceil
        return dataclasses.replace(self, num_accounts=num_accounts,
                                   accounts_per_teller=per_teller)


@dataclass(frozen=True)
class EnvyConfig:
    """Complete configuration of an eNVy storage system.

    Combines the Flash and SRAM substrates with the architectural
    parameters of Section 3: the 256-byte page size, the 6-byte page table
    entry, the bus overhead added on top of raw chip access times, and the
    cleaning policy parameters of Section 4.
    """

    flash: FlashParams = field(default_factory=FlashParams)
    sram: SramParams = field(default_factory=SramParams)
    page_bytes: int = 256
    #: Bytes of battery-backed SRAM per page-table entry (Section 3.3).
    page_table_entry_bytes: int = 6
    #: Extra latency per host access for propagation delays and control
    #: signal generation (Section 5.1: "60ns is added to each access").
    bus_overhead_ns: int = 60
    #: Fraction of the Flash array that may hold live data (Section 4.1:
    #: "we limit the percentage of live data ... to 80%").
    max_utilization: float = 0.80
    #: Write-buffer occupancy (fraction) beyond which flushing starts.
    flush_threshold: float = 0.75
    #: Segments per partition for the hybrid cleaner (Section 4.4).
    partition_segments: int = 16
    #: Cleaning policy: "greedy", "fifo", "locality" or "hybrid".
    cleaning_policy: str = "hybrid"
    #: Program/erase cycle spread that triggers a wear-leveling swap
    #: (Section 4.3: "over 100 cycles older than the youngest").
    wear_swap_cycles: int = 100
    #: Delay before resuming a suspended long operation (Section 3.4:
    #: "waits a few microseconds before resuming").
    resume_delay_ns: int = 2 * US
    # --- fault tolerance (repro.faults) -------------------------------
    #: Device-fault injection schedule; None (or an all-zero plan) runs
    #: the array fault-free with zero overhead.
    fault_plan: Optional[FaultPlan] = None
    #: Per-page SEC-DED ECC.  None means automatic: on exactly when a
    #: nonzero fault plan is active, so the fault-free path stays
    #: bit-identical in timing to a system without the ECC layer.
    ecc_enabled: Optional[bool] = None
    #: Controller time charged per Flash page read for the ECC check
    #: (syndrome computation happens in the wide datapath; 0 models it
    #: as fully overlapped, like the page-table update of Section 5.1).
    ecc_check_ns: int = 0
    #: Bounded retries for transient program / erase failures before the
    #: operation is escalated (program: raised; erase: block retired).
    program_retries: int = 3
    erase_retries: int = 3
    #: Spare segments provisioned beyond the cleaner's one erased spare,
    #: forming the bad-block reserve pool.
    reserve_segments: int = 0
    #: Raise :class:`~repro.flash.errors.EnduranceExceeded` on erases
    #: past the rated cycle count instead of recording the overshoot.
    strict_endurance: bool = False
    # --- crash consistency (repro.core.checkpoint / recovery) ---------
    #: Write a flash-resident page-table checkpoint every N buffer
    #: flushes; None disables checkpointing entirely (no metadata
    #: segments are carved out, so the fault-free timing is
    #: bit-identical to a system without the checkpoint machinery).
    checkpoint_interval_flushes: Optional[int] = None
    #: Flash segments dedicated to checkpoints when enabled (ping-pong:
    #: the newest checkpoint is written to an erased metadata segment
    #: before the stale one is erased, so a crash mid-checkpoint always
    #: leaves one complete older checkpoint intact).
    checkpoint_segments: int = 2
    # --- performance (repro.perf) -------------------------------------
    #: Stamp every program's out-of-band self-description record.  None
    #: means automatic: on when page payloads are stored or
    #: checkpointing is enabled (the configurations recovery scans run
    #: against), off for placement-only simulation where nothing ever
    #: reads the stamps.  Stamps share the program cycle, so this knob
    #: never changes timing or metrics — only whether the Python model
    #: spends time packing CRC records nobody will read.
    oob_stamping: Optional[bool] = None
    # --- storage backend (repro.backends) -----------------------------
    #: Backend spec string naming the storage substrate, e.g. "flash",
    #: "ramdisk:block_bytes=256", "file:path=/tmp/envy.img",
    #: "onfi:factory_bad=2".  None (the default) constructs the
    #: simulated Flash array directly — byte-identical to "flash" but
    #: with no registry import on the default path.
    backend: Optional[str] = None

    @property
    def effective_checkpoint_segments(self) -> int:
        """Metadata segments actually carved out of the array."""
        return (self.checkpoint_segments
                if self.checkpoint_interval_flushes is not None else 0)

    @property
    def pages_per_segment(self) -> int:
        return self.flash.segment_bytes // self.page_bytes

    @property
    def total_pages(self) -> int:
        return self.flash.array_bytes // self.page_bytes

    @property
    def logical_pages(self) -> int:
        """Number of logical pages exposed to the host (80% of the array)."""
        return int(self.total_pages * self.max_utilization)

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.page_bytes

    @property
    def buffer_pages(self) -> int:
        return self.sram.buffer_bytes // self.page_bytes

    @property
    def page_table_bytes(self) -> int:
        """SRAM needed for the page table (6 bytes per *physical* page).

        Section 3.3: "For every gigabyte of Flash, 24 MBytes of SRAM is
        required for the page table" — 6 B x 4M pages/GiB = 24 MiB.
        """
        return self.total_pages * self.page_table_entry_bytes

    @property
    def num_partitions(self) -> int:
        return max(1, self.flash.num_segments // self.partition_segments)

    def validate(self) -> None:
        self.flash.validate()
        self.sram.validate()
        if self.page_bytes <= 0 or self.flash.segment_bytes % self.page_bytes:
            raise ValueError("segment size must be a multiple of the page size")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        if not 0.0 < self.flush_threshold <= 1.0:
            raise ValueError("flush_threshold must be in (0, 1]")
        if self.partition_segments <= 0:
            raise ValueError("partition_segments must be positive")
        if self.flash.num_segments % self.partition_segments:
            raise ValueError("segments must divide evenly into partitions")
        if self.buffer_pages < 1:
            raise ValueError("write buffer must hold at least one page")
        if self.fault_plan is not None:
            self.fault_plan.validate()
        if self.ecc_check_ns < 0:
            raise ValueError("ecc_check_ns cannot be negative")
        if self.program_retries < 0 or self.erase_retries < 0:
            raise ValueError("retry budgets cannot be negative")
        if self.reserve_segments < 0:
            raise ValueError("reserve_segments cannot be negative")
        if self.reserve_segments >= self.flash.num_segments:
            raise ValueError("reserve pool cannot exceed the array")
        if self.checkpoint_interval_flushes is not None:
            if self.checkpoint_interval_flushes <= 0:
                raise ValueError(
                    "checkpoint_interval_flushes must be positive")
            if self.checkpoint_segments < 2:
                raise ValueError(
                    "checkpointing needs at least two metadata segments "
                    "(ping-pong: write the new one before erasing the old)")
            overhead = (1 + self.reserve_segments
                        + self.checkpoint_segments)
            if overhead >= self.flash.num_segments:
                raise ValueError(
                    "spare + reserve + checkpoint segments exceed the array")

    # ------------------------------------------------------------------
    # Canonical configurations
    # ------------------------------------------------------------------

    @classmethod
    def paper(cls) -> "EnvyConfig":
        """The exact configuration of Figure 12 (2 GB, 128 segments)."""
        return cls()

    @classmethod
    def small(cls, num_segments: int = 32, pages_per_segment: int = 256,
              **overrides) -> "EnvyConfig":
        """A laptop-scale configuration for tests and quick examples.

        Keeps 256-byte pages and a buffer sized to one segment, like the
        paper, but shrinks the array.  Erase time is scaled down so that
        the erase-time/segment-program-time ratio matches the paper
        (otherwise erasures would dominate a small array's time budget in
        a way the real system never experiences).
        """
        return cls.scaled(num_segments=num_segments,
                          pages_per_segment=pages_per_segment, **overrides)

    @classmethod
    def scaled(cls, num_segments: int = 32, pages_per_segment: int = 256,
               page_bytes: int = 256, chips_per_bank: int = 8,
               **overrides) -> "EnvyConfig":
        """Build a reduced configuration with paper-faithful ratios.

        ``erase_ns`` is scaled by ``pages_per_segment / 65536`` so that the
        fraction of time spent erasing per flushed page is unchanged from
        the paper-scale system.
        """
        paper = FlashParams()
        paper_pages_per_segment = paper.segment_bytes // 256
        if num_segments % 2:
            raise ValueError("num_segments must be even")
        segment_bytes = pages_per_segment * page_bytes
        erase_block_bytes = segment_bytes // chips_per_bank
        if erase_block_bytes < 1:
            raise ValueError("segment too small for the chip count")
        # Pack all segments into banks of `chips_per_bank` chips; use as
        # many banks as needed to keep erase blocks per chip reasonable.
        num_banks = max(1, min(8, num_segments // 4))
        while num_segments % num_banks:
            num_banks -= 1
        blocks_per_chip = num_segments // num_banks
        chip_bytes = erase_block_bytes * blocks_per_chip
        scale = pages_per_segment / paper_pages_per_segment
        flash = FlashParams(
            chip_bytes=chip_bytes,
            chips_per_bank=chips_per_bank,
            num_banks=num_banks,
            erase_blocks_per_chip=blocks_per_chip,
            erase_ns=max(1, int(paper.erase_ns * scale)),
        )
        sram = SramParams(buffer_bytes=segment_bytes)
        if "partition_segments" not in overrides:
            partition = min(16, num_segments)
            while num_segments % partition:
                partition -= 1
            overrides["partition_segments"] = partition
        config = cls(flash=flash, sram=sram, page_bytes=page_bytes,
                     **overrides)
        config.validate()
        return config


#: Module-level singletons for the paper's exact parameters.
PAPER_FLASH = FlashParams()
PAPER_SRAM = SramParams()
PAPER_TPC = TpcParams()
