"""The eNVy controller: a linear non-volatile memory over Flash.

This is the paper's primary contribution (Section 3): the host sees a
flat, byte-addressable, persistent address space and issues plain reads
and writes; the controller hides Flash's write-once, slow-program,
limited-endurance nature behind

* **copy-on-write** — a write to a Flash-resident page copies the page
  into battery-backed SRAM, applies the write there, and atomically
  repoints the page table (Section 3.1, Figure 3);
* **a FIFO write buffer** — repeated writes to a buffered page are plain
  SRAM updates; pages flush to Flash in the background once the buffer
  passes its threshold (Section 3.2);
* **page remapping** — a 6-byte-per-page table in battery-backed SRAM,
  fronted by an MMU translation cache (Sections 3.3, 5.1);
* **cleaning** — any of the Section 4 policies reclaims invalidated
  space segment-by-segment, keeping one segment always erased.

Every host operation returns the nanoseconds it took under the Figure 12
timing model, and all background work (flush programs, cleaner copies,
erases) is charged to the metrics' time breakdown so the Section 5.3
accounting can be reproduced.  The controller itself is synchronous —
callers that need overlap (the timed simulator of Figures 13-15) meter
out the background work against idle bus time themselves via
:meth:`background_work`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cleaning import CleaningPolicy, WearLeveler, make_policy
from ..faults import BadBlockTable, FaultInjector, secded_for
from ..flash.array import FlashArray
from ..obs.events import (CHECKPOINT_BEGIN, CHECKPOINT_COMMIT, EventBus,
                          FAULT_PREFIX, HOST_READ, HOST_WRITE, ObsEvent,
                          RETRY_ERASE, RETRY_PROGRAM, STORE_EVENT_KINDS,
                          WEAR_SWAP)
from ..sram.buffer import WriteBuffer
from ..sram.mmu import Mmu
from ..sram.pagetable import Location, PageTable
from .binding import BoundStore
from .config import EnvyConfig
from .metrics import ControllerMetrics

__all__ = ["EnvyController", "EnvySystem"]


class EnvyController:
    """Services host reads/writes and runs the Flash maintenance work."""

    def __init__(self, config: Optional[EnvyConfig] = None,
                 policy: Optional[CleaningPolicy] = None,
                 store_data: bool = True,
                 _array: Optional[FlashArray] = None,
                 _skip_format: bool = False) -> None:
        self.config = config or EnvyConfig.small()
        self.config.validate()
        cfg = self.config
        self.store_data = store_data
        if cfg.checkpoint_interval_flushes is not None and not store_data:
            raise ValueError(
                "checkpointing stores state in page payloads and needs "
                "store_data=True")
        if _array is not None:
            # Recovery path: rebuild the controller over a surviving
            # array instead of fabricating a fresh one.
            self.array = _array
        elif cfg.backend is None:
            self.array = FlashArray(
                cfg.flash, cfg.page_bytes, store_data=store_data,
                spare_segments=(1 + cfg.reserve_segments
                                + cfg.effective_checkpoint_segments))
        else:
            # Pluggable substrate (repro.backends): the spec names a
            # registered backend; the factory receives exactly the
            # geometry the direct path above passes, so backend="flash"
            # is byte-identical to backend=None.
            from ..backends import create_backend

            self.array = create_backend(
                cfg.backend, cfg, store_data=store_data,
                spare_segments=(1 + cfg.reserve_segments
                                + cfg.effective_checkpoint_segments))
        # --- fault-tolerance layer (repro.faults) ---------------------
        plan = cfg.fault_plan
        self.fault_injector = None
        if plan is not None and not plan.is_zero():
            self.fault_injector = FaultInjector(plan)
        ecc_on = (cfg.ecc_enabled if cfg.ecc_enabled is not None
                  else self.fault_injector is not None)
        self._ecc = secded_for(cfg.page_bytes) if ecc_on else None
        self._ecc_check_ns = cfg.ecc_check_ns if ecc_on else 0
        self.array.strict_endurance = cfg.strict_endurance
        # Factory bad-block marks (ONFI-style backends): physical
        # segments the medium declared unusable before the controller
        # ever saw it.  They force a bad-block table into existence.
        factory_bad = tuple(sorted(
            getattr(self.array, "factory_bad_segments", ()) or ()))
        self.bad_blocks = None
        if (self.fault_injector is not None or cfg.reserve_segments
                or factory_bad):
            self.bad_blocks = BadBlockTable()
        if (self.fault_injector is not None or self._ecc is not None
                or cfg.strict_endurance):
            self.array.attach_faults(
                injector=self.fault_injector, ecc=self._ecc,
                program_retries=cfg.program_retries,
                erase_retries=cfg.erase_retries,
                op_observer=self._on_fault_op)
        # Fault events always flow through the controller: the counters
        # and the event bus hear about every defence action regardless
        # of which layer armed the fault machinery.
        self.array.fault_listeners.append(self._on_fault_event)
        # --- observability spine (repro.obs) --------------------------
        #: Event bus every subsystem publishes to.  Dormant (one boolean
        #: check per instrumented operation) until something subscribes.
        self.events = EventBus()
        #: The attached :class:`~repro.obs.hub.ObservabilityHub`, if any
        #: (set by the hub itself); health_report folds in its views.
        self.observability = None
        self.page_table = PageTable(cfg.logical_pages,
                                    entry_bytes=cfg.page_table_entry_bytes,
                                    read_ns=cfg.sram.read_ns,
                                    write_ns=cfg.sram.write_ns)
        self.mmu = Mmu(self.page_table)
        self.buffer = WriteBuffer(cfg.buffer_pages, cfg.page_bytes,
                                  flush_threshold=cfg.flush_threshold)
        self.store = BoundStore(
            cfg.flash.num_segments, cfg.pages_per_segment,
            cfg.logical_pages, self.array,
            observer=self._on_store_event, bad_blocks=self.bad_blocks,
            checkpoint_segments=cfg.effective_checkpoint_segments,
            epoch_source=self.page_table.next_epoch)
        self.store.program_listener = self._on_flush_program
        self.store.preserve_flushed_copies = \
            cfg.checkpoint_interval_flushes is not None
        # Lazy OOB stamping: skip packing self-description records when
        # nothing will ever scan them (placement-only simulation).
        # Stamps share the program cycle, so metrics are unaffected.
        stamp = cfg.oob_stamping
        if stamp is None:
            stamp = (store_data
                     or cfg.checkpoint_interval_flushes is not None)
        self.store.stamp_oob = stamp
        self.policy = policy or make_policy(
            cfg.cleaning_policy,
            **({"partition_segments": cfg.partition_segments}
               if cfg.cleaning_policy == "hybrid" else {}))
        self.leveler = WearLeveler(cfg.wear_swap_cycles)
        self.metrics = ControllerMetrics()
        self._pending_work_ns = 0
        # Hot-path scalars: EnvyConfig derives these through property
        # chains on every access; the timed simulator calls read_timed
        # millions of times, so bind them once (the config is frozen).
        self._page_bytes = cfg.page_bytes
        self._size_bytes = cfg.logical_bytes
        self._bus_overhead_ns = cfg.bus_overhead_ns
        self._sram_read_ns = cfg.sram.read_ns
        self._sram_write_ns = cfg.sram.write_ns
        # Through the backend's cost hook, not the config constant, so
        # a backend with its own timing (ONFI bus cycles, DRAM rates)
        # is charged correctly.  For the default FlashArray this is
        # exactly cfg.flash.read_ns (degradation is attached later and
        # was never reflected in this scalar).
        self._flash_read_ns = self.array.read_time_ns()
        # --- crash-consistent metadata (repro.core.checkpoint) --------
        self.checkpointer = None
        self._flushes_since_checkpoint = 0
        #: Report of the scan that rebuilt this controller, if any.
        self.last_recovery_report = None
        if cfg.checkpoint_interval_flushes is not None:
            from .checkpoint import CheckpointManager

            self.checkpointer = CheckpointManager(self)
        #: Block devices layered over this controller's medium (the
        #: ramdisk backend registers its device here); their operation
        #: counters are folded into health_report().
        self.block_devices = []
        device = getattr(self.array, "device", None)
        if device is not None and hasattr(device, "stats"):
            self.block_devices.append(device)
        if not _skip_format:
            if factory_bad:
                self._retire_factory_bad(factory_bad)
            self._format()
        self.policy.attach(self.store)

    # ------------------------------------------------------------------
    # Initial layout
    # ------------------------------------------------------------------

    def _format(self) -> None:
        """Assign every logical page an initial physical home.

        eNVy presents a fixed-size linear memory, so all pages exist from
        the start; a fresh page holds zeroes (its Flash cells are tracked
        but carry no payload until first written).  The layout matches
        the policy's assumption: sequential for greedy/FIFO, contiguous
        striping for the locality-aware policies.
        """
        if self.policy is not None and \
                self.policy.preferred_layout == "sequential":
            self.store.populate_sequential()
        else:
            self.store.populate_contiguous()
        for page in range(self.config.logical_pages):
            position, slot = self.store.page_location[page]
            self.page_table.update(page, Location.flash(position, slot))
        # Formatting is not measured work.
        self.metrics.reset()
        self.array.fault_stats.reset()
        self._pending_work_ns = 0

    def _retire_factory_bad(self, factory_bad) -> None:
        """Fold the medium's factory bad-block marks into the layout.

        Runs before :meth:`_format`, so no data has landed yet and
        retirement is pure bookkeeping: a bad segment inside the
        reserve pool just shrinks the pool; a bad segment holding a
        position, the spare, or a metadata slot swaps a reserve segment
        into its place — the same swap a grown-bad retirement performs
        at erase time, minus the data motion (there is none yet).
        """
        from ..cleaning.store import StoreError

        store = self.store
        swapped = False
        for phys in factory_bad:
            if phys in store.reserve_phys:
                store.reserve_phys.remove(phys)
                self.bad_blocks.mark_factory(phys)
                store.retired_phys.add(phys)
                continue
            replacement = self.bad_blocks.mark_factory(
                phys, need_replacement=True)
            if replacement is None:
                raise StoreError(
                    f"factory bad segment {phys} cannot be replaced: "
                    f"the reserve pool is exhausted (need "
                    f"reserve_segments > {len(factory_bad) - 1})")
            store.reserve_phys.remove(replacement)
            store.retired_phys.add(phys)
            if store.spare_phys == phys:
                store.spare_phys = replacement
            elif phys in store.metadata_phys:
                store.metadata_phys.discard(phys)
                store.metadata_phys.add(replacement)
            else:
                for pos in store.positions:
                    if pos.phys == phys:
                        pos.phys = replacement
                        break
                else:  # pragma: no cover - geometry invariant
                    raise StoreError(
                        f"factory bad segment {phys} is not in the "
                        f"layout")
            swapped = True
        if swapped:
            store._derived_version += 1
            store._active_key = None
            store._wear_key = None

    # ------------------------------------------------------------------
    # Store event hook: charge background work to the time breakdown
    # ------------------------------------------------------------------

    def _on_flush_program(self, page: int, position: int, slot: int,
                          epoch: int) -> None:
        # The OOB stamp and the epoch note share the program cycle.
        self.page_table.note_epoch(page, epoch)

    def _on_store_event(self, event: str, position: int, amount: int) -> None:
        # Timing comes from the array so wear degradation (Section 2),
        # when enabled, makes an aged segment genuinely slower.
        phys = self.store.positions[position].phys
        if event == "program":
            ns = amount * self.array.program_time_ns(phys)
            self.metrics.charge("flush", ns)
            self.metrics.flushes += amount
        elif event in ("clean_copy", "transfer", "rescue"):
            ns = amount * self.array.program_time_ns(phys)
            self.metrics.charge("clean", ns)
            self.metrics.clean_copies += amount
        elif event == "erase":
            ns = amount * self.array.erase_time_ns(phys)
            self.metrics.charge("erase", ns)
            self.metrics.erases += amount
        else:  # pragma: no cover - future event kinds
            return
        self._pending_work_ns += ns
        bus = self.events
        if bus.active:
            bus.emit_span(STORE_EVENT_KINDS[event], ns,
                          {"position": position, "phys": phys,
                           "pages": amount})

    # ------------------------------------------------------------------
    # Fault hooks: retries cost time, fault events update the counters
    # ------------------------------------------------------------------

    def _on_fault_op(self, kind: str, segment: int, count: int) -> None:
        """Charge repeated program/erase attempts to the time model.

        Called by the array once per retried operation; a retry costs a
        full extra program or erase cycle on the affected segment.
        """
        if kind == "retry_program":
            ns = count * self.array.program_time_ns(segment)
            self.metrics.program_retries += count
            event_kind = RETRY_PROGRAM
        elif kind == "retry_erase":
            ns = count * self.array.erase_time_ns(segment)
            self.metrics.erase_retries += count
            event_kind = RETRY_ERASE
        else:  # pragma: no cover - future retry kinds
            return
        self.metrics.charge("retry", ns)
        self._pending_work_ns += ns
        bus = self.events
        if bus.active:
            bus.emit_span(event_kind, ns, {"segment": segment})

    def _on_fault_event(self, event) -> None:
        if event.kind == "ecc_corrected":
            self.metrics.ecc_corrected += 1
        elif event.kind == "ecc_uncorrectable":
            self.metrics.ecc_uncorrectable += 1
        elif event.kind == "bad_block_retired":
            self.metrics.bad_blocks_retired += 1
        bus = self.events
        if bus.active:
            bus.mark(FAULT_PREFIX + event.kind,
                     {"segment": event.segment,
                      "op_index": event.op_index,
                      "detail": event.detail})

    def health_report(self) -> dict:
        """Device-health snapshot: fault, ECC and retirement counters.

        The dict is flat and JSON-serialisable; with the same config
        (including the fault plan's seed) and workload, two runs produce
        identical reports — the injector is deterministic.
        """
        stats = self.array.fault_stats
        report = {
            "fault_injection_active": self.fault_injector is not None,
            "ecc_enabled": self._ecc is not None,
            "strict_endurance": self.config.strict_endurance,
        }
        report.update(stats.as_dict())
        report.update({
            "active_segments": len(self.store.active_phys()),
            "retired_segments": sorted(self.store.retired_phys),
            "reserves_remaining": len(self.store.reserve_phys),
            "wear_overshoot_cycles": self.array.wear_stats().overshoot_cycles,
        })
        # --- recovery / checkpoint status -----------------------------
        ckpt = self.checkpointer
        report.update({
            "checkpointing_enabled": ckpt is not None and ckpt.enabled,
            "checkpoint_failure_reason": (ckpt.failure_reason
                                          if ckpt is not None else None),
            "checkpoints_written": (ckpt.checkpoints_written
                                    if ckpt is not None else 0),
            "last_checkpoint_id": ckpt.checkpoint_id if ckpt is not None
                                  else 0,
            "checkpoint_segments": sorted(self.store.metadata_phys),
            "rescued_copies": self.store.rescue_count,
        })
        recovery = self.last_recovery_report
        report.update({
            "recovered_from_flash": recovery is not None,
            "recovery_mode": recovery.mode if recovery else None,
            "recovery_pages_reconstructed": (recovery.pages_reconstructed
                                             if recovery else 0),
            "recovery_pages_scanned": (recovery.pages_scanned
                                       if recovery else 0),
            "recovery_scan_ns": recovery.scan_ns if recovery else 0,
            "recovery_checkpoint_id": (recovery.checkpoint_id
                                       if recovery else None),
        })
        # --- latency tails (repro.obs histograms) ---------------------
        metrics = self.metrics
        report.update({
            "read_latency_p50_ns": metrics.read_latency.p50,
            "read_latency_p99_ns": metrics.read_latency.p99,
            "write_latency_p50_ns": metrics.write_latency.p50,
            "write_latency_p99_ns": metrics.write_latency.p99,
        })
        # --- storage backend (repro.backends) -------------------------
        # Guarded so the default Flash path's report is byte-identical
        # to the pre-backend era: FlashArray has no backend_name, no
        # media_report, and registers no block devices.
        backend_name = getattr(self.array, "backend_name", None)
        if backend_name is not None:
            report["backend"] = backend_name
        media = getattr(self.array, "media_report", None)
        if media is not None:
            for key, value in media().items():
                report[f"backend_{key}"] = value
        for index, device in enumerate(self.block_devices):
            for key, value in device.stats().items():
                report[f"blockdev{index}_{key}"] = value
        # Latest time-series window, flattened, when a hub is attached.
        obs = self.observability
        if obs is not None:
            window = obs.latest_window()
            if window is not None:
                for key, value in window.as_dict(
                        include_arrays=False).items():
                    report[f"window_{key}"] = value
        return report

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Bytes of linear memory presented to the host."""
        return self._size_bytes

    def _check_range(self, address: int, length: int) -> None:
        if length < 0:
            raise ValueError("length cannot be negative")
        if address < 0 or address + length > self._size_bytes:
            raise IndexError(
                f"address range [{address}, {address + length}) outside "
                f"the {self._size_bytes}-byte array")

    # ------------------------------------------------------------------
    # Host reads
    # ------------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        data, _ = self.read_timed(address, length)
        return data

    def read_timed(self, address: int, length: int) -> Tuple[bytes, int]:
        """Read ``length`` bytes; returns (data, nanoseconds).

        Accesses are accounted per page touched: each page access costs
        bus overhead + (page-table read on MMU miss) + one SRAM or Flash
        read cycle — 160 ns in the common case (Section 5.1).
        """
        if length < 0:
            raise ValueError("length cannot be negative")
        page_bytes = self._page_bytes
        if address < 0 or address + length > self._size_bytes:
            self._check_range(address, length)
        pieces = []
        total_ns = 0
        offset = address
        remaining = length
        metrics = self.metrics
        read_latency = metrics.read_latency
        translate_timed = self.mmu.translate_timed
        store_data = self.store_data
        bus = self.events
        while remaining > 0:
            page, page_offset = divmod(offset, page_bytes)
            chunk = remaining
            if chunk > page_bytes - page_offset:
                chunk = page_bytes - page_offset
            location, translate_ns = translate_timed(page)
            access_ns = self._bus_overhead_ns + translate_ns
            if location is not None and location.in_sram:
                entry = self.buffer.peek(location.slot)
                payload = entry.data if entry is not None else None
                access_ns += self._sram_read_ns
            else:
                payload = (self.store.read_page_data(page)
                           if store_data else None)
                access_ns += self._flash_read_ns + self._ecc_check_ns
            if payload is None:
                pieces.append(bytes(chunk))
            else:
                pieces.append(bytes(payload[page_offset:page_offset + chunk]))
            metrics.reads += 1
            read_latency.record(access_ns)
            metrics.charge("read", access_ns)
            if bus.active:
                bus.emit_span(HOST_READ, access_ns, {"page": page})
            total_ns += access_ns
            offset += chunk
            remaining -= chunk
        return b"".join(pieces), total_ns

    # ------------------------------------------------------------------
    # Host writes
    # ------------------------------------------------------------------

    def write(self, address: int, data: bytes) -> int:
        """Write ``data`` at ``address``; returns nanoseconds taken.

        A write to a buffered page is a plain SRAM update (~160 ns).  A
        write to a Flash-resident page triggers the copy-on-write of
        Figure 3: the page is copied to SRAM in one wide cycle while the
        page table is updated in parallel, then the write lands in SRAM.
        If the buffer is full the host stalls while a page is flushed —
        the latency cliff of Figure 15.
        """
        self._check_range(address, len(data))
        page_bytes = self._page_bytes
        total_ns = 0
        offset = address
        view = memoryview(bytes(data))
        consumed = 0
        bus = self.events
        while consumed < len(data):
            page, page_offset = divmod(offset, page_bytes)
            chunk = min(len(data) - consumed, page_bytes - page_offset)
            start_ns = bus.clock_ns
            access_ns = self._write_page(page, page_offset,
                                         view[consumed:consumed + chunk])
            self.metrics.writes += 1
            self.metrics.write_latency.record(access_ns)
            if bus.active:
                # A stalled write already advanced the clock through the
                # flush/clean/erase spans it waited on; the host span
                # starts at the access start and covers them.
                bus.emit(ObsEvent(HOST_WRITE, start_ns, access_ns,
                                  {"page": page}))
                bus.clock_ns = start_ns + access_ns
            total_ns += access_ns
            offset += chunk
            consumed += chunk
        return total_ns

    def _write_page(self, page: int, page_offset: int, chunk) -> int:
        location, translate_ns = self.mmu.translate_timed(page)
        access_ns = self._bus_overhead_ns + translate_ns
        if location is not None and location.in_sram:
            entry = self.buffer.peek(location.slot)
            if entry is not None and entry.data is not None:
                entry.data[page_offset:page_offset + len(chunk)] = chunk
            self.metrics.buffer_hits += 1
            access_ns += self._sram_write_ns
            self.metrics.charge("host-write", access_ns)
            return access_ns
        # Copy-on-write path.  A full buffer stalls the host while the
        # controller flushes (and possibly cleans) — that work happens
        # "now" from the host's point of view.  The stall time is
        # already charged to the flush/clean/erase buckets by the store
        # observer, so only the access itself lands in host-write below.
        stall_ns = 0
        if self.buffer.is_full:
            stall_ns = self.flush_one()
            access_ns += stall_ns
        page_data = None
        if self.store_data:
            old_data = self.store.read_page_data(page)
            page_data = (bytearray(old_data) if old_data is not None
                         else bytearray(self._page_bytes))
            page_data[page_offset:page_offset + len(chunk)] = chunk
        origin = self.store.buffer_page(page)
        entry = self.buffer.insert(page, page_data, origin)
        self.mmu.update(page, Location.sram(page))
        self.metrics.copy_on_writes += 1
        # One wide Flash read to copy the page + the SRAM write; the
        # page-table update happens in parallel with the transfer
        # (Section 5.1) and adds nothing.
        access_ns += self._flash_read_ns + self._sram_write_ns
        self.metrics.charge("host-write", access_ns - stall_ns)
        return access_ns

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------

    def flush_one(self) -> int:
        """Flush the buffer tail through the cleaning policy.

        Returns the nanoseconds of Flash work performed (program plus any
        cleaning and erasing it triggered).
        """
        entry = self.buffer.pop_tail()
        before = self._pending_work_ns
        page = entry.logical_page
        journal = self.store.journal
        if journal is not None:
            # The page leaves the FIFO now but is not durable until the
            # program commits; journal it for power-failure recovery.
            journal.note_flush(page, entry.origin)
        if self.store_data and entry.data is not None:
            self.store.stage_data(page, bytes(entry.data))
        self.policy.flush(page, entry.origin)
        location = self.store.page_location[page]
        self.mmu.update(page, Location.flash(location[0], location[1]))
        if journal is not None:
            journal.clear_flush()
        swaps_before = self.leveler.swap_count
        self.leveler.maybe_level(self.store)
        self.metrics.wear_swaps = self.leveler.swap_count
        if self.events.active and self.leveler.swap_count > swaps_before:
            self.events.mark(WEAR_SWAP,
                             {"swaps": self.leveler.swap_count
                              - swaps_before})
        if self.checkpointer is not None and self.checkpointer.enabled:
            self._flushes_since_checkpoint += 1
            if self._flushes_since_checkpoint >= \
                    self.config.checkpoint_interval_flushes:
                self.checkpoint_now()
        return self._pending_work_ns - before

    def checkpoint_now(self) -> int:
        """Write a metadata checkpoint immediately; returns its ns cost.

        No-op (returning 0) when checkpointing is disabled or has shut
        itself off after a metadata-segment failure.
        """
        if self.checkpointer is None or not self.checkpointer.enabled:
            return 0
        bus = self.events
        if bus.active:
            bus.mark(CHECKPOINT_BEGIN)
        ns = self.checkpointer.write_checkpoint()
        self._flushes_since_checkpoint = 0
        if ns:
            self.metrics.charge("checkpoint", ns)
            self.metrics.checkpoints_written += 1
            self._pending_work_ns += ns
            if bus.active:
                bus.emit_span(CHECKPOINT_COMMIT, ns,
                              {"id": self.checkpointer.checkpoint_id,
                               "chunks":
                               self.checkpointer.last_chunk_count})
        return ns

    def background_work(self, budget_ns: int) -> int:
        """Do up to ``budget_ns`` of flushing while over the threshold.

        Called by the timed simulator with the idle time between host
        accesses; the library API never requires it (writes flush
        synchronously when the buffer is full).  Returns nanoseconds of
        work actually performed; a single flush is not split, mirroring
        the suspendable-but-not-abortable long operations of Section 3.4.
        """
        done = 0
        while self.buffer.over_threshold and done < budget_ns:
            done += self.flush_one()
        return done

    def view(self, offset: int = 0, length: int = None):
        """A memory-mapped (slice-syntax) window onto the array.

        The Section 1 interface in idiomatic Python: ``v = system.view();
        v[0:5] = b"hello"``.  See :class:`~repro.core.memview.
        EnvyMemoryView`.
        """
        from .memview import EnvyMemoryView

        return EnvyMemoryView(self, offset, length)

    def drain(self) -> int:
        """Flush everything (e.g. before an orderly shutdown)."""
        done = 0
        while len(self.buffer):
            done += self.flush_one()
        return done

    # ------------------------------------------------------------------
    # Power failure / recovery (Section 3.2: battery-backed SRAM)
    # ------------------------------------------------------------------

    def power_cycle(self) -> None:
        """Simulate a power failure and recovery.

        Flash and battery-backed SRAM (page table, write buffer) retain
        their contents; the volatile MMU translation cache is lost and
        refills on demand.  Cleaning state lives in the store, which is
        persistent ("The state of the cleaning process is kept in
        persistent memory so the controller can recover quickly",
        Section 3.4).
        """
        self.buffer.power_cycle()
        self.mmu.flush()

    def check_consistency(self) -> None:
        """Verify page table, buffer, store and Flash agree (for tests)."""
        self.store.check_invariants()
        if self.store_data:
            self.store.verify_against_array()
        for page in range(self.config.logical_pages):
            table_loc = self.page_table.lookup(page)
            store_loc = self.store.page_location[page]
            if store_loc == (-1, -1):
                if not (table_loc is not None and table_loc.in_sram):
                    raise AssertionError(
                        f"page {page} buffered but table says {table_loc}")
                if page not in self.buffer:
                    raise AssertionError(f"page {page} missing from buffer")
            else:
                if table_loc is None or not table_loc.in_flash:
                    raise AssertionError(
                        f"page {page} in flash but table says {table_loc}")

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EnvyController({self.size_bytes // (1 << 20)} MiB over "
                f"{self.config.flash.num_segments} segments, "
                f"policy={self.policy.name})")


#: Friendlier alias used throughout the examples and docs.
EnvySystem = EnvyController
