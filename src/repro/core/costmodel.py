"""Storage-technology economics (Figure 1) and system cost (Section 5.1).

Figure 1 compares disk, DRAM, low-power SRAM and Flash on access time,
cost per megabyte, and data-retention current.  Those constants drive two
claims reproduced here:

* Section 3.3 — the 6-byte page-table entry costs about 10% of the Flash
  it maps ("For every gigabyte of Flash ($30,000), 24 MBytes of SRAM
  ($2,880) is required for the page table").
* Section 5.1 — the 2 GB eNVy system costs about $70,000, "about one
  quarter of a pure SRAM system of the same size ($250,000)".

All prices are 1994 dollars, of course; the point of the model is the
*ratios*, which are what the paper's design decisions traded against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .config import MIB, EnvyConfig

__all__ = ["Technology", "TECHNOLOGIES", "DRAM_READ_NS", "DRAM_WRITE_NS",
           "system_cost", "EnvyCostBreakdown"]

#: Figure 1 DRAM access time in nanoseconds.  A host-side DRAM read
#: cache serves hits at this latency: the access never crosses the eNVy
#: memory bus, so it pays neither the bus overhead nor the Flash array.
DRAM_READ_NS = 60

#: Figure 1 lists DRAM as symmetric (60 ns both ways); the RAM-disk
#: block device charges its writes at this rate.
DRAM_WRITE_NS = 60


@dataclass(frozen=True)
class Technology:
    """One row of Figure 1."""

    name: str
    read_access: str
    write_access: str
    cost_per_mib: float
    #: Current needed to retain data, per gigabyte ("OA" = none).
    retention_current_per_gib: str

    @property
    def row(self) -> List[str]:
        return [self.name, self.read_access, self.write_access,
                f"${self.cost_per_mib:.2f}", self.retention_current_per_gib]


#: Figure 1: Feature Comparison of Storage Technologies.
TECHNOLOGIES: Dict[str, Technology] = {
    "disk": Technology("Disk", "8.3ms", "8.3ms", 1.00, "0A"),
    "dram": Technology("DRAM", "60ns", "60ns", 35.00, "1A"),
    "sram": Technology("Low Power SRAM", "85ns", "85ns", 120.00, "2mA"),
    "flash": Technology("Flash", "85ns", "4-10us", 30.00, "0A"),
}


@dataclass(frozen=True)
class EnvyCostBreakdown:
    """Dollar cost of an eNVy configuration, by component."""

    flash_dollars: float
    write_buffer_dollars: float
    page_table_dollars: float

    @property
    def sram_dollars(self) -> float:
        return self.write_buffer_dollars + self.page_table_dollars

    @property
    def total_dollars(self) -> float:
        return self.flash_dollars + self.sram_dollars

    @property
    def page_table_overhead(self) -> float:
        """Page-table SRAM cost as a fraction of the Flash cost.

        Section 3.3 calls this "only about a 10% increase in overall
        cost" for 256-byte pages.
        """
        return self.page_table_dollars / self.flash_dollars

    def sram_only_alternative(self) -> float:
        """Cost of a pure battery-backed SRAM array of the same capacity."""
        flash_mib = self.flash_dollars / TECHNOLOGIES["flash"].cost_per_mib
        return flash_mib * TECHNOLOGIES["sram"].cost_per_mib

    @property
    def savings_vs_sram(self) -> float:
        """How many times cheaper eNVy is than the pure SRAM system."""
        return self.sram_only_alternative() / self.total_dollars


def system_cost(config: EnvyConfig) -> EnvyCostBreakdown:
    """Price an eNVy configuration with the Figure 1 cost constants."""
    flash_mib = config.flash.array_bytes / MIB
    buffer_mib = config.sram.buffer_bytes / MIB
    table_mib = config.page_table_bytes / MIB
    return EnvyCostBreakdown(
        flash_dollars=flash_mib * config.flash.cost_per_mib,
        write_buffer_dollars=buffer_mib * config.sram.cost_per_mib,
        page_table_dollars=table_mib * config.sram.cost_per_mib,
    )
