"""Array lifetime model (Section 5.5, "Estimated eNVy Lifetime").

The lifetime of the array is its total write capacity divided by the rate
pages are actually written:

    Lifetime = WriteCapacity / PageWriteRate
             = (pages_in_array x endurance_cycles)
               / (flush_rate x (1 + cleaning_cost))

The ``(1 + cleaning_cost)`` factor charges every useful flush with its
share of cleaner copies — each of which is a program into some segment
that will eventually need an erase cycle.

The paper's worked example: a 2 GB array of 1-million-cycle parts at
10,000 TPS flushes 10,376 pages/s at cleaning cost 1.97, giving
3,151 days (8.63 years) of continuous use.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import EnvyConfig

__all__ = ["LifetimeEstimate", "estimate_lifetime", "paper_example"]

SECONDS_PER_DAY = 86_400
DAYS_PER_YEAR = 365.25


@dataclass(frozen=True)
class LifetimeEstimate:
    """Result of the Section 5.5 lifetime calculation.

    ``concentration`` generalizes the paper's uniform-wear assumption to
    adversarially skewed traffic: it is the normalized Herfindahl index
    of the per-segment program distribution
    (:func:`~repro.core.metrics.wear_concentration` — 1.0 for uniform
    wear, ``num_segments`` for a single-segment hammer).  The array is
    only as durable as its hottest segments, so the effective write
    capacity is divided by the factor: a tenant that lands every
    program in one of ``S`` segments cuts projected lifetime to
    ``1/S`` of the uniform projection — the closed-form bound the
    adversarial tests check.
    """

    array_pages: int
    endurance_cycles: int
    page_flush_rate: float
    cleaning_cost: float
    #: Wear-concentration factor (>= 1.0; 1.0 = the paper's uniform
    #: wear-leveled assumption).
    concentration: float = 1.0

    @property
    def write_capacity_pages(self) -> float:
        """Total page programs the array can absorb in its lifetime."""
        return (float(self.array_pages) * self.endurance_cycles
                / max(1.0, self.concentration))

    @property
    def page_write_rate(self) -> float:
        """Programs per second including cleaning overhead."""
        return self.page_flush_rate * (1.0 + self.cleaning_cost)

    @property
    def seconds(self) -> float:
        if self.page_write_rate <= 0:
            return float("inf")
        return self.write_capacity_pages / self.page_write_rate

    @property
    def days(self) -> float:
        return self.seconds / SECONDS_PER_DAY

    @property
    def years(self) -> float:
        return self.days / DAYS_PER_YEAR

    def scaled_to_array(self, factor: float) -> "LifetimeEstimate":
        """Lifetime of an array ``factor`` times the size (Section 5.5:
        "an array half the size has half the lifetime")."""
        return LifetimeEstimate(
            array_pages=int(self.array_pages * factor),
            endurance_cycles=self.endurance_cycles,
            page_flush_rate=self.page_flush_rate,
            cleaning_cost=self.cleaning_cost,
            concentration=self.concentration,
        )

    def with_concentration(self, factor: float) -> "LifetimeEstimate":
        """The same workload with measured wear concentration ``factor``
        (>= 1.0; see :func:`~repro.core.metrics.wear_concentration`)."""
        if factor < 1.0:
            raise ValueError(
                "wear concentration cannot beat uniform (factor >= 1)")
        return LifetimeEstimate(
            array_pages=self.array_pages,
            endurance_cycles=self.endurance_cycles,
            page_flush_rate=self.page_flush_rate,
            cleaning_cost=self.cleaning_cost,
            concentration=factor,
        )

    def __str__(self) -> str:
        return (f"{self.days:,.0f} days of continuous use "
                f"({self.years:.2f} years)")


def estimate_lifetime(config: EnvyConfig, page_flush_rate: float,
                      cleaning_cost: float,
                      concentration: float = 1.0) -> LifetimeEstimate:
    """Lifetime of ``config`` under a measured flush rate and cost.

    ``concentration`` folds in a measured per-segment wear skew (1.0 =
    the paper's uniform-wear assumption, ``num_segments`` = every
    program in one segment).
    """
    if page_flush_rate < 0:
        raise ValueError("page_flush_rate cannot be negative")
    if cleaning_cost < 0:
        raise ValueError("cleaning_cost cannot be negative")
    if concentration < 1.0:
        raise ValueError(
            "wear concentration cannot beat uniform (factor >= 1)")
    return LifetimeEstimate(
        array_pages=config.total_pages,
        endurance_cycles=config.flash.endurance_cycles,
        page_flush_rate=page_flush_rate,
        cleaning_cost=cleaning_cost,
        concentration=concentration,
    )


def paper_example() -> LifetimeEstimate:
    """The exact numbers of the Section 5.5 worked example."""
    return estimate_lifetime(EnvyConfig.paper(), page_flush_rate=10_376,
                             cleaning_cost=1.97)
