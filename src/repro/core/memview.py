"""A memory-mapped view of eNVy: Python slice syntax over the array.

The paper's whole interface argument (Section 1) is that persistent
storage should look like memory.  For a Python library the idiomatic
spelling of "looks like memory" is the mutable-sequence protocol, so

    view = system.view()
    view[0:5] = b"hello"          # a store
    assert view[0:5] == b"hello"  # a load
    count = view.read_u64(1024)   # typed accessors for records

behaves like a ``bytearray`` whose contents happen to be non-volatile,
wear-leveled Flash.  Slices map one-to-one onto controller reads and
writes; nothing is cached in the view, so aliasing views agree and
persistence semantics are exactly the controller's.
"""

from __future__ import annotations

import struct
from typing import Union

__all__ = ["EnvyMemoryView"]

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


class EnvyMemoryView:
    """Mutable-sequence facade over a controller's address space."""

    def __init__(self, controller, offset: int = 0,
                 length: int = None) -> None:
        size = controller.size_bytes
        if length is None:
            length = size - offset
        if offset < 0 or length < 0 or offset + length > size:
            raise ValueError(
                f"window [{offset}, {offset + length}) outside the "
                f"{size}-byte array")
        self._controller = controller
        self._offset = offset
        self._length = length

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def _resolve(self, key: Union[int, slice]) -> "tuple[int, int]":
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise ValueError("extended slices are not supported")
            return self._offset + start, max(0, stop - start)
        index = key
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {key} out of range")
        return self._offset + index, 1

    def __getitem__(self, key: Union[int, slice]) -> Union[int, bytes]:
        address, length = self._resolve(key)
        data = self._controller.read(address, length)
        if isinstance(key, slice):
            return data
        return data[0]

    def __setitem__(self, key: Union[int, slice],
                    value: Union[int, bytes, bytearray]) -> None:
        address, length = self._resolve(key)
        if isinstance(key, slice):
            payload = bytes(value)
            if len(payload) != length:
                raise ValueError(
                    f"cannot assign {len(payload)} bytes to a "
                    f"{length}-byte slice (the array does not resize)")
        else:
            if not isinstance(value, int) or not 0 <= value <= 0xFF:
                raise ValueError("byte assignment needs an int in 0..255")
            payload = bytes([value])
        self._controller.write(address, payload)

    # ------------------------------------------------------------------
    # Typed accessors (the word-sized loads/stores of Section 1)
    # ------------------------------------------------------------------

    def read_u64(self, offset: int) -> int:
        return _U64.unpack(self[offset:offset + 8])[0]

    def write_u64(self, offset: int, value: int) -> None:
        self[offset:offset + 8] = _U64.pack(value)

    def read_i64(self, offset: int) -> int:
        return _I64.unpack(self[offset:offset + 8])[0]

    def write_i64(self, offset: int, value: int) -> None:
        self[offset:offset + 8] = _I64.pack(value)

    # ------------------------------------------------------------------

    def subview(self, offset: int, length: int) -> "EnvyMemoryView":
        """A window into this window (for carving out data structures)."""
        if offset < 0 or length < 0 or offset + length > self._length:
            raise ValueError("subview outside the parent window")
        return EnvyMemoryView(self._controller, self._offset + offset,
                              length)

    def fill(self, value: int, chunk: int = 4096) -> None:
        """Set every byte of the window to ``value``."""
        if not 0 <= value <= 0xFF:
            raise ValueError("fill value must be a byte")
        payload = bytes([value]) * chunk
        written = 0
        while written < self._length:
            piece = min(chunk, self._length - written)
            self._controller.write(self._offset + written,
                                   payload[:piece])
            written += piece

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EnvyMemoryView([{self._offset}, "
                f"{self._offset + self._length}) of {self._controller!r})")
