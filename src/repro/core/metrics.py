"""Latency and throughput accounting for the eNVy controller.

Collects the quantities Section 5 reports: host read/write counts and
latencies (Figure 15), copy-on-write and buffer-hit rates, flush and
cleaning volume (the cleaning-cost numerator/denominator), and the
controller time breakdown of Section 5.3 (reads vs cleaning vs flushing
vs erasing).

Latencies are kept as full log-bucketed histograms
(:class:`~repro.obs.hist.LatencyHistogram`), not just min/max/mean: the
paper reports averages, but the phenomena this reproduction models —
cleaning stalls, buffer saturation, retry storms — live in the tails,
so every consumer of a latency stat gets p50/p90/p99/p999 for free.
:class:`LatencyStat` remains as a compatibility name for the histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from ..obs.hist import LatencyHistogram

__all__ = ["LatencyStat", "ControllerMetrics", "wear_concentration"]


def wear_concentration(counts) -> float:
    """Normalized Herfindahl index of a wear distribution.

    ``counts`` are per-segment program (or erase) counts.  The result is
    ``n * sum(share_i^2)`` — 1.0 for perfectly uniform wear over the
    ``n`` segments, ``n`` when every program lands in a single segment.
    It is exactly the factor by which concentrated wear shortens the
    Section 5.5 lifetime projection: the array dies when its hottest
    segments exhaust their endurance, so effective write capacity scales
    with ``1 / concentration`` (see
    :meth:`~repro.core.lifetime.LifetimeEstimate.with_concentration`).

    Empty or all-zero inputs return 1.0 (no wear is uniform wear).
    """
    counts = list(counts)
    total = float(sum(counts))
    if not counts or total <= 0:
        return 1.0
    hhi = sum((c / total) ** 2 for c in counts)
    return hhi * len(counts)


class LatencyStat(LatencyHistogram):
    """Compatibility shim: the old min/max/mean stat, now a histogram.

    Every site that consumed a ``LatencyStat`` (controller metrics,
    ``health_report``, the timed simulator, benchmarks) transparently
    gained percentiles; the original ``record`` / ``merge`` / ``count``
    / ``total_ns`` / ``min_ns`` / ``max_ns`` / ``mean_ns`` contract is
    unchanged, and empty stats now print ``n=0 (empty)`` instead of a
    misleading ``min_ns=0``.
    """


@dataclass
class ControllerMetrics:
    """Counters the eNVy controller maintains while servicing a host."""

    reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    copy_on_writes: int = 0
    flushes: int = 0
    clean_copies: int = 0
    erases: int = 0
    wear_swaps: int = 0
    # --- fault-tolerance counters (repro.faults) ----------------------
    ecc_corrected: int = 0
    ecc_uncorrectable: int = 0
    program_retries: int = 0
    erase_retries: int = 0
    bad_blocks_retired: int = 0
    #: Flash-resident metadata checkpoints written (repro.core.checkpoint).
    checkpoints_written: int = 0
    read_latency: LatencyStat = field(default_factory=LatencyStat)
    write_latency: LatencyStat = field(default_factory=LatencyStat)
    #: Controller time by activity, nanoseconds (Section 5.3 breakdown).
    busy_ns: Dict[str, int] = field(default_factory=dict)

    def charge(self, activity: str, ns: int) -> None:
        """Attribute ``ns`` of controller time to an activity."""
        self.busy_ns[activity] = self.busy_ns.get(activity, 0) + ns

    # ------------------------------------------------------------------

    @property
    def buffer_hit_rate(self) -> float:
        return self.buffer_hits / self.writes if self.writes else 0.0

    @property
    def cleaning_cost(self) -> float:
        """Cleaner programs per flushed page (Section 4.1)."""
        return self.clean_copies / self.flushes if self.flushes else 0.0

    def time_breakdown(self) -> Dict[str, float]:
        """Fraction of busy time per activity (Section 5.3)."""
        total = sum(self.busy_ns.values())
        if not total:
            return {}
        return {k: v / total for k, v in sorted(self.busy_ns.items())}

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.copy_on_writes = 0
        self.flushes = 0
        self.clean_copies = 0
        self.erases = 0
        self.wear_swaps = 0
        self.ecc_corrected = 0
        self.ecc_uncorrectable = 0
        self.program_retries = 0
        self.erase_retries = 0
        self.bad_blocks_retired = 0
        self.checkpoints_written = 0
        self.read_latency = LatencyStat()
        self.write_latency = LatencyStat()
        self.busy_ns = {}

    # ------------------------------------------------------------------
    # Snapshot / restore (repro.core.persistence)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-dict snapshot, histograms included."""
        counters = {f.name: getattr(self, f.name) for f in fields(self)
                    if f.name not in ("read_latency", "write_latency",
                                      "busy_ns")}
        return {
            "counters": counters,
            "busy_ns": dict(self.busy_ns),
            "read_latency": self.read_latency.state_dict(),
            "write_latency": self.write_latency.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        for name, value in state["counters"].items():
            if hasattr(self, name):
                setattr(self, name, value)
        self.busy_ns = dict(state["busy_ns"])
        self.read_latency = LatencyStat()
        self.read_latency.load_state(state["read_latency"])
        self.write_latency = LatencyStat()
        self.write_latency.load_state(state["write_latency"])

    # ------------------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"reads:  {self.reads} (avg {self.read_latency.mean_ns:.0f}ns)",
            f"writes: {self.writes} "
            f"(avg {self.write_latency.mean_ns:.0f}ns, "
            f"{self.buffer_hit_rate:.0%} buffered)",
            f"flushes: {self.flushes}, cleaning cost "
            f"{self.cleaning_cost:.2f}, erases: {self.erases}",
        ]
        faults = (self.ecc_corrected + self.ecc_uncorrectable +
                  self.program_retries + self.erase_retries +
                  self.bad_blocks_retired)
        if faults:
            lines.append(
                f"faults: {self.ecc_corrected} corrected, "
                f"{self.ecc_uncorrectable} uncorrectable, "
                f"{self.program_retries}+{self.erase_retries} retries, "
                f"{self.bad_blocks_retired} blocks retired")
        breakdown = self.time_breakdown()
        if breakdown:
            parts = ", ".join(f"{k} {v:.0%}" for k, v in breakdown.items())
            lines.append(f"controller time: {parts}")
        return "\n".join(lines)
