"""Saving and restoring a whole eNVy system image.

The real hardware never needs this — its state *is* the Flash and
battery-backed SRAM — but a software model does: long-running
simulations, pre-warmed arrays for benchmarks, and test fixtures all
want to park a system on the host filesystem and pick it up later.

The snapshot captures everything the hardware would retain across a
power cycle (Flash contents and wear, page table, write buffer,
cleaning state including the policy's persistent registers) and nothing
it would not (the MMU translation cache).  Restoring therefore behaves
exactly like a power-cycle recovery on a machine that happens to be a
different Python process.  Controller metrics — counters and the full
latency histograms — also ride along, so a restored long-running
benchmark keeps its statistics; snapshots written before the metrics
rode along restore with freshly reset metrics.

Format: a small versioned header plus a pickle of the component state
dictionaries.  Snapshots are trusted inputs (your own files), the same
assumption ``numpy.load`` makes.
"""

from __future__ import annotations

import io
import pickle
from typing import BinaryIO, Union

from ..cleaning.hybrid import HybridPolicy
from .controller import EnvyController

__all__ = ["save_system", "load_system", "SnapshotError"]

MAGIC = b"eNVySNAP"
VERSION = 1


class SnapshotError(Exception):
    """Raised for unreadable or incompatible snapshots."""


def _position_state(position) -> dict:
    return {
        "slots": list(position.slots),
        "live_count": position.live_count,
        "phys": position.phys,
        "demoted": set(position.demoted),
        "clean_count": position.clean_count,
        "last_clean_seq": position.last_clean_seq,
        "avg_clean_interval": position.avg_clean_interval,
        "last_clean_utilization": position.last_clean_utilization,
        "product": position.product,
    }


def _segment_state(segment) -> dict:
    return {
        "states": [int(state) for state in segment.states],
        "data": list(segment.data) if segment.store_data else None,
        "oob": list(segment.oob),
        "erase_count": segment.erase_count,
        "program_count": segment.program_count,
        "write_pointer": segment.write_pointer,
        "live_count": segment.live_count,
    }


def _policy_state(policy) -> dict:
    state = {"name": policy.name}
    if isinstance(policy, HybridPolicy):
        state["partitions"] = [{
            "active": part.active,
            "next_victim": part.next_victim,
            "clean_count": part.clean_count,
            "last_clean_seq": part.last_clean_seq,
            "avg_clean_interval": part.avg_clean_interval,
            "product": part.product,
        } for part in policy.partitions]
    for attr in ("_active", "_next_victim"):
        if hasattr(policy, attr):
            state[attr] = getattr(policy, attr)
    return state


def save_system(system: EnvyController,
                target: Union[str, BinaryIO]) -> None:
    """Write a snapshot of ``system`` to a path or binary stream."""
    store = system.store
    state = {
        "config": system.config,
        "store_data": system.store_data,
        "policy": _policy_state(system.policy),
        "positions": [_position_state(p) for p in store.positions],
        "spare_phys": store.spare_phys,
        "phys_erase_counts": list(store.phys_erase_counts),
        "page_location": list(store.page_location),
        "counters": {
            "flush_count": store.flush_count,
            "clean_copy_count": store.clean_copy_count,
            "transfer_count": store.transfer_count,
            "erase_count": store.erase_count,
        },
        # Crash-consistency state: per-page write epochs, the epoch and
        # program-sequence counters, and the checkpoint cursor.  Without
        # them a restored system would restart epochs at 1, and a later
        # recovery scan would elect stale copies as winners.
        "page_epochs": list(system.page_table._epochs),
        "write_epoch": system.page_table.write_epoch,
        "seq_counter": store.seq_counter,
        "checkpointer": None if system.checkpointer is None else {
            "checkpoint_id": system.checkpointer.checkpoint_id,
            "holder": system.checkpointer.holder,
        },
        "segments": [_segment_state(s) for s in system.array.segments],
        "buffer": [(entry.logical_page,
                    bytes(entry.data) if entry.data is not None else None,
                    entry.origin)
                   for entry in system.buffer.entries()],
        "leveler": {
            "swap_count": system.leveler.swap_count,
            "last_swap": system.leveler._last_swap_erase_count,
        },
        "metrics": system.metrics.state_dict(),
    }
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            _write(handle, payload)
    else:
        _write(target, payload)


def _write(handle: BinaryIO, payload: bytes) -> None:
    handle.write(MAGIC)
    handle.write(VERSION.to_bytes(2, "little"))
    handle.write(len(payload).to_bytes(8, "little"))
    handle.write(payload)


def load_system(source: Union[str, BinaryIO]) -> EnvyController:
    """Rebuild a controller from a snapshot (path or binary stream)."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            state = _read(handle)
    else:
        state = _read(source)

    from ..flash.segment import PageState

    system = EnvyController(state["config"],
                            store_data=state["store_data"])
    if system.policy.name != state["policy"]["name"]:
        raise SnapshotError(
            f"snapshot used policy {state['policy']['name']!r} but the "
            f"config builds {system.policy.name!r}")
    store = system.store
    # Rebuild below the populated defaults: wipe the formatted layout.
    for position, saved in zip(store.positions, state["positions"]):
        position.slots = list(saved["slots"])
        position.live_count = saved["live_count"]
        position.phys = saved["phys"]
        position.demoted = set(saved["demoted"])
        position.clean_count = saved["clean_count"]
        position.last_clean_seq = saved["last_clean_seq"]
        position.avg_clean_interval = saved["avg_clean_interval"]
        position.last_clean_utilization = saved["last_clean_utilization"]
        position.product = saved["product"]
    store.spare_phys = state["spare_phys"]
    store.phys_erase_counts = list(state["phys_erase_counts"])
    store.page_location = [tuple(loc) if isinstance(loc, (list, tuple))
                           else loc for loc in state["page_location"]]
    for name, value in state["counters"].items():
        setattr(store, name, value)
    # Positions and counters were poked directly; refresh the store's
    # incrementally maintained totals/bucket index and caches.
    store.rebuild_derived()
    for segment, saved in zip(system.array.segments, state["segments"]):
        segment.states = [PageState(v) for v in saved["states"]]
        if segment.store_data and saved["data"] is not None:
            segment.data = list(saved["data"])
        if saved.get("oob") is not None:
            segment.oob = list(saved["oob"])
        segment.erase_count = saved["erase_count"]
        segment.program_count = saved["program_count"]
        segment.write_pointer = saved["write_pointer"]
        segment.live_count = saved["live_count"]
        segment.rebuild_live_slots()
    # Write buffer contents (battery backed).
    system.buffer._entries.clear()
    for logical_page, data, origin in state["buffer"]:
        system.buffer.insert(
            logical_page,
            bytearray(data) if data is not None else None, origin)
    # Page table: rebuilt from the store (flash) and buffer (sram).
    from ..sram.pagetable import Location

    for page, location in enumerate(store.page_location):
        if location is None:
            system.page_table.clear(page)
        elif location == (-1, -1):
            system.page_table.update(page, Location.sram(page))
        else:
            system.page_table.update(
                page, Location.flash(location[0], location[1]))
    system.mmu.flush()
    # Policy persistent registers.
    policy_state = state["policy"]
    if isinstance(system.policy, HybridPolicy):
        for part, saved in zip(system.policy.partitions,
                               policy_state["partitions"]):
            part.active = saved["active"]
            part.next_victim = saved["next_victim"]
            part.clean_count = saved["clean_count"]
            part.last_clean_seq = saved["last_clean_seq"]
            part.avg_clean_interval = saved["avg_clean_interval"]
            part.product = saved["product"]
    for attr in ("_active", "_next_victim"):
        if attr in policy_state and hasattr(system.policy, attr):
            setattr(system.policy, attr, policy_state[attr])
    system.leveler.swap_count = state["leveler"]["swap_count"]
    system.leveler._last_swap_erase_count = state["leveler"]["last_swap"]
    # Crash-consistency state (absent in pre-OOB snapshots, whose
    # arrays carry no stamps to conflict with the fresh counters).
    if state.get("page_epochs") is not None:
        system.page_table._epochs = list(state["page_epochs"])
        system.page_table.write_epoch = state["write_epoch"]
        store.seq_counter = state["seq_counter"]
    ckpt = state.get("checkpointer")
    if ckpt is not None and system.checkpointer is not None:
        system.checkpointer.checkpoint_id = ckpt["checkpoint_id"]
        system.checkpointer.holder = ckpt["holder"]
    system.metrics.reset()
    if state.get("metrics") is not None:
        system.metrics.load_state(state["metrics"])
    return system


def _read(handle: BinaryIO) -> dict:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError("not an eNVy snapshot (bad magic)")
    version = int.from_bytes(handle.read(2), "little")
    if version != VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    length = int.from_bytes(handle.read(8), "little")
    payload = handle.read(length)
    if len(payload) != length:
        raise SnapshotError("truncated snapshot")
    return pickle.loads(payload)


def roundtrip(system: EnvyController) -> EnvyController:
    """Save to memory and load back (handy in tests)."""
    buffer = io.BytesIO()
    save_system(system, buffer)
    buffer.seek(0)
    return load_system(buffer)
