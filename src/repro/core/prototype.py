"""The 128 MB prototype's narrow data path (Section 8).

"Implementation of a 128 Mbyte prototype is planned using an SBUS
interface and a SparcStation host.  The system will have too few chips
to transfer an entire page in a single memory cycle, so techniques will
be tested that can maintain reasonable performance levels even with a
lower transfer rate."

The full-scale system moves a 256-byte page in one cycle because a bank
is 256 chips wide.  With fewer chips the page moves in
``page_bytes / transfer_width`` beats, which inflates exactly two
operations: the copy-on-write's Flash-to-SRAM page copy (host-visible
write latency) and the SRAM-to-Flash transfer that precedes each page
program (flush bandwidth).  This module provides the narrow-path
configuration and the latency/bandwidth model, plus the two mitigation
techniques the prototype planned to test:

* **critical-word-first copy-on-write** — apply the host's write to the
  SRAM page as soon as its beat has arrived and acknowledge the host,
  streaming the rest of the page in the background;
* **lazy copy-on-write** — copy only on first write per page as usual,
  but count on buffer coalescing so each (expensive) narrow copy is
  amortised over many cheap SRAM hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MIB, EnvyConfig, FlashParams, SramParams
from .controller import EnvyController

__all__ = ["PrototypeTimings", "PrototypeController", "prototype_config",
           "narrow_path_timings"]


def prototype_config(chips: int = 32, page_bytes: int = 256,
                     **overrides) -> EnvyConfig:
    """The Section 8 prototype: 128 MB of Flash behind a narrow bank.

    32 byte-wide chips of 4 Mbit (the era's parts) give 128 MB in one
    bank; a page crosses the array in ``page_bytes / chips`` cycles.
    """
    if chips <= 0 or page_bytes % chips:
        raise ValueError("chip count must divide the page size")
    flash = FlashParams(
        chip_bytes=4 * MIB,
        chips_per_bank=chips,
        num_banks=1,
        erase_blocks_per_chip=64,
    )
    sram = SramParams(buffer_bytes=flash.segment_bytes)
    config = EnvyConfig(flash=flash, sram=sram, page_bytes=page_bytes,
                        **overrides)
    # One bank of 64 segments: partitions of 16 still divide evenly.
    config.validate()
    return config


@dataclass(frozen=True)
class PrototypeTimings:
    """Host-visible latencies under a narrow data path."""

    transfer_width_bytes: int
    beats_per_page: int
    read_ns: int
    #: Copy-on-write when the whole page must cross before the ack.
    write_full_copy_ns: int
    #: Copy-on-write with critical-word-first: ack after the host's
    #: beat lands, stream the rest behind the ack.
    write_critical_word_ns: int
    #: SRAM-to-Flash transfer time added to every page program.
    flush_transfer_ns: int

    @property
    def flush_total_ns(self) -> int:
        """Transfer + program: the page's full path back to Flash."""
        return self.flush_transfer_ns + 4000

    def slowdown_vs_wide(self, wide_write_ns: int = 260) -> float:
        return self.write_full_copy_ns / wide_write_ns


class PrototypeController(EnvyController):
    """An eNVy controller with the prototype's multi-beat page path.

    Overrides exactly the two costs the narrow path changes: the
    copy-on-write page copy (host-visible, unless critical-word-first
    acknowledges early) and the per-program page transfer (charged to
    flush time).  Placement, cleaning and data handling are inherited
    unchanged — the prototype differs in wiring, not policy.
    """

    def __init__(self, config: EnvyConfig = None, policy=None,
                 store_data: bool = True,
                 critical_word_first: bool = True) -> None:
        config = config or prototype_config()
        # Set before super().__init__: the store observer this class
        # overrides may fire during formatting.
        self.critical_word_first = critical_word_first
        self.timings = narrow_path_timings(config)
        super().__init__(config, policy, store_data)

    def _write_page(self, page: int, page_offset: int, chunk) -> int:
        cows_before = self.metrics.copy_on_writes
        base_ns = super()._write_page(page, page_offset, chunk)
        # Buffer hits never touch the narrow path; only a copy-on-write
        # moves a page across it.  The parent charged the wide-path copy
        # (one cycle); add the extra beats unless the controller
        # acknowledges after the critical word and streams the rest of
        # the page behind the host's back.
        if self.metrics.copy_on_writes == cows_before:
            return base_ns
        extra_beats = self.timings.beats_per_page - 1
        if extra_beats <= 0 or self.critical_word_first:
            return base_ns
        extra_ns = extra_beats * self.config.flash.read_ns
        self.metrics.charge("host-write", extra_ns)
        return base_ns + extra_ns

    def _on_store_event(self, event: str, position: int,
                        amount: int) -> None:
        super()._on_store_event(event, position, amount)
        if event in ("program", "clean_copy", "transfer"):
            # Each programmed page first crosses the narrow path.
            extra = amount * self.timings.flush_transfer_ns
            bucket = "flush" if event == "program" else "clean"
            self.metrics.charge(bucket, extra)
            self._pending_work_ns += extra


def narrow_path_timings(config: EnvyConfig) -> PrototypeTimings:
    """Derive the narrow-path latencies from a configuration.

    One beat moves ``chips_per_bank`` bytes and costs one memory cycle
    (the chip read/write time); the wide system's single-cycle numbers
    fall out as the special case of 256 chips.
    """
    flash = config.flash
    width = flash.chips_per_bank
    beats = -(-config.page_bytes // width)
    bus = config.bus_overhead_ns
    cycle = flash.read_ns
    read_ns = bus + cycle  # word reads never need the whole page
    full_copy = bus + beats * cycle + config.sram.write_ns
    critical = bus + cycle + config.sram.write_ns
    flush_transfer = beats * config.sram.read_ns
    return PrototypeTimings(
        transfer_width_bytes=width,
        beats_per_page=beats,
        read_ns=read_ns,
        write_full_copy_ns=full_copy,
        write_critical_word_ns=critical,
        flush_transfer_ns=flush_transfer,
    )
