"""Crash-consistent cleaning and power-failure recovery (Section 3.4).

"The state of the cleaning process is kept in persistent memory so the
controller can recover quickly after a failure."

Cleaning is the one multi-step operation whose partial completion could
corrupt the array: it copies live pages to the spare segment, commits
the remap, and erases the old segment.  eNVy makes it crash-safe by
shadow paging — nothing about the old segment changes until the new copy
is complete — plus a small journal in battery-backed SRAM recording
which phase a clean is in:

* ``COPYING``  — survivor pages are streaming to the spare.  The page
  table still points at the old segment, so a crash loses nothing; the
  partially-written spare is simply re-erased and the clean rerun.
* ``COMMITTED`` — the remap is done; only the old segment's bulk erase
  is outstanding.  Recovery finishes the erase (the new copies are
  already the live ones).

:class:`CrashInjector` arms a countdown over Flash operations and raises
:class:`SimulatedPowerFailure` mid-clean; :func:`recover` brings the
system back to a consistent state from the journal, exactly as the
controller's firmware would at power-on.  The property tests crash at
every reachable point and verify no data is ever lost.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..flash.segment import PageState
from .controller import EnvyController

__all__ = ["CleanPhase", "CleaningJournal", "CrashInjector",
           "SimulatedPowerFailure", "JournalledStore", "recover",
           "attach_journal"]


class SimulatedPowerFailure(Exception):
    """Raised by the crash injector at the armed Flash operation."""


class CleanPhase(Enum):
    IDLE = "idle"
    COPYING = "copying"
    COMMITTED = "committed"


class CleaningJournal:
    """The battery-backed record of in-flight maintenance work."""

    def __init__(self) -> None:
        self.phase = CleanPhase.IDLE
        self.position: Optional[int] = None
        self.old_phys: Optional[int] = None
        self.new_phys: Optional[int] = None
        #: The flush being serviced when the clean started: the buffer
        #: slot is logically still owned by this page until the flush's
        #: program commits, so recovery can re-queue it.
        self.flush_page: Optional[int] = None
        self.flush_origin: Optional[int] = None

    def begin(self, position: int, old_phys: int, new_phys: int) -> None:
        self.phase = CleanPhase.COPYING
        self.position = position
        self.old_phys = old_phys
        self.new_phys = new_phys

    def commit(self) -> None:
        self.phase = CleanPhase.COMMITTED

    def clear(self) -> None:
        self.phase = CleanPhase.IDLE
        self.position = None
        self.old_phys = None
        self.new_phys = None

    def note_flush(self, page: int, origin: int) -> None:
        self.flush_page = page
        self.flush_origin = origin

    def clear_flush(self) -> None:
        self.flush_page = None
        self.flush_origin = None


def attach_journal(system: EnvyController) -> CleaningJournal:
    """Enable journalled cleaning on a controller.

    Returns the journal (creating and instrumenting on first call).
    The store's ``clean`` records its phase transitions, and every Flash
    program/erase first calls ``system.crash_hook`` (if set) so an
    injector can cut the power at any operation.
    """
    store = system.store
    if store.journal is not None:
        return store.journal
    journal = CleaningJournal()
    store.journal = journal
    array = store.array
    # Instrument the array so every program/erase can crash first.
    for name in ("program_page", "erase_segment"):
        original = getattr(array, name)

        def instrumented(*args, _original=original, **kwargs):
            hook = getattr(system, "crash_hook", None)
            if hook is not None:
                hook()
            return _original(*args, **kwargs)

        setattr(array, name, instrumented)
    return journal


class CrashInjector:
    """Cuts the power after a chosen number of Flash operations."""

    def __init__(self, system: EnvyController,
                 journal: Optional[CleaningJournal] = None) -> None:
        self.system = system
        self.journal = journal if journal is not None \
            else attach_journal(system)
        self._countdown: Optional[int] = None
        system.crash_hook = self._tick

    def arm(self, after_operations: int) -> None:
        """Crash on the Nth upcoming Flash program/erase (1-based)."""
        if after_operations < 1:
            raise ValueError("must allow at least one operation")
        self._countdown = after_operations

    def disarm(self) -> None:
        self._countdown = None

    def _tick(self) -> None:
        if self._countdown is None:
            return
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = None
            raise SimulatedPowerFailure("power lost mid-operation")


def recover(system: EnvyController,
            journal: CleaningJournal) -> CleanPhase:
    """Power-on recovery: repair any interrupted clean.

    Returns the phase the crash interrupted (IDLE when the system was
    quiescent).  After this returns, ``system.check_consistency()``
    holds and every logical page is intact.
    """
    interrupted = journal.phase
    system.power_cycle()  # volatile state (MMU cache) is gone regardless
    store = system.store
    array = store.array
    if interrupted is CleanPhase.COPYING:
        # Shadow paging: the old segment and the page table are
        # untouched, so the partial copy is garbage.  Invalidate and
        # erase it; the clean will be redone on demand.
        spare = array.segment(journal.new_phys)
        for slot in range(spare.write_pointer):
            if spare.states[slot] is PageState.VALID:
                spare.invalidate_page(slot)
        if not spare.is_erased:
            store.erase_phys(journal.new_phys)
            store.phys_erase_counts[journal.new_phys] += 1
            store.erase_count += 1
    elif interrupted is CleanPhase.COMMITTED:
        # The remap committed; only the old segment's bulk erase was
        # outstanding.  (The store's erase counters were advanced at
        # commit time, so only the physical erase is replayed.)
        old = array.segment(journal.old_phys)
        if not old.is_erased:
            for slot in range(old.write_pointer):
                if old.states[slot] is PageState.VALID:
                    old.invalidate_page(slot)
            store.erase_phys(journal.old_phys)
    journal.clear()
    _requeue_orphans(system, journal)
    return interrupted


def _requeue_orphans(system: EnvyController,
                     journal: CleaningJournal) -> None:
    """Re-queue pages whose relocation never committed.

    Two kinds of page are in flight during maintenance work: the flush
    the controller took off the FIFO (its only copy is the staged SRAM
    data), and pages the cleaner detached from one segment but had not
    yet programmed into another (their bytes sit in the controller's
    SRAM transfer buffer — ``_pending_data``).  Real hardware keeps both
    in battery-backed staging until the receiving program commits; the
    model re-inserts them into the write buffer, from where the normal
    flush path re-homes them.
    """
    store = system.store
    default_origin = (journal.flush_origin
                      if journal.flush_origin is not None else 0)
    # The interrupted flush, if any.
    candidates = []
    if journal.flush_page is not None:
        candidates.append((journal.flush_page, default_origin))
    # Pages detached by pop_live (location cleared, not buffered).
    for page, location in enumerate(store.page_location):
        if location is None and page not in system.buffer:
            candidates.append((page, default_origin))
    for page, origin in candidates:
        location = store.page_location[page]
        if location is not None and location != (-1, -1):
            continue  # it landed after all
        if page in system.buffer:
            continue
        data = store._pending_data.pop(page, None)
        if data is None and system.store_data:
            data = bytes(system.config.page_bytes)
        while system.buffer.is_full:
            system.flush_one()
        store.page_location[page] = (-1, -1)
        system.buffer.insert(
            page, bytearray(data) if data is not None else None, origin)
        from ..sram.pagetable import Location

        system.page_table.update(page, Location.sram(page))
    journal.clear_flush()


def crash_points_in_clean(system: EnvyController,
                          position: int) -> List[int]:
    """How many Flash operations the next clean of ``position`` makes.

    Handy for tests that want to crash at every reachable point: a clean
    performs one program per (prepended + surviving) page plus one
    erase.
    """
    pos = system.store.positions[position]
    return list(range(1, pos.live_count + 2))
