"""Crash-consistent cleaning and power-failure recovery (Section 3.4).

"The state of the cleaning process is kept in persistent memory so the
controller can recover quickly after a failure."

Cleaning is the one multi-step operation whose partial completion could
corrupt the array: it copies live pages to the spare segment, commits
the remap, and erases the old segment.  eNVy makes it crash-safe by
shadow paging — nothing about the old segment changes until the new copy
is complete — plus a small journal in battery-backed SRAM recording
which phase a clean is in:

* ``COPYING``  — survivor pages are streaming to the spare.  The page
  table still points at the old segment, so a crash loses nothing; the
  partially-written spare is simply re-erased and the clean rerun.
* ``COMMITTED`` — the remap is done; only the old segment's bulk erase
  is outstanding.  Recovery finishes the erase (the new copies are
  already the live ones).

:class:`CrashInjector` arms a countdown over Flash operations and raises
:class:`SimulatedPowerFailure` mid-clean; :func:`recover` brings the
system back to a consistent state from the journal, exactly as the
controller's firmware would at power-on.  The property tests crash at
every reachable point and verify no data is ever lost.

Beyond the paper: full recovery from Flash alone
------------------------------------------------

The journal path above assumes the battery held — SRAM (page table,
write buffer, journal) survived and only volatile caches were lost.
:func:`recover_from_flash` handles the total-loss case: given nothing
but the Flash array, it rebuilds the page table, segment layout,
cleaning state and counters from the out-of-band self-description
stamped on every page (:mod:`repro.flash.oob`) plus, when available,
the latest flash-resident checkpoint (:mod:`repro.core.checkpoint`).
Resolution rules:

* per logical page, the intact copy with the **highest epoch** wins;
  equal epochs (an uncommitted clean's shadow copies) prefer healthy
  segments, then the **lowest sequence number** — the shadow-paging
  original — so an uncommitted clean resolves to "never happened";
* a copy whose payload CRC mismatches its stamp (a torn program) is
  demoted in favour of the previous version; a slot whose OOB itself
  is unreadable carries no identity and is treated as garbage;
* each position's physical home is the claimant segment holding the
  most winners; losing claimants are erased back into the spare pool,
  and winners stranded outside their position's primary segment are
  re-queued through the write buffer like any interrupted flush.

With a checkpoint, segments whose erase count matches the captured one
skip straight to the captured slot records and only the tail programmed
after the capture is re-read ("roll-forward"); without one, every
programmed page in the array is scanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..cleaning.store import IN_BUFFER
from ..flash.errors import FlashError
from ..flash.oob import unpack_oob, payload_crc
from ..flash.segment import PageState
from .controller import EnvyController

__all__ = ["CleanPhase", "CleaningJournal", "CrashInjector",
           "SimulatedPowerFailure", "JournalledStore", "recover",
           "attach_journal", "RecoveryReport", "RecoveryError",
           "RecoveryMismatch", "recover_from_flash", "recover_banks",
           "verify_against_scan"]


class SimulatedPowerFailure(Exception):
    """Raised by the crash injector at the armed Flash operation."""


class CleanPhase(Enum):
    IDLE = "idle"
    COPYING = "copying"
    COMMITTED = "committed"


class CleaningJournal:
    """The battery-backed record of in-flight maintenance work."""

    def __init__(self) -> None:
        self.phase = CleanPhase.IDLE
        self.position: Optional[int] = None
        self.old_phys: Optional[int] = None
        self.new_phys: Optional[int] = None
        #: The flush being serviced when the clean started: the buffer
        #: slot is logically still owned by this page until the flush's
        #: program commits, so recovery can re-queue it.
        self.flush_page: Optional[int] = None
        self.flush_origin: Optional[int] = None

    def begin(self, position: int, old_phys: int, new_phys: int) -> None:
        self.phase = CleanPhase.COPYING
        self.position = position
        self.old_phys = old_phys
        self.new_phys = new_phys

    def commit(self) -> None:
        self.phase = CleanPhase.COMMITTED

    def clear(self) -> None:
        self.phase = CleanPhase.IDLE
        self.position = None
        self.old_phys = None
        self.new_phys = None

    def note_flush(self, page: int, origin: int) -> None:
        self.flush_page = page
        self.flush_origin = origin

    def clear_flush(self) -> None:
        self.flush_page = None
        self.flush_origin = None


def attach_journal(system: EnvyController) -> CleaningJournal:
    """Enable journalled cleaning on a controller.

    Returns the journal (creating and instrumenting on first call).
    The store's ``clean`` records its phase transitions, and every Flash
    program/erase first calls ``system.crash_hook`` (if set) so an
    injector can cut the power at any operation.
    """
    store = system.store
    if store.journal is not None:
        return store.journal
    journal = CleaningJournal()
    store.journal = journal
    array = store.array
    # Instrument the array so every program/erase can crash first.
    for name in ("program_page", "erase_segment"):
        original = getattr(array, name)

        def instrumented(*args, _original=original, **kwargs):
            hook = getattr(system, "crash_hook", None)
            if hook is not None:
                hook()
            return _original(*args, **kwargs)

        setattr(array, name, instrumented)
    return journal


class CrashInjector:
    """Cuts the power after a chosen number of Flash operations."""

    def __init__(self, system: EnvyController,
                 journal: Optional[CleaningJournal] = None) -> None:
        self.system = system
        self.journal = journal if journal is not None \
            else attach_journal(system)
        self._countdown: Optional[int] = None
        system.crash_hook = self._tick

    def arm(self, after_operations: int) -> None:
        """Crash on the Nth upcoming Flash program/erase (1-based)."""
        if after_operations < 1:
            raise ValueError("must allow at least one operation")
        self._countdown = after_operations

    def disarm(self) -> None:
        self._countdown = None

    def _tick(self) -> None:
        if self._countdown is None:
            return
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = None
            raise SimulatedPowerFailure("power lost mid-operation")


def recover(system: EnvyController,
            journal: CleaningJournal,
            verify_scan: bool = False) -> CleanPhase:
    """Power-on recovery: repair any interrupted clean.

    Returns the phase the crash interrupted (IDLE when the system was
    quiescent).  After this returns, ``system.check_consistency()``
    holds and every logical page is intact.

    ``verify_scan`` additionally reconciles the journal-recovered state
    against the array's out-of-band self-description: every
    flash-resident page's recorded epoch must match the epoch a cold
    scan would resolve for it.  (Epochs, not locations, are compared —
    the scan's tie-breaks may legitimately place an equal-epoch copy
    elsewhere.)  Raises :class:`RecoveryMismatch` on divergence.
    """
    interrupted = journal.phase
    system.power_cycle()  # volatile state (MMU cache) is gone regardless
    store = system.store
    array = store.array
    if interrupted is CleanPhase.COPYING:
        # Shadow paging: the old segment and the page table are
        # untouched, so the partial copy is garbage.  Invalidate and
        # erase it; the clean will be redone on demand.
        spare = array.segment(journal.new_phys)
        for slot in range(spare.write_pointer):
            if spare.states[slot] is PageState.VALID:
                spare.invalidate_page(slot)
        if not spare.is_erased:
            store.erase_phys(journal.new_phys)
            store.phys_erase_counts[journal.new_phys] += 1
            store.erase_count += 1
    elif interrupted is CleanPhase.COMMITTED:
        # The remap committed; only the old segment's bulk erase was
        # outstanding.  (The store's erase counters were advanced at
        # commit time, so only the physical erase is replayed.)
        old = array.segment(journal.old_phys)
        if not old.is_erased:
            for slot in range(old.write_pointer):
                if old.states[slot] is PageState.VALID:
                    old.invalidate_page(slot)
            store.erase_phys(journal.old_phys)
    journal.clear()
    _requeue_orphans(system, journal)
    if verify_scan:
        verify_against_scan(system)
    return interrupted


def _requeue_orphans(system: EnvyController,
                     journal: CleaningJournal) -> None:
    """Re-queue pages whose relocation never committed.

    Two kinds of page are in flight during maintenance work: the flush
    the controller took off the FIFO (its only copy is the staged SRAM
    data), and pages the cleaner detached from one segment but had not
    yet programmed into another (their bytes sit in the controller's
    SRAM transfer buffer — ``_pending_data``).  Real hardware keeps both
    in battery-backed staging until the receiving program commits; the
    model re-inserts them into the write buffer, from where the normal
    flush path re-homes them.
    """
    store = system.store
    default_origin = (journal.flush_origin
                      if journal.flush_origin is not None else 0)
    # The interrupted flush, if any.
    candidates = []
    if journal.flush_page is not None:
        candidates.append((journal.flush_page, default_origin))
    # Pages detached by pop_live (location cleared, not buffered).
    for page, location in enumerate(store.page_location):
        if location is None and page not in system.buffer:
            candidates.append((page, default_origin))
    for page, origin in candidates:
        location = store.page_location[page]
        if location is not None and location != (-1, -1):
            continue  # it landed after all
        if page in system.buffer:
            continue
        data = store._pending_data.pop(page, None)
        if data is None and system.store_data:
            data = bytes(system.config.page_bytes)
        while system.buffer.is_full:
            system.flush_one()
        store.page_location[page] = (-1, -1)
        system.buffer.insert(
            page, bytearray(data) if data is not None else None, origin)
        from ..sram.pagetable import Location

        system.page_table.update(page, Location.sram(page))
    journal.clear_flush()


def crash_points_in_clean(system: EnvyController,
                          position: int) -> List[int]:
    """How many Flash operations the next clean of ``position`` makes.

    Handy for tests that want to crash at every reachable point: a clean
    performs one program per (prepended + surviving) page plus one
    erase.
    """
    pos = system.store.positions[position]
    return list(range(1, pos.live_count + 2))


# ======================================================================
# Full recovery from Flash alone (no surviving SRAM)
# ======================================================================


class RecoveryError(Exception):
    """The array cannot be reconstructed (e.g. no healthy spare left)."""


class RecoveryMismatch(Exception):
    """Journal-recovered state disagrees with the array's OOB stamps."""


@dataclass
class RecoveryReport:
    """What a full-array recovery scan found and did."""

    #: "checkpoint" (rolled forward from a flash checkpoint) or
    #: "full-scan" (every programmed page re-read).
    mode: str
    #: Data segments read end to end (no usable checkpoint cache).
    segments_scanned: int = 0
    #: Page slots read through the OOB + payload path.
    pages_scanned: int = 0
    #: Id of the checkpoint rolled forward from (None on full scan).
    checkpoint_id: Optional[int] = None
    #: Metadata-segment pages read while locating the checkpoint.
    checkpoint_chunks_read: int = 0
    #: Scanned slots programmed after the checkpoint capture.
    rolled_forward_pages: int = 0
    #: Logical pages whose live copy was resolved in Flash.
    pages_reconstructed: int = 0
    #: Winners stranded outside their position's primary segment,
    #: re-queued through the write buffer.
    orphans_requeued: int = 0
    #: Extra copies of already-resolved pages (older versions and
    #: uncommitted clean shadows) that lost the epoch/seq tie-break.
    duplicates_resolved: int = 0
    #: Copies demoted because the payload CRC mismatched the stamp.
    torn_writes_demoted: int = 0
    #: Slots whose OOB region itself failed its CRC.
    oob_crc_failures: int = 0
    #: Programmed slots carrying no usable identity.
    garbage_slots: int = 0
    #: Segments erased to rebuild the spare/reserve pool.
    erases_replayed: int = 0
    #: Logical pages with no surviving copy, restored as zero pages.
    pages_zero_filled: int = 0
    #: Modelled time of the scan (reads, chunk reads, replayed erases).
    scan_ns: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


#: One parsed data slot: (logical_page, epoch, seq, position, payload_ok).
_SlotRec = Tuple[int, int, int, int, bool]


def _strip_instrumentation(array) -> None:
    """Remove per-instance wrappers (journal hooks, chaos kill points).

    They close over the dead controller; recovery must talk to the raw
    array.  Popping the instance attributes re-exposes the class
    methods.
    """
    for name in ("program_page", "erase_segment"):
        array.__dict__.pop(name, None)


def _scan_segment(array, phys: int, cached: Optional[dict],
                  report: RecoveryReport, read_cost_ns: int,
                  retries: int = 3) -> Tuple[List[Optional[_SlotRec]], int]:
    """Parse one data segment's slots; returns (records, scan_ns).

    With a usable cache entry (same erase count as the checkpoint
    capture), the captured records stand in for the slots that existed
    at capture time and only the tail is re-read — the page and its OOB
    share the wide datapath, so each re-read slot costs one read cycle.

    A CRC failure (of the OOB stamp or the payload) is re-read up to
    ``retries`` times before the copy is demoted: read disturbs are
    transient, and a scan that trusted a single read would throw away
    perfectly intact pages.  Genuinely torn or garbage slots fail every
    attempt — their stored bits are wrong, not the read.
    """
    seg = array.segment(phys)
    records: List[Optional[_SlotRec]] = []
    ns = 0
    rolled = (cached is not None
              and cached["erase_count"] == seg.erase_count)
    if rolled:
        for raw in cached["slots"][:seg.write_pointer]:
            if raw is None or raw[0] != 1:  # not a DATA stamp
                records.append(None)
                report.garbage_slots += 1
                continue
            _, page, epoch, seq, position = raw
            records.append((page, epoch, seq, position, True))
    else:
        report.segments_scanned += 1
    for slot in range(len(records), seg.write_pointer):
        report.pages_scanned += 1
        if rolled:
            report.rolled_forward_pages += 1
        rec = None
        torn = None
        for _ in range(1 + retries):
            ns += read_cost_ns
            rec = unpack_oob(array.read_oob(phys, slot))
            if rec is None or not rec.is_data:
                rec = None
                continue
            data = array.read_page(phys, slot)
            torn = payload_crc(data) != rec.payload_crc
            if not torn:
                break
        if rec is None:
            records.append(None)
            report.garbage_slots += 1
            if seg.oob[slot] is not None:
                report.oob_crc_failures += 1
            continue
        if torn:
            report.torn_writes_demoted += 1
        records.append((rec.logical_page, rec.epoch, rec.seq,
                        rec.position, not torn))
    return records, ns


def _resolve(array, seg_records: Dict[int, List[Optional[_SlotRec]]],
             num_logical: int, num_positions: int,
             report: Optional[RecoveryReport]):
    """Resolve winners and position homes from parsed slot records.

    Returns ``(winners, primary_of)`` where ``winners`` maps each
    recoverable logical page to its ``(epoch, seq, phys, slot,
    position)`` and ``primary_of`` maps a physical segment to the
    position it is the primary home of.
    """
    candidates: Dict[int, list] = {}
    for phys, records in seg_records.items():
        bad = array.segment(phys).is_bad
        for slot, rec in enumerate(records):
            if rec is None or not rec[4]:
                continue
            page, epoch, seq, position, _ = rec
            if not (0 <= page < num_logical
                    and 0 <= position < num_positions):
                if report is not None:
                    report.garbage_slots += 1
                continue
            candidates.setdefault(page, []).append(
                (epoch, bad, seq, phys, slot, position))
    winners: Dict[int, Tuple[int, int, int, int, int]] = {}
    for page, cands in candidates.items():
        # Highest epoch; then healthy over bad; then the shadow-paging
        # original (lowest seq) so uncommitted cleans roll back.
        cands.sort(key=lambda c: (-c[0], c[1], c[2]))
        epoch, _, seq, phys, slot, position = cands[0]
        winners[page] = (epoch, seq, phys, slot, position)
        if report is not None:
            report.duplicates_resolved += len(cands) - 1
    # --- which physical segment is each position's primary home? ------
    claimants: Dict[int, list] = {}
    winner_slots: Dict[int, set] = {}
    for _, (e, s, phys, slot, pos) in winners.items():
        winner_slots.setdefault(phys, set()).add(slot)
    for phys, records in seg_records.items():
        if array.segment(phys).is_bad:
            continue  # a retired segment can never be a live home
        parsed = [r for r in records if r is not None]
        if not parsed:
            continue
        claims = [r[3] for r in parsed
                  if 0 <= r[3] < num_positions]
        if not claims:
            continue
        claim = max(set(claims), key=lambda p: (claims.count(p), -p))
        min_seq = min(r[2] for r in parsed)
        claimants.setdefault(claim, []).append(
            (len(winner_slots.get(phys, ())), min_seq, phys))
    primary_of: Dict[int, int] = {}
    for position, cands in claimants.items():
        cands.sort(key=lambda c: (-c[0], c[1]))
        primary_of[cands[0][2]] = position
    return winners, primary_of


def recover_from_flash(array, config, policy=None,
                       store_data: Optional[bool] = None,
                       use_checkpoint: bool = True):
    """Rebuild a whole controller from the Flash array alone.

    The battery is assumed dead: no page table, no write buffer, no
    journal.  Returns ``(controller, report)``; the controller passes
    ``check_consistency()`` and holds, for every logical page, the
    newest copy whose program completed (torn and corrupted copies
    demote to their predecessors).  Pages whose every copy is lost come
    back zero-filled, and winners stranded outside their position's
    primary segment are re-flushed through the write buffer before this
    returns, so the recovered state is entirely flash-resident.

    ``use_checkpoint=False`` forces a full scan even when a checkpoint
    is present (the benchmark uses this to measure the cadence/scan
    trade-off).
    """
    _strip_instrumentation(array)
    array.fault_listeners.clear()
    cfg = config
    if store_data is None:
        store_data = array.store_data
    num_positions = cfg.flash.num_segments
    num_logical = cfg.logical_pages
    ckpt_segments = cfg.effective_checkpoint_segments
    metadata_phys = set(range(array.num_segments - ckpt_segments,
                              array.num_segments))
    plan = cfg.fault_plan
    ecc_on = (cfg.ecc_enabled if cfg.ecc_enabled is not None
              else plan is not None and not plan.is_zero())
    read_cost_ns = array.read_time_ns() + (cfg.ecc_check_ns if ecc_on
                                           else 0)
    # --- 1. latest checkpoint, if any ---------------------------------
    state = None
    holder = -1
    chunks_read = 0
    if use_checkpoint and ckpt_segments:
        from .checkpoint import read_latest_checkpoint

        state, chunks_read, holder = read_latest_checkpoint(
            array, metadata_phys)
    report = RecoveryReport(
        mode="checkpoint" if state is not None else "full-scan",
        checkpoint_id=state["checkpoint_id"] if state else None,
        checkpoint_chunks_read=chunks_read)
    scan_ns = chunks_read * array.read_time_ns()
    # --- 2. parse every data segment ----------------------------------
    seg_records: Dict[int, List[Optional[_SlotRec]]] = {}
    for phys in range(array.num_segments):
        if phys in metadata_phys:
            continue
        cached = state["segments"][phys] if state is not None else None
        records, ns = _scan_segment(array, phys, cached, report,
                                    read_cost_ns,
                                    retries=cfg.program_retries)
        seg_records[phys] = records
        scan_ns += ns
    # --- 3. resolve winners and position homes ------------------------
    winners, primary_of = _resolve(array, seg_records, num_logical,
                                   num_positions, report)
    report.pages_reconstructed = len(winners)
    # --- 4. classify winners; read stranded data before any erase -----
    mapped: Dict[int, Tuple[int, int, int]] = {}   # page -> (pos, slot, epoch)
    orphans: List[Tuple[int, Optional[bytes], int, int]] = []
    for page, (epoch, seq, phys, slot, position) in winners.items():
        if primary_of.get(phys) == position:
            mapped[page] = (position, slot, epoch)
        else:
            data = array.read_page(phys, slot) if store_data else None
            scan_ns += array.read_time_ns()
            orphans.append((page, data, position, epoch))
    orphans.sort(key=lambda o: o[0])
    report.orphans_requeued = len(orphans)
    # --- 5. erase garbage segments, rebuild states, pick the pool -----
    retired = {phys for phys in range(array.num_segments)
               if array.segment(phys).is_bad}
    for phys in list(seg_records):
        seg = array.segment(phys)
        if phys in primary_of or phys in retired or seg.is_erased:
            continue
        seg.rebuild_states(set())  # every slot is dead; clear the marks
        try:
            scan_ns += array.erase_segment(phys)
            report.erases_replayed += 1
        except FlashError:
            retired.add(phys)
    for phys, position in primary_of.items():
        live = {slot for page, (pos, slot, _) in mapped.items()
                if pos == position}
        array.segment(phys).rebuild_states(live)
    for phys in retired:
        if phys not in metadata_phys and phys not in primary_of:
            array.segment(phys).rebuild_states(set())
    leftovers = [phys for phys in range(array.num_segments)
                 if phys not in metadata_phys and phys not in retired
                 and phys not in primary_of]
    unclaimed = [p for p in range(num_positions)
                 if p not in primary_of.values()]
    for position in unclaimed:
        home = next((phys for phys in leftovers
                     if array.segment(phys).is_erased), None)
        if home is None:
            raise RecoveryError(
                f"no erased segment left to home position {position}")
        leftovers.remove(home)
        primary_of[home] = position
    spare = None
    for phys in leftovers:
        if array.segment(phys).is_erased and (
                spare is None or array.segment(phys).erase_count
                > array.segment(spare).erase_count):
            spare = phys
    if spare is None:
        raise RecoveryError("no erased segment left for the spare")
    reserves = sorted(phys for phys in leftovers if phys != spare)
    # --- 6. build the controller over the surviving array -------------
    ctrl = EnvyController(cfg, policy, store_data, _array=array,
                          _skip_format=True)
    store = ctrl.store
    position_phys = [None] * num_positions
    position_slots: List[List[int]] = [[] for _ in range(num_positions)]
    for phys, position in primary_of.items():
        position_phys[position] = phys
        # Dead and unreadable slots keep a sentinel entry so the slot
        # run mirrors the physical write pointer exactly.
        position_slots[position] = [
            rec[0] if rec is not None else 0
            for rec in seg_records.get(phys, ())]
    page_location: List[Optional[Tuple[int, int]]] = [None] * num_logical
    for page, (position, slot, _) in mapped.items():
        page_location[page] = (position, slot)
    zero_filled = []
    for page in range(num_logical):
        if page not in winners:
            zero_filled.append(page)
            page_location[page] = IN_BUFFER
    for page, _, _, _ in orphans:
        page_location[page] = IN_BUFFER
    report.pages_zero_filled = len(zero_filled)
    store.restore_layout(position_slots, position_phys, page_location,
                         spare)
    store.phys_erase_counts = [array.segment(phys).erase_count
                               for phys in range(array.num_segments)]
    store.retired_phys = set(retired)
    store.reserve_phys = list(reserves)
    # The membership sets were replaced wholesale; drop the derived
    # active/wear caches restore_layout just primed.
    store.rebuild_derived()
    if ctrl.bad_blocks is not None:
        ctrl.bad_blocks.reserve = list(reserves)
        for phys in sorted(retired):
            ctrl.bad_blocks.retired.setdefault(phys, "recovered")
    # --- 7. counters, epochs, page table ------------------------------
    max_epoch = max_seq = 0
    for records in seg_records.values():
        for rec in records:
            if rec is not None:
                max_epoch = max(max_epoch, rec[1])
                max_seq = max(max_seq, rec[2])
    ctrl.page_table.write_epoch = max_epoch + 1
    store.seq_counter = max_seq + 1
    if state is not None:
        ctrl.page_table.write_epoch = max(ctrl.page_table.write_epoch,
                                          state["write_epoch"])
        store.seq_counter = max(store.seq_counter, state["seq_counter"])
    from ..sram.pagetable import Location

    for page, (position, slot, epoch) in mapped.items():
        store.page_epochs[page] = epoch
        ctrl.page_table.update(page, Location.flash(position, slot),
                               epoch=epoch)
    if state is not None:
        _restore_history(ctrl, state)
    # --- 8. re-flush stranded winners and lost pages ------------------
    for page, data, origin, epoch in orphans:
        while ctrl.buffer.is_full:
            ctrl.flush_one()
        ctrl.buffer.insert(page, bytearray(data) if data is not None
                           else (bytearray(cfg.page_bytes) if store_data
                                 else None), origin)
        ctrl.page_table.update(page, Location.sram(page))
    for page in zero_filled:
        while ctrl.buffer.is_full:
            ctrl.flush_one()
        ctrl.buffer.insert(page, bytearray(cfg.page_bytes) if store_data
                           else None, 0)
        ctrl.page_table.update(page, Location.sram(page))
    ctrl.drain()
    ctrl.mmu.flush()
    report.scan_ns = scan_ns
    ctrl.metrics.reset()
    ctrl.metrics.charge("recovery", scan_ns)
    ctrl.last_recovery_report = report
    return ctrl, report


def recover_banks(arrays, config, oracles=None, policy=None):
    """Coordinate independent whole-bank recoveries across a shard pool.

    The service's shards share nothing at runtime, and recovery honours
    the same invariant: each bank is rebuilt by
    :func:`recover_from_flash` from **its own array alone** — this
    helper only sequences the scans and aggregates their reports, it
    never moves state between banks.  ``arrays`` is the per-bank Flash
    arrays in bank order; ``config`` is the (shared, static) per-bank
    geometry.

    ``oracles``, when given, is a per-bank ``{logical_page: bytes}``
    commit oracle (see :func:`repro.core.chaos.attach_commit_oracle`);
    every recovered bank is then byte-compared against its own oracle,
    with unlogged pages expected to read as zeros.

    Returns ``(controllers, summaries, mismatches)``:

    * ``controllers`` — the recovered :class:`EnvyController` per bank
      (each already ``check_consistency``-verified);
    * ``summaries`` — one dict per bank: ``bank``, ``mode``
      (checkpoint / full-scan), ``pages_reconstructed``, ``scan_ns``,
      plus ``committed_pages`` / ``mismatches`` counts when oracles
      were supplied;
    * ``mismatches`` — every ``(bank, logical_page)`` whose recovered
      bytes differ from that bank's oracle (empty without oracles).
    """
    from .chaos import recovered_page_bytes

    if oracles is not None and len(oracles) != len(arrays):
        raise ValueError("need exactly one oracle per bank")
    controllers: List[EnvyController] = []
    summaries: List[dict] = []
    mismatches: List[Tuple[int, int]] = []
    zeros = bytes(config.page_bytes)
    for bank, array in enumerate(arrays):
        recovered, scan = recover_from_flash(array, config, policy=policy)
        recovered.check_consistency()
        entry = {
            "bank": bank,
            "mode": scan.mode,
            "pages_reconstructed": scan.pages_reconstructed,
            "scan_ns": scan.scan_ns,
        }
        if oracles is not None:
            oracle = oracles[bank]
            bad = 0
            for page in range(config.logical_pages):
                want = oracle.get(page)
                if want is None:
                    want = zeros
                if recovered_page_bytes(recovered, page) != want:
                    bad += 1
                    mismatches.append((bank, page))
            entry["committed_pages"] = len(oracle)
            entry["mismatches"] = bad
        controllers.append(recovered)
        summaries.append(entry)
    return controllers, summaries, mismatches


def _restore_history(ctrl, state: dict) -> None:
    """Install the checkpoint's statistics — state a scan cannot see."""
    store = ctrl.store
    for name, value in state["counters"].items():
        if hasattr(store, name):
            setattr(store, name, value)
    for position, saved in zip(store.positions, state["positions"]):
        position.clean_count = saved["clean_count"]
        position.last_clean_seq = saved["last_clean_seq"]
        position.avg_clean_interval = saved["avg_clean_interval"]
        position.last_clean_utilization = saved["last_clean_utilization"]
        position.product = saved["product"]
    policy_state = state.get("policy") or {}
    if policy_state.get("name") == ctrl.policy.name:
        from ..cleaning.hybrid import HybridPolicy

        if isinstance(ctrl.policy, HybridPolicy) \
                and "partitions" in policy_state:
            for part, saved in zip(ctrl.policy.partitions,
                                   policy_state["partitions"]):
                part.active = saved["active"]
                part.next_victim = saved["next_victim"]
                part.clean_count = saved["clean_count"]
                part.last_clean_seq = saved["last_clean_seq"]
                part.avg_clean_interval = saved["avg_clean_interval"]
                part.product = saved["product"]
        for attr in ("_active", "_next_victim"):
            if attr in policy_state and hasattr(ctrl.policy, attr):
                setattr(ctrl.policy, attr, policy_state[attr])
    leveler = state.get("leveler")
    if leveler:
        ctrl.leveler.swap_count = leveler["swap_count"]
        ctrl.leveler._last_swap_erase_count = leveler["last_swap"]
    if ctrl.checkpointer is not None:
        ctrl.checkpointer.checkpoint_id = state["checkpoint_id"]


def verify_against_scan(system: EnvyController) -> None:
    """Reconcile a journal-recovered system with its OOB stamps.

    Re-derives each page's winning epoch straight from the stored OOB
    images (model introspection — no fault-path reads, no time charged)
    and checks that every flash-resident page's recorded epoch matches.
    Raises :class:`RecoveryMismatch` on any divergence.
    """
    store = system.store
    array = store.array
    cfg = system.config
    seg_records: Dict[int, List[Optional[_SlotRec]]] = {}
    for phys in range(array.num_segments):
        if phys in store.metadata_phys:
            continue
        seg = array.segment(phys)
        records: List[Optional[_SlotRec]] = []
        for slot in range(seg.write_pointer):
            rec = unpack_oob(seg.oob[slot])
            if rec is None or not rec.is_data:
                records.append(None)
                continue
            ok = True
            if store.stamp_oob and array.store_data:
                ok = payload_crc(seg.data[slot]) == rec.payload_crc
            records.append((rec.logical_page, rec.epoch, rec.seq,
                            rec.position, ok))
        seg_records[phys] = records
    winners, _ = _resolve(array, seg_records, cfg.logical_pages,
                          cfg.flash.num_segments, None)
    for page, loc in enumerate(store.page_location):
        if loc is None or loc == IN_BUFFER:
            continue
        recorded = store.page_epochs[page]
        if not recorded:
            continue  # pre-OOB layout (formatting, stamping disabled)
        won = winners.get(page)
        if won is None:
            raise RecoveryMismatch(
                f"page {page} is mapped to flash but no intact copy "
                f"resolves from the OOB scan")
        if won[0] != recorded:
            raise RecoveryMismatch(
                f"page {page}: scan resolves epoch {won[0]} but the "
                f"page table records epoch {recorded}")
