"""Host-access tracing for the controller.

Wraps an :class:`~repro.core.controller.EnvyController` so every host
read and write is recorded as ``(op, address, length, nanoseconds)``.
Traces serve three purposes:

* debugging — see exactly what an application does to storage;
* analysis — derive page-level write traces for the policy simulator
  (via :meth:`AccessTrace.page_writes`), closing the loop between a real
  application run and the Section 4 cleaning experiments;
* verification — the TPC-A trace-generator tests use the same mechanism
  to prove the synthetic access stream matches the real database's.

The tracer is a transparent proxy: reads and writes behave identically,
and every other attribute passes through to the wrapped controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..faults.plan import FaultEvent
from ..obs.events import FAULT_PREFIX

__all__ = ["AccessRecord", "AccessTrace", "TracingController"]


@dataclass(frozen=True)
class AccessRecord:
    """One host access: 'r' or 'w', byte address, length, latency."""

    op: str
    address: int
    length: int
    ns: int


class AccessTrace:
    """The recorded access stream plus derived views."""

    def __init__(self, page_bytes: int) -> None:
        self.page_bytes = page_bytes
        self.records: List[AccessRecord] = []
        #: Device fault events observed while tracing — ECC corrections,
        #: retries, retirements, checkpoint failures
        #: (``checkpoint_disabled``, ``checkpoint_erase_failed``) —
        #: interleaved with the host accesses that triggered them.
        self.faults: List[FaultEvent] = []

    def append(self, op: str, address: int, length: int,
               ns: int) -> None:
        self.records.append(AccessRecord(op, address, length, ns))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def reads(self) -> List[AccessRecord]:
        return [record for record in self.records if record.op == "r"]

    def writes(self) -> List[AccessRecord]:
        return [record for record in self.records if record.op == "w"]

    def pages_touched(self) -> set:
        touched = set()
        for record in self.records:
            first = record.address // self.page_bytes
            last = (record.address + max(0, record.length - 1)) \
                // self.page_bytes
            touched.update(range(first, last + 1))
        return touched

    def page_writes(self) -> List[int]:
        """The write stream at page granularity, in order.

        Feed this to :class:`~repro.workloads.trace.TraceWorkload` to
        replay a real application's write pattern through the policy
        simulator.
        """
        pages = []
        for record in self.writes():
            first = record.address // self.page_bytes
            last = (record.address + max(0, record.length - 1)) \
                // self.page_bytes
            pages.extend(range(first, last + 1))
        return pages

    def total_ns(self) -> int:
        return sum(record.ns for record in self.records)

    def fault_counts(self) -> dict:
        """Fault events by kind (empty when no faults were observed)."""
        counts: dict = {}
        for event in self.faults:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def summary(self) -> str:
        reads = self.reads()
        writes = self.writes()
        text = (f"{len(reads)} reads + {len(writes)} writes over "
                f"{len(self.pages_touched())} pages, "
                f"{self.total_ns():,} ns of access time")
        if self.faults:
            parts = ", ".join(f"{kind} x{n}" for kind, n
                              in sorted(self.fault_counts().items()))
            text += f"; faults: {parts}"
        return text


class TracingController:
    """Transparent tracing proxy around a controller."""

    def __init__(self, controller,
                 on_access: Optional[Callable] = None) -> None:
        self._controller = controller
        self.trace = AccessTrace(controller.config.page_bytes)
        self._on_access = on_access
        self.enabled = True
        # Record device fault events (ECC corrections, retries, bad
        # blocks) alongside the accesses that triggered them.  They
        # arrive over the controller's event bus as ``fault.*`` marks —
        # the same channel every other observer uses — with a direct
        # array subscription only as a fallback for bus-less wrappees.
        events = getattr(controller, "events", None)
        if events is not None:
            events.subscribe(self._record_fault_event, prefix=FAULT_PREFIX)
        else:
            array = getattr(controller, "array", None)
            if array is not None and hasattr(array, "fault_listeners"):
                array.fault_listeners.append(self._record_fault)

    def _record_fault_event(self, event) -> None:
        """Rebuild the typed FaultEvent from a ``fault.*`` bus mark."""
        if self.enabled:
            data = event.data or {}
            self.trace.faults.append(FaultEvent(
                event.kind[len(FAULT_PREFIX):],
                int(data.get("segment", -1)),
                int(data.get("op_index", 0)),
                str(data.get("detail", ""))))

    def _record_fault(self, event) -> None:
        if self.enabled:
            self.trace.faults.append(event)

    # ------------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        data, _ = self.read_timed(address, length)
        return data

    def read_timed(self, address: int, length: int) -> Tuple[bytes, int]:
        data, ns = self._controller.read_timed(address, length)
        if self.enabled:
            self.trace.append("r", address, length, ns)
            if self._on_access is not None:
                self._on_access("r", address, length, ns)
        return data, ns

    def write(self, address: int, data: bytes) -> int:
        ns = self._controller.write(address, data)
        if self.enabled:
            self.trace.append("w", address, len(data), ns)
            if self._on_access is not None:
                self._on_access("w", address, len(data), ns)
        return ns

    # ------------------------------------------------------------------

    def pause(self) -> None:
        """Stop recording (pass-through continues)."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        self.trace = AccessTrace(self._controller.config.page_bytes)

    def __getattr__(self, name: str):
        # Everything else (metrics, buffer, drain, view, ...) passes
        # through to the wrapped controller.
        return getattr(self._controller, name)
