"""TPC-A database substrate: layout, records, B-trees, the database.

Implements Section 5.2's data model as a working database over eNVy's
memory-mapped storage API.
"""

from .arena import Arena, ArenaError
from .btree import BTree, BTreeError
from .kvstore import KVError, KVStore
from .layout import BTreeGeometry, TpcaLayout
from .records import BALANCE_OFFSET, RECORD_BYTES, BalanceRecord
from .tpca_db import TpcaDatabase, TransactionResult

__all__ = [
    "TpcaLayout",
    "BTreeGeometry",
    "BTree",
    "BTreeError",
    "Arena",
    "ArenaError",
    "KVStore",
    "KVError",
    "BalanceRecord",
    "RECORD_BYTES",
    "BALANCE_OFFSET",
    "TpcaDatabase",
    "TransactionResult",
]
