"""A simple region allocator for eNVy's linear address space.

Data structures living inside eNVy (B-trees, record arrays, application
state) need somewhere to put themselves.  ``Arena`` carves a window of
the address space into allocations with a bump pointer plus a free list
with first-fit reuse and coalescing — enough memory management for the
library's own structures and for applications that want malloc-like
behaviour over persistent memory.

The arena's bookkeeping is deliberately host-side (plain Python state):
persistence of the *allocator* is an application concern (snapshot it,
rebuild it from your own headers, or allocate append-only), mirroring
how the paper's applications manage their own layouts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["Arena", "ArenaError"]


class ArenaError(Exception):
    """Raised for invalid frees or exhaustion."""


class Arena:
    """First-fit allocator over ``[base, base + size)``."""

    def __init__(self, base: int, size: int,
                 alignment: int = 8) -> None:
        if size <= 0:
            raise ValueError("arena needs positive size")
        if alignment < 1 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        self.base = base
        self.size = size
        self.alignment = alignment
        #: Sorted list of (address, length) holes.
        self._free: List[Tuple[int, int]] = [(base, size)]
        #: Live allocations: address -> length.
        self._allocated: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _align(self, value: int) -> int:
        mask = self.alignment - 1
        return (value + mask) & ~mask

    def allocate(self, length: int) -> int:
        """Return the address of a fresh block of at least ``length``."""
        if length <= 0:
            raise ValueError("allocation must be positive")
        needed = self._align(length)
        for index, (address, hole) in enumerate(self._free):
            if hole >= needed:
                remainder = hole - needed
                if remainder:
                    self._free[index] = (address + needed, remainder)
                else:
                    del self._free[index]
                self._allocated[address] = needed
                return address
        raise ArenaError(
            f"out of space: need {needed} bytes, largest hole is "
            f"{max((h for _, h in self._free), default=0)}")

    def free(self, address: int) -> None:
        """Return a block to the arena (coalescing neighbours)."""
        try:
            length = self._allocated.pop(address)
        except KeyError:
            raise ArenaError(f"address {address} is not allocated")
        self._free.append((address, length))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for hole_address, hole_length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == hole_address:
                merged[-1] = (merged[-1][0],
                              merged[-1][1] + hole_length)
            else:
                merged.append((hole_address, hole_length))
        self._free = merged

    # ------------------------------------------------------------------

    def __call__(self, length: int) -> int:
        """Arenas are callable so BTree(allocate=arena) just works."""
        return self.allocate(length)

    @property
    def used_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def largest_hole(self) -> int:
        return max((length for _, length in self._free), default=0)

    def check_invariants(self) -> None:
        """Free holes and allocations tile the arena exactly."""
        spans = sorted(list(self._free)
                       + [(a, l) for a, l in self._allocated.items()])
        cursor = self.base
        for address, length in spans:
            if address < cursor:
                raise ArenaError(f"overlap at {address}")
            cursor = address + length
        if cursor > self.base + self.size:
            raise ArenaError("spans exceed the arena")
        if self.used_bytes + self.free_bytes != self.size:
            raise ArenaError("accounting mismatch")
