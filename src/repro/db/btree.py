"""A B-tree stored in eNVy's linear memory (Section 5.2, Figure 12).

"The simulator implements each index tree as a B-Tree with 32 entries
per node."  This is the real data structure: nodes are serialised into
the byte-addressable eNVy space and every probe is an actual memory read
through the controller, so index searches exercise the same storage path
the paper's simulated database does.

Two construction modes:

* :meth:`BTree.bulk_load` — build a packed tree for keys 0..n-1 in the
  deterministic layout of :class:`~repro.db.layout.BTreeGeometry`.  This
  is how the TPC-A database is created, and it makes the tree's access
  pattern predictable enough for the trace generator to mirror.
* :meth:`BTree.insert` — ordinary top-down insertion with node splits
  into space from an allocator, for use as a general-purpose index.

Node format (16-byte header + 32 x 16-byte entries = 528 bytes):

    count (2) | leaf flag (1) | padding (13) | [key (8) | value (8)] x 32

For interior nodes ``value`` is the child node's address; for leaves it
is the user value (the TPC-A database stores record addresses).
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator, List, Optional, Tuple

from .layout import ENTRY_BYTES, NODE_HEADER_BYTES, BTreeGeometry

__all__ = ["BTree", "BTreeError"]

_HEADER = struct.Struct("<HB13x")
_ENTRY = struct.Struct("<qq")


class BTreeError(Exception):
    """Raised for malformed trees or failed operations."""


class _Node:
    """In-memory image of one node (serialised on every store)."""

    __slots__ = ("address", "count", "leaf", "keys", "values")

    def __init__(self, address: int, leaf: bool) -> None:
        self.address = address
        self.leaf = leaf
        self.count = 0
        self.keys: List[int] = []
        self.values: List[int] = []


class BTree:
    """A fanout-32 B-tree over a byte-addressable memory object.

    ``memory`` must provide ``read(address, length) -> bytes`` and
    ``write(address, data)`` — the :class:`~repro.core.controller.
    EnvySystem` interface.
    """

    def __init__(self, memory, root_address: int, fanout: int = 32,
                 allocate: Optional[Callable[[int], int]] = None) -> None:
        if fanout < 3:
            raise ValueError("fanout must be at least 3")
        self.memory = memory
        self.fanout = fanout
        self.node_bytes = NODE_HEADER_BYTES + fanout * ENTRY_BYTES
        self.root_address = root_address
        self._allocate = allocate

    # ------------------------------------------------------------------
    # Node (de)serialisation
    # ------------------------------------------------------------------

    def _load(self, address: int) -> _Node:
        raw = self.memory.read(address, self.node_bytes)
        count, leaf = _HEADER.unpack_from(raw)
        if count > self.fanout:
            raise BTreeError(f"node at {address} has count {count} "
                             f"> fanout {self.fanout}")
        node = _Node(address, bool(leaf))
        node.count = count
        offset = NODE_HEADER_BYTES
        for _ in range(count):
            key, value = _ENTRY.unpack_from(raw, offset)
            node.keys.append(key)
            node.values.append(value)
            offset += ENTRY_BYTES
        return node

    def _store(self, node: _Node) -> None:
        parts = [_HEADER.pack(len(node.keys), int(node.leaf))]
        for key, value in zip(node.keys, node.values):
            parts.append(_ENTRY.pack(key, value))
        free = self.fanout - len(node.keys)
        parts.append(b"\x00" * (free * ENTRY_BYTES))
        self.memory.write(node.address, b"".join(parts))

    def _new_node(self, leaf: bool) -> _Node:
        if self._allocate is None:
            raise BTreeError("tree has no allocator; use bulk_load or "
                             "construct with allocate=")
        return _Node(self._allocate(self.node_bytes), leaf)

    @classmethod
    def create(cls, memory, root_address: int, fanout: int = 32,
               allocate: Optional[Callable[[int], int]] = None) -> "BTree":
        """Initialise an empty tree (a zero-count leaf root) and return it."""
        tree = cls(memory, root_address, fanout, allocate)
        root = _Node(root_address, leaf=True)
        tree._store(root)
        return tree

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, memory, geometry: BTreeGeometry,
                  value_of: Callable[[int], int]) -> "BTree":
        """Build a packed tree for keys 0..n-1 at ``geometry``'s layout.

        ``value_of(key)`` supplies each leaf value (e.g. the record
        address).  Interior levels are written fully packed so that the
        node visited for any key is computable arithmetically — the
        property the TPC-A trace generator relies on.
        """
        tree = cls(memory, geometry.base_address, geometry.fanout)
        fanout = geometry.fanout
        depth = geometry.depth
        for level in range(depth - 1, -1, -1):
            nodes = geometry.nodes_in_level(level)
            span = fanout ** (depth - 1 - level)
            for index in range(nodes):
                node = _Node(geometry.node_address(level, index),
                             leaf=(level == depth - 1))
                first_key = index * span * fanout
                for slot in range(fanout):
                    key = first_key + slot * span
                    if key >= geometry.num_keys:
                        break
                    node.keys.append(key)
                    if node.leaf:
                        node.values.append(value_of(key))
                    else:
                        child = geometry.node_address(
                            level + 1, index * fanout + slot)
                        node.values.append(child)
                tree._store(node)
        return tree

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, key: int) -> Optional[int]:
        """Return the value stored for ``key``, or None."""
        address = self.root_address
        while True:
            node = self._load(address)
            if node.count == 0:
                return None
            index = self._position(node, key)
            if node.leaf:
                if index < node.count and node.keys[index] == key:
                    return node.values[index]
                return None
            address = node.values[self._child_for(node, key, index)]

    @staticmethod
    def _position(node: _Node, key: int) -> int:
        """Index of the first key >= ``key`` (binary search)."""
        lo, hi = 0, node.count
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @staticmethod
    def _child_for(node: _Node, key: int, index: int) -> int:
        """Child slot covering ``key`` in an interior node.

        Interior keys are the minimum keys of their subtrees, so descend
        into the last child whose separator key is <= the target.
        """
        if index == node.count or node.keys[index] != key:
            index = max(0, index - 1)
        return index

    def update_value(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing key; False if absent."""
        address = self.root_address
        while True:
            node = self._load(address)
            if node.count == 0:
                return False
            index = self._position(node, key)
            if node.leaf:
                if index < node.count and node.keys[index] == key:
                    node.values[index] = value
                    self._store(node)
                    return True
                return False
            address = node.values[self._child_for(node, key, index)]

    # ------------------------------------------------------------------
    # Insert (general-purpose mode)
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert or update ``key``; splits full nodes top-down."""
        root = self._load(self.root_address)
        if root.count == self.fanout:
            # Split the root: move its contents to a fresh node and make
            # the root an interior node over the two halves.  The root
            # address never changes, so callers can keep it.
            left = self._new_node(root.leaf)
            right = self._new_node(root.leaf)
            mid = root.count // 2
            left.keys, left.values = root.keys[:mid], root.values[:mid]
            right.keys, right.values = root.keys[mid:], root.values[mid:]
            left.count, right.count = len(left.keys), len(right.keys)
            self._store(left)
            self._store(right)
            root.leaf = False
            root.keys = [left.keys[0], right.keys[0]]
            root.values = [left.address, right.address]
            root.count = 2
            self._store(root)
        self._insert_nonfull(root, key, value)

    def _insert_nonfull(self, node: _Node, key: int, value: int) -> None:
        while True:
            index = self._position(node, key)
            if node.leaf:
                if index < node.count and node.keys[index] == key:
                    node.values[index] = value
                else:
                    node.keys.insert(index, key)
                    node.values.insert(index, value)
                    node.count += 1
                self._store(node)
                return
            child_index = self._child_for(node, key, index)
            child = self._load(node.values[child_index])
            if child.count == self.fanout:
                child, node = self._split_child(node, child_index, child,
                                                key)
                continue
            node = child

    def _split_child(self, parent: _Node, child_index: int, child: _Node,
                     key: int) -> Tuple[_Node, _Node]:
        """Split a full child; returns (descend_into, parent)."""
        sibling = self._new_node(child.leaf)
        mid = child.count // 2
        sibling.keys = child.keys[mid:]
        sibling.values = child.values[mid:]
        sibling.count = len(sibling.keys)
        child.keys = child.keys[:mid]
        child.values = child.values[:mid]
        child.count = len(child.keys)
        self._store(child)
        self._store(sibling)
        # Refresh the left half's separator: the leftmost child's
        # separator can go stale (keys below it are clamped into it),
        # and a stale separator equal to the new sibling's would make
        # the smaller keys unreachable.
        parent.keys[child_index] = child.keys[0]
        parent.keys.insert(child_index + 1, sibling.keys[0])
        parent.values.insert(child_index + 1, sibling.address)
        parent.count += 1
        self._store(parent)
        descend = sibling if key >= sibling.keys[0] else child
        return descend, parent

    # ------------------------------------------------------------------
    # Delete and range scan
    # ------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent.

        Lazy structural policy: the entry leaves its leaf but nodes are
        not merged or rebalanced, so interior separators stay valid and
        search/insert keep working.  Fill factor degrades under heavy
        deletion — acceptable for the index workloads here (TPC-A never
        deletes), and the classic trade log-structured systems make.
        """
        address = self.root_address
        while True:
            node = self._load(address)
            if node.count == 0:
                return False
            index = self._position(node, key)
            if node.leaf:
                if index < node.count and node.keys[index] == key:
                    del node.keys[index]
                    del node.values[index]
                    node.count -= 1
                    self._store(node)
                    return True
                return False
            address = node.values[self._child_for(node, key, index)]

    def range_scan(self, low: int, high: int
                   ) -> Iterator[Tuple[int, int]]:
        """Yield (key, value) for low <= key < high, in key order.

        Walks only the subtrees whose separator ranges intersect the
        query — the standard pruned descent.
        """
        if high <= low:
            return
        yield from self._scan(self.root_address, low, high)

    def _scan(self, address: int, low: int,
              high: int) -> Iterator[Tuple[int, int]]:
        node = self._load(address)
        if node.leaf:
            for key, value in zip(node.keys, node.values):
                if low <= key < high:
                    yield key, value
            return
        for index in range(node.count):
            # Child index covers [keys[index], keys[index + 1]).
            child_low = node.keys[index]
            child_high = (node.keys[index + 1]
                          if index + 1 < node.count else None)
            if child_high is not None and child_high <= low:
                continue
            if child_low >= high and index > 0:
                break
            yield from self._scan(node.values[index], low, high)

    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate all (key, value) pairs in key order."""
        yield from self._walk(self.root_address)

    def _walk(self, address: int) -> Iterator[Tuple[int, int]]:
        node = self._load(address)
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for child in node.values:
            yield from self._walk(child)

    def check_invariants(self) -> None:
        """Keys sorted within and across nodes; counts within fanout."""
        previous = None
        for key, _ in self.items():
            if previous is not None and key <= previous:
                raise BTreeError(f"keys out of order: {previous} then {key}")
            previous = key
