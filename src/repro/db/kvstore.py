"""A persistent key-value store on eNVy.

The introduction's pitch is that a word-addressable persistent memory
"simplifies data access routines ... Substantial reductions in code size
and in instruction pathlengths can result."  This module is that claim
as a component: a complete KV store in a couple hundred lines, because
the storage layer already provides persistence, atomic page-table
commits, wear leveling and crash recovery.

Layout inside the arena-managed region:

* every record is ``[key_len u16 | value_len u32 | key | value]``,
  allocated from the :class:`~repro.db.arena.Arena`;
* a fanout-32 :class:`~repro.db.btree.BTree` maps ``hash64(key)`` to the
  head of a collision chain; chain links (``next_record u64``) prefix
  each record so distinct keys sharing a hash still resolve.

Updates are copy-on-write at the record level: a put writes a fresh
record and repoints the index, so a torn update can never corrupt the
previous value — the same shadow discipline the controller uses for
pages.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from .arena import Arena
from .btree import BTree

__all__ = ["KVStore", "KVError"]

_HEADER = struct.Struct("<QHI")  # next_record, key_len, value_len
MAX_KEY_BYTES = 1 << 14
MAX_VALUE_BYTES = 1 << 26
_NIL = 0  # arena addresses start past the index, so 0 is free as nil


def hash64(key: bytes) -> int:
    """FNV-1a, folded to a positive 63-bit int (BTree keys are i64)."""
    value = 0xCBF29CE484222325
    for byte in key:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value & 0x7FFFFFFFFFFFFFFF


class KVError(Exception):
    """Raised for malformed keys/values or storage exhaustion."""


class KVStore:
    """Hash-indexed KV store over a byte-addressable memory."""

    def __init__(self, memory, base: int = 0, size: int = None,
                 fanout: int = 32) -> None:
        if size is None:
            if not hasattr(memory, "size_bytes"):
                raise ValueError("size required when the memory does "
                                 "not report its size")
            size = memory.size_bytes - base
        self.memory = memory
        # Region plan: [index root | arena].  The index grows through
        # the same arena, so one allocator covers everything.
        self.arena = Arena(base, size, alignment=8)
        root = self.arena.allocate(BTree(memory, 0, fanout).node_bytes)
        self.index = BTree.create(memory, root, fanout=fanout,
                                  allocate=self.arena)
        self.count = 0

    # ------------------------------------------------------------------
    # Record encoding
    # ------------------------------------------------------------------

    def _write_record(self, key: bytes, value: bytes,
                      next_record: int) -> int:
        length = _HEADER.size + len(key) + len(value)
        try:
            address = self.arena.allocate(length)
        except Exception as exc:
            raise KVError(f"out of space storing {len(value)}-byte "
                          f"value") from exc
        self.memory.write(address, _HEADER.pack(next_record, len(key),
                                                len(value)) + key + value)
        return address

    def _read_record(self, address: int
                     ) -> Tuple[int, bytes, bytes]:
        header = self.memory.read(address, _HEADER.size)
        next_record, key_len, value_len = _HEADER.unpack(header)
        body = self.memory.read(address + _HEADER.size,
                                key_len + value_len)
        return next_record, bytes(body[:key_len]), bytes(body[key_len:])

    @staticmethod
    def _check_key(key: bytes) -> bytes:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise KVError("keys must be non-empty bytes")
        if len(key) > MAX_KEY_BYTES:
            raise KVError(f"key longer than {MAX_KEY_BYTES} bytes")
        return bytes(key)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        key = self._check_key(key)
        if len(value) > MAX_VALUE_BYTES:
            raise KVError(f"value longer than {MAX_VALUE_BYTES} bytes")
        value = bytes(value)
        bucket = hash64(key)
        head = self.index.search(bucket) or _NIL
        # Walk the chain: replace in place (copy-on-write the record) if
        # the key exists, else prepend.
        previous = _NIL
        cursor = head
        while cursor != _NIL:
            next_record, existing_key, _ = self._read_record(cursor)
            if existing_key == key:
                replacement = self._write_record(key, value, next_record)
                if previous == _NIL:
                    self.index.insert(bucket, replacement)
                else:
                    self._set_next(previous, replacement)
                self.arena.free(cursor)
                return
            previous = cursor
            cursor = next_record
        record = self._write_record(key, value, head)
        self.index.insert(bucket, record)
        self.count += 1

    def get(self, key: bytes) -> Optional[bytes]:
        key = self._check_key(key)
        cursor = self.index.search(hash64(key)) or _NIL
        while cursor != _NIL:
            next_record, existing_key, value = self._read_record(cursor)
            if existing_key == key:
                return value
            cursor = next_record
        return None

    def delete(self, key: bytes) -> bool:
        key = self._check_key(key)
        bucket = hash64(key)
        head = self.index.search(bucket) or _NIL
        previous = _NIL
        cursor = head
        while cursor != _NIL:
            next_record, existing_key, _ = self._read_record(cursor)
            if existing_key == key:
                if previous == _NIL:
                    if next_record == _NIL:
                        self.index.delete(bucket)
                    else:
                        self.index.insert(bucket, next_record)
                else:
                    self._set_next(previous, next_record)
                self.arena.free(cursor)
                self.count -= 1
                return True
            previous = cursor
            cursor = next_record
        return False

    def _set_next(self, record: int, next_record: int) -> None:
        self.memory.write(record, struct.pack("<Q", next_record))

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.count

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs (hash order, chains in place)."""
        for _, head in self.index.items():
            cursor = head
            while cursor != _NIL:
                cursor, key, value = self._read_record(cursor)
                yield key, value

    def stats(self) -> dict:
        return {
            "keys": self.count,
            "arena_used": self.arena.used_bytes,
            "arena_free": self.arena.free_bytes,
        }
