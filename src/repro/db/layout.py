"""Address-space layout of the TPC-A database inside eNVy (Section 5.2).

The database is three record arrays (branch, teller, account — 100-byte
balance records) plus three B-tree indexes with 32 entries per node
(Figure 12).  This module computes every address *deterministically from
the configuration*, so the real database (:mod:`repro.db.tpca_db`) and
the trace generator the timed simulator uses
(:mod:`repro.workloads.tpca`) are guaranteed to touch the same pages —
a property the integration tests check explicitly.

Index trees are laid out for a bulk load of the full key range
0..n-1: leaves hold up to 32 sorted keys; each upper level packs 32
children per node.  Node *i* of level *l* (level 0 = root) covers keys
``i * 32**(depth-l)`` onward, so the search path for a key is pure
arithmetic — no pointers needed to predict it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.config import TpcParams

__all__ = ["BTreeGeometry", "TpcaLayout"]

#: Bytes per B-tree entry: 8-byte key + 8-byte value/child pointer.
ENTRY_BYTES = 16
#: Node header: entry count (2), leaf flag (1), padding (13) = 16 bytes.
NODE_HEADER_BYTES = 16
WORD_BYTES = 8


@dataclass(frozen=True)
class BTreeGeometry:
    """Static geometry of one bulk-loaded B-tree."""

    base_address: int
    num_keys: int
    fanout: int

    @property
    def node_bytes(self) -> int:
        return NODE_HEADER_BYTES + self.fanout * ENTRY_BYTES

    @property
    def depth(self) -> int:
        """Number of levels (root inclusive); matches Figure 12."""
        if self.num_keys <= 1:
            return 1
        levels = 1
        capacity = self.fanout
        while capacity < self.num_keys:
            capacity *= self.fanout
            levels += 1
        return levels

    def nodes_in_level(self, level: int) -> int:
        """Nodes in ``level`` (0 = root, depth-1 = leaves)."""
        span = self.fanout ** (self.depth - 1 - level)
        return -(-self.num_keys // (span * self.fanout)) if span else 0

    @property
    def total_nodes(self) -> int:
        return sum(self.nodes_in_level(l) for l in range(self.depth))

    @property
    def total_bytes(self) -> int:
        return self.total_nodes * self.node_bytes

    def level_base(self, level: int) -> int:
        """Address of the first node of ``level`` (root stored first)."""
        offset = sum(self.nodes_in_level(l) for l in range(level))
        return self.base_address + offset * self.node_bytes

    def node_address(self, level: int, index: int) -> int:
        return self.level_base(level) + index * self.node_bytes

    def search_path(self, key: int) -> List[int]:
        """Node addresses visited looking up ``key`` (root to leaf)."""
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} outside 0..{self.num_keys - 1}")
        path = []
        for level in range(self.depth):
            span = self.fanout ** (self.depth - 1 - level) * self.fanout
            index = key // span if span else key
            path.append(self.node_address(level, index))
        return path

    def slot_in_leaf(self, key: int) -> int:
        """Entry index of ``key`` within its leaf node."""
        return key % self.fanout

    @staticmethod
    def probe_offsets(node_address: int, target_slot: int,
                      entries: int) -> List[int]:
        """Addresses of the key words a binary search reads in one node.

        Deterministic bisection over the sorted entries; the final probe
        lands on the target slot.  These are the word reads the host
        issues while walking a node (about log2(32) + 1 of them).
        """
        if entries <= 0:
            return []
        lo, hi = 0, entries
        probes = []
        while lo < hi - 1:
            mid = (lo + hi) // 2
            probes.append(mid)
            if target_slot < mid:
                hi = mid
            else:
                lo = mid
        if lo not in probes:
            probes.append(lo)
        return [node_address + NODE_HEADER_BYTES + p * ENTRY_BYTES
                for p in probes]

    def child_slot(self, key: int, level: int) -> int:
        """Child/entry index followed for ``key`` at ``level``."""
        span = self.fanout ** (self.depth - 1 - level)
        return (key // span) % self.fanout


@dataclass(frozen=True)
class TpcaLayout:
    """Complete address map of the TPC-A database."""

    params: TpcParams

    # --- record arrays -------------------------------------------------

    @property
    def branch_base(self) -> int:
        return 0

    @property
    def teller_base(self) -> int:
        return (self.branch_base
                + self.params.num_branches * self.params.record_bytes)

    @property
    def account_base(self) -> int:
        return (self.teller_base
                + self.params.num_tellers * self.params.record_bytes)

    def branch_address(self, branch: int) -> int:
        self._check(branch, self.params.num_branches, "branch")
        return self.branch_base + branch * self.params.record_bytes

    def teller_address(self, teller: int) -> int:
        self._check(teller, self.params.num_tellers, "teller")
        return self.teller_base + teller * self.params.record_bytes

    def account_address(self, account: int) -> int:
        self._check(account, self.params.num_accounts, "account")
        return self.account_base + account * self.params.record_bytes

    @staticmethod
    def _check(index: int, limit: int, kind: str) -> None:
        if not 0 <= index < limit:
            raise KeyError(f"{kind} {index} outside 0..{limit - 1}")

    # --- index trees ----------------------------------------------------

    @property
    def branch_tree(self) -> BTreeGeometry:
        base = (self.account_base
                + self.params.num_accounts * self.params.record_bytes)
        return BTreeGeometry(base, self.params.num_branches,
                             self.params.btree_fanout)

    @property
    def teller_tree(self) -> BTreeGeometry:
        branch = self.branch_tree
        return BTreeGeometry(branch.base_address + branch.total_bytes,
                             self.params.num_tellers,
                             self.params.btree_fanout)

    @property
    def account_tree(self) -> BTreeGeometry:
        teller = self.teller_tree
        return BTreeGeometry(teller.base_address + teller.total_bytes,
                             self.params.num_accounts,
                             self.params.btree_fanout)

    @property
    def total_bytes(self) -> int:
        tree = self.account_tree
        return tree.base_address + tree.total_bytes

    def fits_in(self, logical_bytes: int) -> bool:
        return self.total_bytes <= logical_bytes

    @classmethod
    def sized_for(cls, logical_bytes: int,
                  params: TpcParams = None,
                  fill_fraction: float = 0.96) -> "TpcaLayout":
        """Scale the database to ``fill_fraction`` of the logical space.

        Mirrors Section 5.2 ("The database can be scaled to fit any
        storage system using the ratios described above"): the 2 GB paper
        system manages 15.5 million accounts, i.e. the account records
        dominate and fill nearly all of the 80% live space.
        """
        params = params or TpcParams()
        budget = int(logical_bytes * fill_fraction)
        accounts = budget // (params.record_bytes + 2)  # + index overhead
        while accounts > 0:
            layout = cls(params.scaled_to_accounts(accounts))
            if layout.total_bytes <= budget:
                return layout
            accounts = int(accounts * 0.98)
        raise ValueError("logical space too small for any database")
