"""Fixed-size balance records (Section 5.2).

"Balance information for each bank, teller, and account is kept in the
form of a 100 byte record."  The layout puts the fields the transaction
touches first — id, then the 8-byte balance at offset 8 (the word the
trace generator writes) — followed by bookkeeping fields and padding out
to exactly 100 bytes, standing in for the address/comment filler of the
TPC-A schema.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["BalanceRecord", "RECORD_BYTES", "BALANCE_OFFSET"]

RECORD_BYTES = 100
BALANCE_OFFSET = 8

#: id (8) | balance (8) | parent id (8) | update count (8) = 32 bytes,
#: followed by 68 bytes of padding/filler.
_HEADER = struct.Struct("<qqqq")
_PAD = RECORD_BYTES - _HEADER.size


@dataclass
class BalanceRecord:
    """One branch, teller or account record."""

    record_id: int
    balance: int = 0
    #: Owning teller for accounts, owning branch for tellers, -1 for
    #: branches.
    parent_id: int = -1
    update_count: int = 0

    def pack(self) -> bytes:
        """Serialise to exactly 100 bytes."""
        return _HEADER.pack(self.record_id, self.balance, self.parent_id,
                            self.update_count) + b"\x00" * _PAD

    @classmethod
    def unpack(cls, raw: bytes) -> "BalanceRecord":
        if len(raw) < _HEADER.size:
            raise ValueError(f"record needs at least {_HEADER.size} bytes")
        record_id, balance, parent_id, update_count = _HEADER.unpack(
            raw[:_HEADER.size])
        return cls(record_id, balance, parent_id, update_count)

    def apply_delta(self, delta: int) -> None:
        """The TPC-A balance update."""
        self.balance += delta
        self.update_count += 1
