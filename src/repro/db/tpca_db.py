"""The TPC-A database running on eNVy (Section 5.2).

A working implementation of the benchmark's data model on top of the
memory-mapped storage API: branch/teller/account balance records packed
into the linear address space, three bulk-loaded B-tree indexes, and the
TPC-A transaction ("changing the balance of an individual account and
updating the corresponding bank and teller records"), which searches all
three trees and modifies all three records.

This is the component the paper's introduction motivates: a database
whose data access routines use plain loads and stores with "no need to
be concerned with disk block boundaries" — compare
:meth:`TpcaDatabase.transaction` with what the same operation costs
through a block device.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.config import TpcParams
from .btree import BTree
from .layout import TpcaLayout
from .records import BALANCE_OFFSET, BalanceRecord

__all__ = ["TpcaDatabase", "TransactionResult"]


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of one TPC-A transaction."""

    account: int
    teller: int
    branch: int
    delta: int
    account_balance: int
    teller_balance: int
    branch_balance: int


class TpcaDatabase:
    """Branches, tellers, accounts and their indexes inside eNVy."""

    def __init__(self, memory, params: Optional[TpcParams] = None) -> None:
        """``memory`` is an EnvySystem (or anything with read/write)."""
        self.memory = memory
        self.params = params or TpcParams()
        self.layout = TpcaLayout(self.params)
        if hasattr(memory, "size_bytes") and \
                self.layout.total_bytes > memory.size_bytes:
            raise ValueError(
                f"database needs {self.layout.total_bytes} bytes but the "
                f"array exposes {memory.size_bytes}; scale the accounts "
                f"down (TpcParams.scaled_to_accounts)")
        self.branch_index: Optional[BTree] = None
        self.teller_index: Optional[BTree] = None
        self.account_index: Optional[BTree] = None
        self.transactions_run = 0
        self._initial_balance = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, initial_balance: int = 1000) -> None:
        """Create all records and bulk-load the three indexes."""
        params = self.params
        layout = self.layout
        self._initial_balance = initial_balance
        for branch in range(params.num_branches):
            record = BalanceRecord(branch, initial_balance)
            self.memory.write(layout.branch_address(branch), record.pack())
        for teller in range(params.num_tellers):
            record = BalanceRecord(teller, initial_balance,
                                   parent_id=teller
                                   // params.tellers_per_branch)
            self.memory.write(layout.teller_address(teller), record.pack())
        for account in range(params.num_accounts):
            record = BalanceRecord(account, initial_balance,
                                   parent_id=account
                                   // params.accounts_per_teller)
            self.memory.write(layout.account_address(account),
                              record.pack())
        self.branch_index = BTree.bulk_load(
            self.memory, layout.branch_tree, layout.branch_address)
        self.teller_index = BTree.bulk_load(
            self.memory, layout.teller_tree, layout.teller_address)
        self.account_index = BTree.bulk_load(
            self.memory, layout.account_tree, layout.account_address)

    def _require_loaded(self) -> None:
        if self.account_index is None:
            raise RuntimeError("database not loaded; call load() first")

    # ------------------------------------------------------------------
    # The TPC-A transaction
    # ------------------------------------------------------------------

    def transaction(self, account: int, delta: int) -> TransactionResult:
        """Apply a balance change to an account, its teller and branch.

        All three records are found through their index trees (as the
        paper's simulator does) and updated in place with plain memory
        writes; the controller's copy-on-write machinery makes the
        updates persistent.
        """
        self._require_loaded()
        params = self.params
        teller = min(account // params.accounts_per_teller,
                     params.num_tellers - 1)
        branch = teller // params.tellers_per_branch
        balances = []
        for index, key in ((self.account_index, account),
                           (self.teller_index, teller),
                           (self.branch_index, branch)):
            address = index.search(key)
            if address is None:
                raise KeyError(f"record {key} missing from index")
            record = BalanceRecord.unpack(
                self.memory.read(address, self.params.record_bytes))
            record.apply_delta(delta)
            # Write back only the fields that changed (balance and
            # update count live in one aligned span).
            self.memory.write(address + BALANCE_OFFSET,
                              record.pack()[BALANCE_OFFSET:32])
            balances.append(record.balance)
        self.transactions_run += 1
        return TransactionResult(account, teller, branch, delta,
                                 balances[0], balances[1], balances[2])

    def run(self, count: int, seed: Optional[int] = None,
            max_delta: int = 1000) -> int:
        """Run ``count`` random transactions; returns net balance moved."""
        self._require_loaded()
        rng = random.Random(seed)
        net = 0
        for _ in range(count):
            account = rng.randrange(self.params.num_accounts)
            delta = rng.randint(-max_delta, max_delta)
            self.transaction(account, delta)
            net += delta
        return net

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def account_balance(self, account: int) -> int:
        self._require_loaded()
        address = self.account_index.search(account)
        if address is None:
            raise KeyError(f"account {account} not found")
        return BalanceRecord.unpack(
            self.memory.read(address, self.params.record_bytes)).balance

    def teller_balance(self, teller: int) -> int:
        self._require_loaded()
        address = self.teller_index.search(teller)
        if address is None:
            raise KeyError(f"teller {teller} not found")
        return BalanceRecord.unpack(
            self.memory.read(address, self.params.record_bytes)).balance

    def branch_balance(self, branch: int) -> int:
        self._require_loaded()
        address = self.branch_index.search(branch)
        if address is None:
            raise KeyError(f"branch {branch} not found")
        return BalanceRecord.unpack(
            self.memory.read(address, self.params.record_bytes)).balance

    def check_consistency(self) -> None:
        """TPC-A invariant: balance deltas roll up the hierarchy exactly.

        Every transaction applies one delta to an account, its teller and
        its branch, so (relative to the initial load) a teller's balance
        change equals the sum of its accounts' changes, and a branch's
        equals the sum of its tellers'.
        """
        self._require_loaded()
        params = self.params
        init = self._initial_balance
        teller_delta = [0] * params.num_tellers
        for account in range(params.num_accounts):
            teller = min(account // params.accounts_per_teller,
                         params.num_tellers - 1)
            teller_delta[teller] += self.account_balance(account) - init
        branch_delta = [0] * params.num_branches
        for teller in range(params.num_tellers):
            change = self.teller_balance(teller) - init
            if change != teller_delta[teller]:
                raise AssertionError(
                    f"teller {teller}: balance moved by {change} but its "
                    f"accounts moved by {teller_delta[teller]}")
            branch_delta[teller // params.tellers_per_branch] += change
        for branch in range(params.num_branches):
            change = self.branch_balance(branch) - init
            if change != branch_delta[branch]:
                raise AssertionError(
                    f"branch {branch}: balance moved by {change} but its "
                    f"tellers moved by {branch_delta[branch]}")
