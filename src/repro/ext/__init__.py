"""Hardware extensions of Section 6: parallel banks, atomic transactions."""

from .parallel import FlushBatch, ParallelFlushScheduler
from .transactions import Transaction, TransactionError, TransactionManager

__all__ = [
    "ParallelFlushScheduler",
    "FlushBatch",
    "TransactionManager",
    "Transaction",
    "TransactionError",
]
