"""Parallel bank operations (Section 6, "Hardware Extensions").

"An obvious example is to perform multiple program and erase operations
at the same time to different banks of Flash memory.  The order in which
pages are flushed from the write buffer does not affect correctness so
it is easy to select pages that can be written in parallel. ... With the
cleaner executing 4 to 8 concurrent programming operations, the average
time to flush a page can drop from 4us to less than 1us."

The scheduler below implements the page-selection side of that claim: it
scans the write buffer in FIFO order, predicts which bank each entry's
flush will program (the cleaning policy determines the destination
segment, and segments map to banks), and packs entries into batches of
bank-disjoint operations.  A batch completes in one program time instead
of one per page, so the effective per-page flush time is
``program_ns / batch_size``.

Erasures parallelise the same way: segments in different banks can erase
concurrently, which lets multiple cleaning operations overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cleaning.fifo import FifoPolicy
from ..cleaning.greedy import GreedyPolicy
from ..cleaning.hybrid import HybridPolicy
from ..core.controller import EnvyController
from ..sram.pagetable import Location

__all__ = ["FlushBatch", "ParallelFlushScheduler"]


@dataclass
class FlushBatch:
    """One group of simultaneous page programs on distinct banks."""

    pages: List[int]
    banks: List[int]
    #: Wall time of the parallel program step (one program time).
    time_ns: int
    #: Cleaning/erase work the batch triggered, accounted separately:
    #: cleans serialise on the cleaning processor, and the paper
    #: parallelises erasures through the same banking trick.
    overhead_ns: int = 0

    @property
    def size(self) -> int:
        return len(self.pages)


class ParallelFlushScheduler:
    """Selects bank-disjoint flushes and executes them as batches."""

    def __init__(self, controller: EnvyController,
                 max_concurrency: int = 8) -> None:
        if max_concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.controller = controller
        self.max_concurrency = max_concurrency
        self.batches_executed = 0
        self.pages_flushed = 0
        self.total_time_ns = 0
        self.total_overhead_ns = 0

    # ------------------------------------------------------------------

    def predict_bank(self, origin: int) -> int:
        """Bank the next flush with this origin would program.

        Locality-aware policies write back to the origin segment or its
        partition's active segment; greedy/FIFO write to the single
        global active segment (so they expose no flush parallelism —
        one reason the hybrid policy suits this extension).
        """
        controller = self.controller
        policy = controller.policy
        store = controller.store
        if isinstance(policy, HybridPolicy):
            position = policy.partition_of(origin).active
        elif isinstance(policy, (GreedyPolicy, FifoPolicy)):
            position = policy._active
        else:  # locality gathering: straight back to the origin
            position = origin
        return store.array.bank_of(store.positions[position].phys)

    def plan_batch(self) -> List[int]:
        """Pick up to ``max_concurrency`` buffered pages on distinct banks.

        FIFO order is respected per bank: the scan starts at the tail
        and only skips entries whose bank is already claimed, exactly
        the reordering freedom Section 6 describes.
        """
        claimed_banks = set()
        batch: List[int] = []
        for entry in self.controller.buffer.entries():
            bank = self.predict_bank(entry.origin)
            if bank in claimed_banks:
                continue
            claimed_banks.add(bank)
            batch.append(entry.logical_page)
            if len(batch) >= self.max_concurrency:
                break
        return batch

    def flush_batch(self) -> FlushBatch:
        """Flush one planned batch; returns what ran and its duration.

        The batch takes one (worst-case) program time plus any cleaning
        work its members triggered — cleans still serialise on the
        cleaning processor, so only the pure program time parallelises.
        """
        controller = self.controller
        cfg = controller.config
        pages = self.plan_batch()
        if not pages:
            raise RuntimeError("write buffer is empty; nothing to flush")
        banks = []
        extra_ns = 0
        for page in pages:
            entry = controller.buffer.remove(page)
            banks.append(self.predict_bank(entry.origin))
            before = controller.metrics.busy_ns
            flush_before = before.get("flush", 0)
            clean_before = before.get("clean", 0)
            erase_before = before.get("erase", 0)
            if controller.store_data and entry.data is not None:
                controller.store.stage_data(page, bytes(entry.data))
            controller.policy.flush(page, entry.origin)
            location = controller.store.page_location[page]
            controller.mmu.update(page, Location.flash(location[0],
                                                       location[1]))
            after = controller.metrics.busy_ns
            extra_ns += (after.get("clean", 0) - clean_before
                         + after.get("erase", 0) - erase_before)
            del flush_before
        batch = FlushBatch(pages, banks, cfg.flash.program_ns, extra_ns)
        self.batches_executed += 1
        self.pages_flushed += len(pages)
        self.total_time_ns += batch.time_ns
        self.total_overhead_ns += extra_ns
        return batch

    def drain(self, min_pages: int) -> None:
        """Flush batches until at least ``min_pages`` pages have left."""
        flushed = 0
        while flushed < min_pages and len(self.controller.buffer):
            flushed += self.flush_batch().size

    # ------------------------------------------------------------------

    @property
    def mean_flush_time_ns(self) -> float:
        """Average program time per flushed page.

        The Section 6 claim: under 1000 ns with 4-8 way concurrency,
        against the 4000 ns serial baseline.  Cleaning overhead is
        reported separately (see ``total_overhead_ns``) because it
        exists equally in the serial design.
        """
        if self.pages_flushed == 0:
            return 0.0
        return self.total_time_ns / self.pages_flushed

    @property
    def mean_batch_size(self) -> float:
        if self.batches_executed == 0:
            return 0.0
        return self.pages_flushed / self.batches_executed
