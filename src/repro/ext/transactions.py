"""Hardware atomic transaction support (Section 6).

"eNVy automatically copies all modified data from Flash to SRAM as part
of its copy-on-write mechanism.  The original data in Flash is not
destroyed, and it can be used to provide a free shadow copy.  An
application can roll back a transaction simply by copying data back from
Flash.  In order to implement this feature, the controller has to keep
track of the location of the shadow copies and protect them from being
cleaned."

:class:`TransactionManager` implements exactly that bookkeeping:

* On the first write to a page inside a transaction it records the
  page's pre-image location.  If the committed copy is still in Flash,
  the shadow is *free* — the invalidated Flash page keeps its bytes
  until its segment is erased (Section 2: superseded data stays
  readable).  If the committed copy was in the SRAM buffer, the bytes
  are snapshotted (SRAM-to-SRAM copy, one wide cycle per page).
* Shadows are protected from cleaning through the store's pre-erase
  hook: when the cleaner is about to erase a segment holding live
  shadows, the manager rescues their bytes into battery-backed SRAM
  first.  (The paper's controller would instead skip or pin the
  segment; rescuing is equivalent in behaviour and keeps the cleaner's
  victim choice unconstrained.)
* ``rollback`` writes the pre-images back through the normal write
  path; ``commit`` simply discards the bookkeeping — the new data is
  already persistent, which is the "free" in free shadow copy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.controller import EnvyController

__all__ = ["TransactionManager", "Transaction", "TransactionError"]


class TransactionError(RuntimeError):
    """Raised for invalid transaction state changes."""


class _Shadow:
    """Pre-image of one page: a Flash location or rescued bytes."""

    __slots__ = ("flash_location", "data")

    def __init__(self, flash_location: Optional[Tuple[int, int]],
                 data: Optional[bytes]) -> None:
        self.flash_location = flash_location
        self.data = data


class Transaction:
    """One open atomic transaction over an eNVy controller."""

    def __init__(self, manager: "TransactionManager") -> None:
        self._manager = manager
        self._shadows: Dict[int, _Shadow] = {}
        self.state = "open"

    # ------------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        self._require_open()
        return self._manager.controller.read(address, length)

    def write(self, address: int, data: bytes) -> int:
        """Transactional write: shadows each page before first touch."""
        self._require_open()
        manager = self._manager
        page_bytes = manager.controller.config.page_bytes
        first = address // page_bytes
        last = (address + max(0, len(data) - 1)) // page_bytes
        for page in range(first, last + 1):
            if page not in self._shadows:
                self._shadows[page] = manager._capture_shadow(page)
        return manager.controller.write(address, data)

    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Make the transaction's writes permanent (discard shadows)."""
        self._require_open()
        self.state = "committed"
        self._manager._close(self)

    def rollback(self) -> None:
        """Restore every touched page to its pre-transaction image."""
        self._require_open()
        manager = self._manager
        page_bytes = manager.controller.config.page_bytes
        for page, shadow in self._shadows.items():
            data = manager._shadow_bytes(shadow)
            manager.controller.write(page * page_bytes, data)
        self.state = "rolled-back"
        self._manager._close(self)

    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction is {self.state}")

    @property
    def pages_shadowed(self) -> int:
        return len(self._shadows)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state == "open":
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False


class TransactionManager:
    """Tracks shadow copies and guards them against cleaning."""

    def __init__(self, controller: EnvyController) -> None:
        if not controller.store_data:
            raise ValueError("transactions need a data-bearing controller")
        self.controller = controller
        self._active: Optional[Transaction] = None
        self.rescued_pages = 0
        controller.store.pre_erase_hooks.append(self._before_erase)

    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Open a transaction (one at a time; use as a context manager)."""
        if self._active is not None:
            raise TransactionError(
                "a transaction is already open; eNVy's shadow mechanism "
                "tracks one transaction at a time")
        self._active = Transaction(self)
        return self._active

    def _close(self, txn: Transaction) -> None:
        if self._active is txn:
            self._active = None

    # ------------------------------------------------------------------
    # Shadow capture and rescue
    # ------------------------------------------------------------------

    def _capture_shadow(self, page: int) -> _Shadow:
        """Record the committed pre-image of ``page``.

        If the live copy is in Flash, the upcoming copy-on-write leaves
        it behind as a free shadow — only its location is stored.  If it
        is already in the SRAM buffer, the bytes are snapshotted now.
        """
        store = self.controller.store
        location = store.page_location[page]
        if location is not None and location != (-1, -1):
            return _Shadow(location, None)
        entry = self.controller.buffer.peek(page)
        data = bytes(entry.data) if entry is not None and \
            entry.data is not None else bytes(
                self.controller.config.page_bytes)
        return _Shadow(None, data)

    def _shadow_bytes(self, shadow: _Shadow) -> bytes:
        if shadow.data is not None:
            return shadow.data
        position, slot = shadow.flash_location
        store = self.controller.store
        phys = store.positions[position].phys
        data = store.array.read_page(phys, slot)
        if data is None:
            data = bytes(self.controller.config.page_bytes)
        return data

    def _before_erase(self, position: int, phys: int) -> None:
        """Rescue shadows living in a segment that is about to erase.

        Called by the store just before the bulk erase destroys the
        superseded copies; any shadow the open transaction still needs
        is copied into battery-backed SRAM (one wide read per page).
        """
        txn = self._active
        if txn is None:
            return
        store = self.controller.store
        for shadow in txn._shadows.values():
            if shadow.data is not None or shadow.flash_location is None:
                continue
            shadow_position, slot = shadow.flash_location
            if shadow_position != position:
                continue
            data = store.array.read_page(phys, slot)
            shadow.data = (bytes(data) if data is not None
                           else bytes(self.controller.config.page_bytes))
            shadow.flash_location = None
            self.rescued_pages += 1
