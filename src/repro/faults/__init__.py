"""Device fault injection and fault-tolerance building blocks.

Everything the paper's benign failure model leaves out: a deterministic
seed-driven :class:`FaultInjector` (transient program/erase failures,
read bit flips, wear-correlated grown bad blocks), per-page SEC-DED
:class:`SecDed` error correction, and the battery-backed
:class:`BadBlockTable` that retires failing segments.  The flash layer
consults the injector; the controller wires up the defences and exposes
:meth:`~repro.core.controller.EnvyController.health_report`.
"""

from .badblocks import BadBlockTable
from .ecc import SecDed, secded_for
from .plan import FaultEvent, FaultInjector, FaultPlan, FaultStats

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FaultEvent",
    "SecDed",
    "secded_for",
    "BadBlockTable",
]
