"""Battery-backed bad-block table with a reserve segment pool.

Grown bad blocks are the one Flash fault no retry can absorb: an erase
block that stops erasing is gone for good.  Real controllers keep a
small pool of spare erase blocks and a persistent table mapping retired
blocks to their replacements; eNVy's battery-backed SRAM (which already
holds the page table and cleaning journal, Sections 3.3-3.4) is the
natural home for that table.

The model keeps the mechanism minimal: physical segments beyond the
``positions + 1 spare`` geometry are provisioned as reserves, and
:meth:`retire` swaps one in when a segment fails.  Retirement always
happens at erase time — the failing segment has just been cleaned, so
its live data already moved through the existing copy-on-write
machinery and *no data motion is needed*; only the physical identity of
the cleaner's spare changes.  Like the rest of the battery-backed
state, the table survives :meth:`~repro.core.controller.EnvyController.
power_cycle`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["BadBlockTable"]


class BadBlockTable:
    """Maps retired physical segments to reasons; pools the reserves."""

    def __init__(self) -> None:
        #: Retired physical segment -> reason ("grown_bad", "permanent",
        #: "retry_exhausted", ...).
        self.retired: Dict[int, str] = {}
        #: Fresh physical segments available as replacements, FIFO.
        self.reserve: List[int] = []
        #: Retirement order, for tracing/replay comparisons.
        self.history: List[tuple] = []

    # ------------------------------------------------------------------

    def provision(self, phys_ids) -> None:
        """Add erased physical segments to the reserve pool."""
        for phys in phys_ids:
            if phys in self.retired:
                raise ValueError(f"segment {phys} is already retired")
            self.reserve.append(phys)

    def retire(self, phys: int, reason: str) -> Optional[int]:
        """Retire ``phys``; returns a replacement or None if none left."""
        if phys in self.retired:
            raise ValueError(f"segment {phys} is already retired")
        self.retired[phys] = reason
        replacement = self.reserve.pop(0) if self.reserve else None
        self.history.append((phys, reason, replacement))
        return replacement

    def mark_factory(self, phys: int,
                     need_replacement: bool = False) -> Optional[int]:
        """Record a factory bad-block mark found during the initial scan.

        Real parts ship with bad blocks already marked in the spare
        area; the controller's format-time scan folds them into this
        table before any data lands.  When the marked segment was part
        of the active geometry (a position, the spare, or a metadata
        segment), ``need_replacement=True`` draws a reserve segment for
        the caller to swap in; a mark inside the reserve pool itself
        just shrinks the pool.
        """
        if phys in self.retired:
            raise ValueError(f"segment {phys} is already retired")
        if phys in self.reserve:
            self.reserve.remove(phys)
        self.retired[phys] = "factory"
        replacement = None
        if need_replacement:
            replacement = self.reserve.pop(0) if self.reserve else None
        self.history.append((phys, "factory", replacement))
        return replacement

    def is_bad(self, phys: int) -> bool:
        return phys in self.retired

    # ------------------------------------------------------------------

    @property
    def retired_count(self) -> int:
        return len(self.retired)

    @property
    def reserves_remaining(self) -> int:
        return len(self.reserve)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BadBlockTable({self.retired_count} retired, "
                f"{self.reserves_remaining} reserves)")
