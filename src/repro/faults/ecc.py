"""Per-page SEC-DED error correction (extended Hamming code).

eNVy's controller already owns a wide datapath between Flash and SRAM
(Section 3.3); real controllers hang an ECC engine off that path.  This
module models one: each programmed page is encoded into a small check
word (stored out-of-band, the model of a spare area), and every read is
checked against it — a single flipped bit is corrected in place, a
two-bit burst is detected and reported as uncorrectable.

The whole page is treated as one codeword.  A 256-byte page needs 12
Hamming check bits plus one overall parity bit, 13 bits of overhead per
2048 data bits (~0.6%), in line with the SEC-DED overhead of real
NOR/NVM arrays.  The bit-parallel implementation works on the page as a
single big integer: one precomputed mask per check bit, one ``bit_count``
per parity — a handful of C-speed popcounts per read.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

__all__ = ["SecDed", "secded_for"]


class SecDed:
    """SEC-DED codec for fixed-size pages.

    The codeword layout is the classic Hamming construction: bit
    positions 1..n, powers of two hold check bits, everything else holds
    data bits in order.  Only the data travels over the faulty read
    path in this model (check words live in the controller's sidecar
    store), so the decoder maps a nonzero syndrome straight back to a
    data-bit index.
    """

    def __init__(self, data_bytes: int) -> None:
        if data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        self.data_bytes = data_bytes
        m = data_bytes * 8
        r = 1
        while (1 << r) < m + r + 1:
            r += 1
        self.num_check_bits = r
        #: Codeword positions of data bits, LSB-first (skip powers of 2).
        data_positions = [pos for pos in range(1, m + r + 1)
                          if pos & (pos - 1)][:m]
        self._masks = []
        for j in range(r):
            mask = 0
            bit = 1 << j
            for i, pos in enumerate(data_positions):
                if pos & bit:
                    mask |= 1 << i
            self._masks.append(mask)
        self._databit_of_position = {pos: i
                                     for i, pos in enumerate(data_positions)}

    # ------------------------------------------------------------------

    @property
    def code_bits(self) -> int:
        """Bits of the stored check word (Hamming bits + overall parity)."""
        return self.num_check_bits + 1

    def encode(self, data: bytes) -> int:
        """Check word for ``data``: r Hamming parities + overall parity."""
        if len(data) != self.data_bytes:
            raise ValueError(f"expected {self.data_bytes} bytes, "
                             f"got {len(data)}")
        x = int.from_bytes(data, "little")
        code = 0
        for j, mask in enumerate(self._masks):
            code |= ((x & mask).bit_count() & 1) << j
        overall = (x.bit_count() + code.bit_count()) & 1
        return code | (overall << self.num_check_bits)

    def check(self, data: bytes, code: int) -> Tuple[str, bytes, int]:
        """Verify (and correct) ``data`` against its stored check word.

        Returns ``(status, data, corrected_bits)`` where status is
        ``"ok"``, ``"corrected"`` (single-bit error fixed in the
        returned copy) or ``"uncorrectable"`` (even number of flips
        detected; the data is returned as received).
        """
        if len(data) != self.data_bytes:
            raise ValueError(f"expected {self.data_bytes} bytes, "
                             f"got {len(data)}")
        x = int.from_bytes(data, "little")
        syndrome = 0
        check = code & ((1 << self.num_check_bits) - 1)
        for j, mask in enumerate(self._masks):
            parity = (x & mask).bit_count() & 1
            if parity != ((check >> j) & 1):
                syndrome |= 1 << j
        stored_overall = (code >> self.num_check_bits) & 1
        overall = (x.bit_count() + check.bit_count()) & 1
        parity_mismatch = overall != stored_overall
        if syndrome == 0:
            if not parity_mismatch:
                return "ok", data, 0
            # Odd flip count that cancels the syndrome (3+ bits) — or a
            # flipped overall-parity bit, impossible here because check
            # words never traverse the faulty path.  Not correctable.
            return "uncorrectable", data, 0
        if parity_mismatch:
            bit = self._databit_of_position.get(syndrome)
            if bit is None or bit >= self.data_bytes * 8:
                # Syndrome points at a check-bit position: the data is
                # intact (cannot happen when only data bits flip).
                return "corrected", data, 0
            x ^= 1 << bit
            return ("corrected",
                    x.to_bytes(self.data_bytes, "little"), 1)
        # Nonzero syndrome with matching overall parity: an even number
        # of bits flipped.  SEC-DED detects but cannot correct this.
        return "uncorrectable", data, 0


@lru_cache(maxsize=8)
def secded_for(data_bytes: int) -> SecDed:
    """Shared codec instance per page size (mask setup is O(bits * r))."""
    return SecDed(data_bytes)
