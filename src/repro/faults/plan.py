"""Deterministic, seed-driven device fault injection.

The paper's failure model is deliberately benign (Section 2: wear only
stretches program/erase times, "existing data will remain readable").  A
production-scale array must also survive the faults real Flash throws at
a controller: transient program and erase failures, bit flips on the
read path, and *grown* bad blocks — erase blocks that stop erasing
altogether, at a rate that climbs with accumulated wear.

:class:`FaultPlan` describes the fault environment as a set of rates
plus a seed; :class:`FaultInjector` turns the plan into concrete
per-operation decisions.  Decisions are pure functions of
``(seed, fault kind, per-kind operation index)`` via a keyed hash, so

* the same plan replayed over the same operation sequence produces a
  byte-identical fault schedule (no hidden RNG state, no dependence on
  Python's hash randomisation), and
* fault-free operations pay nothing — a zero plan makes every decision
  method short-circuit to "no fault".

The injector is shared by :class:`~repro.flash.chip.FlashChip` (byte
granularity) and :class:`~repro.flash.array.FlashArray` (page
granularity); both consult it without changing their fault-free
signatures.  The defences — ECC, program/erase retry, bad-block
retirement — live in :mod:`repro.faults.ecc`,
:mod:`repro.faults.badblocks` and the controller path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import List, Optional, Tuple

__all__ = ["FaultPlan", "FaultInjector", "FaultStats", "FaultEvent"]


@dataclass(frozen=True)
class FaultPlan:
    """Rates (all probabilities per operation or per bit) plus a seed.

    An all-zero plan is the paper's fault model: nothing ever fails.
    ``validate`` enforces the same discipline as the config objects.
    """

    seed: int = 0
    #: Probability a single program attempt fails transiently (retry
    #: succeeds with an independent draw).
    transient_program_rate: float = 0.0
    #: Probability an erase attempt fails transiently.
    transient_erase_rate: float = 0.0
    #: Probability an erase fails permanently, retiring the block.
    permanent_erase_rate: float = 0.0
    #: Per-bit probability that a read returns a flipped bit (transient
    #: read disturb; the stored cells are unharmed).
    read_flip_rate: float = 0.0
    #: Per-page-read probability of a two-bit burst — detectable but not
    #: correctable by SEC-DED.
    double_flip_rate: float = 0.0
    #: Baseline per-erase probability that the block *grows* bad.  The
    #: effective probability is scaled by wear:
    #: ``rate * (1 + grown_bad_wear_factor * cycles/endurance)``.
    grown_bad_rate: float = 0.0
    #: Wear acceleration of the grown-bad rate (dimensionless).
    grown_bad_wear_factor: float = 1000.0

    _RATES = ("transient_program_rate", "transient_erase_rate",
              "permanent_erase_rate", "read_flip_rate",
              "double_flip_rate", "grown_bad_rate")

    def validate(self) -> None:
        for name in self._RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.grown_bad_wear_factor < 0:
            raise ValueError("grown_bad_wear_factor cannot be negative")
        if not isinstance(self.seed, int):
            raise ValueError("seed must be an integer")

    def is_zero(self) -> bool:
        """True when the plan can never produce a fault."""
        return all(getattr(self, name) == 0.0 for name in self._RATES)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The paper's failure model: no device faults at all."""
        return cls()

    @classmethod
    def light(cls, seed: int = 0) -> "FaultPlan":
        """A realistic late-life NOR array: rare transients, rare flips."""
        return cls(seed=seed, transient_program_rate=1e-5,
                   transient_erase_rate=1e-4, read_flip_rate=1e-9,
                   grown_bad_rate=1e-6)

    @classmethod
    def harsh(cls, seed: int = 0) -> "FaultPlan":
        """An abusive environment for robustness testing."""
        return cls(seed=seed, transient_program_rate=2e-3,
                   transient_erase_rate=5e-2, permanent_erase_rate=2e-3,
                   read_flip_rate=2e-7, double_flip_rate=0.0,
                   grown_bad_rate=5e-3)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or defence action, for tracing and tests."""

    kind: str
    segment: int
    op_index: int
    detail: str = ""

    def as_dict(self) -> dict:
        """Flat JSON-friendly form (the observability event payload)."""
        return {"kind": self.kind, "segment": self.segment,
                "op_index": self.op_index, "detail": self.detail}


@dataclass
class FaultStats:
    """Counters for injected faults and the defences that absorbed them."""

    program_retries: int = 0
    program_retry_exhausted: int = 0
    erase_retries: int = 0
    permanent_erase_failures: int = 0
    grown_bad_blocks: int = 0
    bad_blocks_retired: int = 0
    read_bit_flips: int = 0
    ecc_corrected_reads: int = 0
    ecc_corrected_bits: int = 0
    ecc_uncorrectable_reads: int = 0
    #: Reads returned with flipped bits while ECC was disabled.
    silent_corrupt_reads: int = 0
    endurance_overshoots: int = 0
    #: Bit flips injected into out-of-band (spare-area) reads during a
    #: recovery scan; the OOB CRC detects these and demotes the copy.
    oob_bit_flips: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-op decisions.

    Each fault kind has its own monotonically increasing operation
    index; a decision for operation *i* of kind *k* is derived from
    ``blake2b(seed:k:i)`` alone, so two runs issuing the same operation
    sequence see the same faults, independent of everything else.
    Injected faults are appended to :attr:`event_log` — two logs being
    equal is the test-suite's definition of "byte-identical schedule".
    """

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        self.active = not plan.is_zero()
        #: Per-kind operation counters (program ops, erase ops, reads).
        self.program_ops = 0
        self.erase_ops = 0
        self.read_ops = 0
        self.oob_ops = 0
        #: Injected faults in order: (kind, op_index, extra) tuples.
        self.event_log: List[Tuple] = []

    # ------------------------------------------------------------------
    # Deterministic uniform draws
    # ------------------------------------------------------------------

    def _unit(self, kind: str, index: int, salt: int = 0) -> float:
        """A uniform [0, 1) draw keyed by (seed, kind, index, salt)."""
        key = f"{self.plan.seed}:{kind}:{index}:{salt}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def _draw_int(self, kind: str, index: int, bound: int,
                  salt: int = 0) -> int:
        return int(self._unit(kind, index, salt) * bound) % bound

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def program_fails(self, segment: int) -> bool:
        """Decide one program attempt; True means a transient failure."""
        if not self.active:
            return False
        index = self.program_ops
        self.program_ops += 1
        if self.plan.transient_program_rate <= 0.0:
            return False
        failed = self._unit("program", index) < \
            self.plan.transient_program_rate
        if failed:
            self.event_log.append(("program_fail", index, segment))
        return failed

    def erase_verdict(self, segment: int, wear_fraction: float) -> str:
        """Decide one erase attempt.

        Returns ``"ok"``, ``"transient"`` (retry may succeed),
        ``"permanent"`` (the block failed outright) or ``"grown_bad"``
        (wear-correlated retirement).  Each attempt consumes one erase
        op index, so retries get independent draws.
        """
        if not self.active:
            return "ok"
        plan = self.plan
        index = self.erase_ops
        self.erase_ops += 1
        draw = self._unit("erase", index)
        if draw < plan.permanent_erase_rate:
            self.event_log.append(("erase_permanent", index, segment))
            return "permanent"
        grown_p = plan.grown_bad_rate * \
            (1.0 + plan.grown_bad_wear_factor * max(0.0, wear_fraction))
        if self._unit("grown", index) < min(1.0, grown_p):
            self.event_log.append(("grown_bad", index, segment))
            return "grown_bad"
        if draw < plan.permanent_erase_rate + plan.transient_erase_rate:
            self.event_log.append(("erase_transient", index, segment))
            return "transient"
        return "ok"

    def corrupt_read(self, data: bytes,
                     segment: int = -1) -> Tuple[bytes, int]:
        """Maybe flip bits in a copy of ``data``; returns (data, flips).

        The per-bit flip rate is aggregated to one draw per read (flip
        probabilities are tiny, so at most one independent single-bit
        flip per read is an excellent approximation); a separate draw
        models an uncorrectable two-bit burst.
        """
        if not self.active:
            return data, 0
        plan = self.plan
        index = self.read_ops
        self.read_ops += 1
        if plan.read_flip_rate <= 0.0 and plan.double_flip_rate <= 0.0:
            return data, 0
        nbits = len(data) * 8
        if nbits == 0:
            return data, 0
        flip_bits: List[int] = []
        page_p = min(1.0, plan.read_flip_rate * nbits)
        if page_p > 0.0 and self._unit("read", index) < page_p:
            flip_bits.append(self._draw_int("readpos", index, nbits))
        if plan.double_flip_rate > 0.0 and \
                self._unit("read2", index) < plan.double_flip_rate:
            first = self._draw_int("read2pos", index, nbits)
            second = self._draw_int("read2pos", index, nbits, salt=1)
            if second == first:
                second = (second + 1) % nbits
            flip_bits.extend(b for b in (first, second)
                             if b not in flip_bits)
        if not flip_bits:
            return data, 0
        corrupted = bytearray(data)
        for bit in flip_bits:
            corrupted[bit // 8] ^= 1 << (bit % 8)
        self.event_log.append(("read_flip", index, segment,
                               tuple(sorted(flip_bits))))
        return bytes(corrupted), len(flip_bits)

    def corrupt_oob(self, raw: bytes,
                    segment: int = -1) -> Tuple[bytes, int]:
        """Maybe flip a bit in a copy of an out-of-band read.

        The spare area shares the data cells' per-bit flip rate, but its
        draws come from a dedicated ``oob`` stream with its own counter:
        scanning the array during recovery must not shift the fault
        schedule the data path would otherwise see.
        """
        if not self.active:
            return raw, 0
        plan = self.plan
        index = self.oob_ops
        self.oob_ops += 1
        if plan.read_flip_rate <= 0.0 or not raw:
            return raw, 0
        nbits = len(raw) * 8
        page_p = min(1.0, plan.read_flip_rate * nbits)
        if self._unit("oob", index) >= page_p:
            return raw, 0
        bit = self._draw_int("oobpos", index, nbits)
        corrupted = bytearray(raw)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        self.event_log.append(("oob_flip", index, segment, bit))
        return bytes(corrupted), 1

    # ------------------------------------------------------------------

    def schedule_digest(self) -> str:
        """Stable digest of the fault schedule produced so far."""
        h = hashlib.blake2b(digest_size=16)
        for event in self.event_log:
            h.update(repr(event).encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(seed={self.plan.seed}, "
                f"{len(self.event_log)} faults over "
                f"{self.program_ops}p/{self.erase_ops}e/"
                f"{self.read_ops}r ops)")
