"""Flash memory substrate: chips, banks, segments and the full array.

Models the write-once, bulk-erase Flash devices of Section 2 and the wide
bank/segment organisation of Sections 3.3-3.4 (Figure 4).
"""

from .array import FlashArray, WearStats
from .bank import FlashBank
from .chip import ChipMode, Command, FlashChip
from .errors import (AddressError, BadBlockError, EnduranceExceeded,
                     EraseError, FlashError, ProgramError,
                     TransientEraseError, TransientProgramError,
                     UncorrectableDataError)
from .oob import (CHECKPOINT, DATA, OOB_BYTES, OobRecord, pack_oob,
                  payload_crc, unpack_oob)
from .segment import FlashSegment, PageState

__all__ = [
    "FlashArray",
    "WearStats",
    "FlashBank",
    "FlashChip",
    "ChipMode",
    "Command",
    "FlashSegment",
    "PageState",
    "FlashError",
    "ProgramError",
    "EraseError",
    "AddressError",
    "EnduranceExceeded",
    "TransientProgramError",
    "TransientEraseError",
    "BadBlockError",
    "UncorrectableDataError",
    "OobRecord",
    "pack_oob",
    "unpack_oob",
    "payload_crc",
    "OOB_BYTES",
    "DATA",
    "CHECKPOINT",
]
