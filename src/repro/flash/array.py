"""The complete eNVy Flash array: banks of chips, viewed as segments.

The array is the unit the controller and cleaner operate on.  It exposes

* page-granularity program / read / invalidate / erase operations with
  Flash's write-once, bulk-erase semantics enforced by
  :class:`~repro.flash.segment.FlashSegment`,
* the timing parameters of Figure 12 (100 ns reads, 4 us programs, 50 ms
  erases) including optional wear degradation, and
* wear statistics (per-segment program/erase cycles, spread, endurance
  headroom) used by the wear-leveling policy of Section 4.3 and the
  lifetime model of Section 5.5.

Physical pages are addressed either by ``(segment, page)`` pairs or by a
flat physical page number ``segment * pages_per_segment + page``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.config import FlashParams
from ..faults.plan import FaultEvent, FaultStats
from .errors import (AddressError, BadBlockError, EnduranceExceeded,
                     TransientProgramError)
from .segment import FlashSegment, PageState

__all__ = ["FlashArray", "WearStats"]


class WearStats:
    """Snapshot of program/erase wear across the array.

    The aggregates are computed once at construction — a WearStats is a
    snapshot, so repeated property access must not rescan the count
    lists (they used to, making ``wear_stats().spread`` in a loop
    quadratic).
    """

    __slots__ = ("erase_counts", "program_counts", "endurance_cycles",
                 "_min_erases", "_max_erases", "_total_erases",
                 "_total_programs", "_overshoot_cycles")

    def __init__(self, erase_counts: List[int], program_counts: List[int],
                 endurance_cycles: int) -> None:
        self.erase_counts = erase_counts
        self.program_counts = program_counts
        self.endurance_cycles = endurance_cycles
        self._min_erases = min(erase_counts)
        self._max_erases = max(erase_counts)
        self._total_erases = sum(erase_counts)
        self._total_programs = sum(program_counts)
        self._overshoot_cycles = sum(
            count - endurance_cycles for count in erase_counts
            if count > endurance_cycles)

    @property
    def min_erases(self) -> int:
        return self._min_erases

    @property
    def max_erases(self) -> int:
        return self._max_erases

    @property
    def spread(self) -> int:
        """Cycle gap between the most- and least-worn segments.

        Section 4.3 triggers a leveling swap when this exceeds 100.
        """
        return self._max_erases - self._min_erases

    @property
    def total_erases(self) -> int:
        return self._total_erases

    @property
    def total_programs(self) -> int:
        return self._total_programs

    @property
    def remaining_fraction(self) -> float:
        """Fraction of rated endurance left on the most-worn segment."""
        if self.endurance_cycles <= 0:
            return 0.0
        used = self._max_erases / self.endurance_cycles
        return max(0.0, 1.0 - used)

    @property
    def overshoot_cycles(self) -> int:
        """Erase cycles consumed beyond the rated endurance (Section 2:
        recorded, not fatal, unless ``strict_endurance`` is set)."""
        return self._overshoot_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WearStats(erases {self.min_erases}..{self.max_erases}, "
                f"spread={self.spread})")


class FlashArray:
    """A segment-addressed model of the whole Flash array."""

    def __init__(self, params: Optional[FlashParams] = None,
                 page_bytes: int = 256, store_data: bool = True,
                 spare_segments: int = 0) -> None:
        """``spare_segments`` adds segments beyond the nominal geometry.

        The controller models the always-erased cleaning target
        (Section 3.4) as one extra segment so that the data segments can
        be partitioned exactly; the capacity difference versus floating
        the spare inside the nominal array is under 1% at paper scale.
        """
        self.params = params or FlashParams()
        self.params.validate()
        if self.params.segment_bytes % page_bytes:
            raise ValueError("segment size must be a multiple of page size")
        if spare_segments < 0:
            raise ValueError("spare_segments cannot be negative")
        self.page_bytes = page_bytes
        self.pages_per_segment = self.params.segment_bytes // page_bytes
        self.num_segments = self.params.num_segments + spare_segments
        self.store_data = store_data
        self.segments: List[FlashSegment] = [
            FlashSegment(i, self.pages_per_segment, page_bytes,
                         store_data=store_data)
            for i in range(self.num_segments)
        ]
        # --- fault-tolerance state (inert until attach_faults) --------
        #: Counters for injected faults and the defences that fired.
        self.fault_stats = FaultStats()
        #: Callbacks receiving every :class:`FaultEvent` (tracing).
        self.fault_listeners: List = []
        #: Raise :class:`EnduranceExceeded` past rated cycles instead of
        #: recording the overshoot.
        self.strict_endurance = False
        self._fault_injector = None
        self._ecc = None
        #: Stored check words, segment -> {page: code} (the model of the
        #: out-of-band spare area real parts reserve for ECC).
        self._ecc_codes: dict = {}
        self._program_retries = 3
        self._erase_retries = 3
        #: Observer for fault-driven extra work: (kind, segment, count)
        #: with kind "retry_program" / "retry_erase"; the controller
        #: charges the repeated operation times through its cost model.
        self._op_observer = None
        self._fault_event_count = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def total_pages(self) -> int:
        return self.num_segments * self.pages_per_segment

    def segment(self, index: int) -> FlashSegment:
        if not 0 <= index < self.num_segments:
            raise AddressError(f"segment {index} out of range "
                               f"(array has {self.num_segments})")
        return self.segments[index]

    def split_physical(self, physical_page: int) -> Tuple[int, int]:
        """Decompose a flat physical page number into (segment, page)."""
        if not 0 <= physical_page < self.total_pages:
            raise AddressError(f"physical page {physical_page} out of range")
        return divmod(physical_page, self.pages_per_segment)

    def join_physical(self, segment: int, page: int) -> int:
        """Compose (segment, page) into a flat physical page number."""
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        if not 0 <= page < self.pages_per_segment:
            raise AddressError(f"page {page} out of range")
        return segment * self.pages_per_segment + page

    def bank_of(self, segment: int) -> int:
        """Bank that ``segment`` physically resides in.

        Segments are striped across banks in block order: bank *b* holds
        segments ``b * segments_per_bank .. (b+1) * segments_per_bank - 1``.
        Needed by the Section 6 extension that overlaps operations on
        different banks.
        """
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        return segment // self.params.segments_per_bank

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------

    def attach_faults(self, injector=None, ecc=None,
                      program_retries: int = 3, erase_retries: int = 3,
                      op_observer=None) -> None:
        """Arm fault injection and/or the controller-side defences.

        ``injector`` is a :class:`~repro.faults.plan.FaultInjector` (or
        None for a fault-free device with ECC still active); ``ecc`` a
        :class:`~repro.faults.ecc.SecDed` codec matching the page size.
        Retry budgets bound the program-verify and erase-retry loops;
        ``op_observer(kind, segment, count)`` hears about every repeated
        operation so its time can be charged to the cost model.  The
        fault-free fast paths are untouched when nothing is attached.
        """
        if program_retries < 0 or erase_retries < 0:
            raise ValueError("retry budgets cannot be negative")
        self._fault_injector = injector if (injector is not None
                                            and injector.active) else None
        self._ecc = ecc
        self._program_retries = program_retries
        self._erase_retries = erase_retries
        self._op_observer = op_observer

    @property
    def fault_injector(self):
        return self._fault_injector

    def emit_fault(self, kind: str, segment: int, detail: str = "") -> None:
        """Publish a :class:`FaultEvent` to every registered listener."""
        self._fault_event_count += 1
        if not self.fault_listeners:
            return
        event = FaultEvent(kind, segment, self._fault_event_count, detail)
        for listener in self.fault_listeners:
            listener(event)

    def bad_segments(self) -> List[int]:
        """Physical segments retired after permanent failures."""
        return [s.segment_id for s in self.segments if s.is_bad]

    # ------------------------------------------------------------------
    # Operations (delegate to segments, return timing)
    # ------------------------------------------------------------------

    def program_page(self, segment: int, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> Tuple[int, int]:
        """Program the next page of ``segment``; return (page, time_ns).

        With a fault injector attached this is program-*verify*: a
        transiently failed attempt leaves the cells untouched and is
        retried (each retry re-consuming a program time via the op
        observer) up to the bounded retry budget, after which
        :class:`TransientProgramError` escapes to the caller.
        """
        seg = self.segment(segment)
        injector = self._fault_injector
        if injector is not None:
            failures = 0
            while injector.program_fails(segment):
                failures += 1
                self.fault_stats.program_retries += 1
                self.emit_fault("transient_program_failure", segment)
                if self._op_observer is not None:
                    self._op_observer("retry_program", segment, 1)
                if failures > self._program_retries:
                    self.fault_stats.program_retry_exhausted += 1
                    raise TransientProgramError(
                        f"segment {segment}: program failed verify "
                        f"{failures} times (budget "
                        f"{self._program_retries})")
        page = seg.program_page(data, oob)
        if self._ecc is not None and data is not None:
            self._ecc_codes.setdefault(segment, {})[page] = \
                self._ecc.encode(bytes(data))
        return page, self.program_time_ns(segment)

    def read_page(self, segment: int, page: int) -> Optional[bytes]:
        """Read one page, through the fault and ECC paths when armed.

        Injected read disturbs corrupt only the returned copy (the
        cells are unharmed, matching transient flips on a real read
        path).  With ECC attached, a single flipped bit is corrected
        and counted; multi-bit corruption is detected, counted as
        uncorrectable, and returned as-is — the caller sees exactly
        what degraded hardware would deliver.
        """
        data = self.segment(segment).read_page(page)
        if data is None:
            return data
        injector = self._fault_injector
        flips = 0
        if injector is not None:
            data, flips = injector.corrupt_read(data, segment)
            if flips:
                self.fault_stats.read_bit_flips += flips
                self.emit_fault("read_bit_flip", segment,
                                f"page={page} bits={flips}")
        if self._ecc is not None:
            code = self._ecc_codes.get(segment, {}).get(page)
            if code is not None:
                status, data, fixed = self._ecc.check(data, code)
                if status == "corrected":
                    self.fault_stats.ecc_corrected_reads += 1
                    self.fault_stats.ecc_corrected_bits += fixed
                    self.emit_fault("ecc_corrected", segment,
                                    f"page={page}")
                elif status == "uncorrectable":
                    self.fault_stats.ecc_uncorrectable_reads += 1
                    self.emit_fault("ecc_uncorrectable", segment,
                                    f"page={page}")
        elif flips:
            self.fault_stats.silent_corrupt_reads += 1
        return data

    def read_oob(self, segment: int, page: int) -> Optional[bytes]:
        """Read one page's spare-area bytes through the fault path.

        The OOB region sits in the same cells as the data, so read
        disturbs afflict it too; with an injector attached, flips are
        drawn from a dedicated ``oob`` stream (the data stream's draws
        are untouched, keeping fault schedules stable whether or not a
        scan happens).  The OOB carries its own CRC rather than ECC: a
        corrupted stamp demotes the copy, it is never trusted corrected.
        """
        raw = self.segment(segment).read_oob(page)
        if raw is None:
            return None
        injector = self._fault_injector
        if injector is not None:
            raw, flips = injector.corrupt_oob(raw, segment)
            if flips:
                self.fault_stats.oob_bit_flips += flips
                self.emit_fault("oob_bit_flip", segment,
                                f"page={page} bits={flips}")
        return raw

    def invalidate_page(self, segment: int, page: int) -> None:
        self.segment(segment).invalidate_page(page)

    def erase_segment(self, segment: int) -> int:
        """Erase ``segment``; returns the erase time in nanoseconds.

        Past the rated endurance the overshoot is recorded (or, under
        ``strict_endurance``, :class:`EnduranceExceeded` is raised).
        With a fault injector attached, transient erase failures are
        retried within the budget; a permanent or wear-correlated
        grown-bad verdict marks the segment bad and raises
        :class:`BadBlockError` so the caller can retire it.
        """
        seg = self.segment(segment)
        if seg.erase_count >= self.params.endurance_cycles:
            if self.strict_endurance:
                raise EnduranceExceeded(
                    f"segment {segment} is past its rated "
                    f"{self.params.endurance_cycles} cycles")
            self.fault_stats.endurance_overshoots += 1
        injector = self._fault_injector
        if injector is not None:
            failures = 0
            while True:
                wear = seg.erase_count / self.params.endurance_cycles
                verdict = injector.erase_verdict(segment, wear)
                if verdict == "ok":
                    break
                if verdict == "transient":
                    failures += 1
                    self.fault_stats.erase_retries += 1
                    self.emit_fault("transient_erase_failure", segment)
                    if self._op_observer is not None:
                        self._op_observer("retry_erase", segment, 1)
                    if failures <= self._erase_retries:
                        continue
                    verdict = "retry_exhausted"
                seg.mark_bad()
                if verdict == "grown_bad":
                    self.fault_stats.grown_bad_blocks += 1
                else:
                    self.fault_stats.permanent_erase_failures += 1
                self.emit_fault("bad_block", segment, verdict)
                raise BadBlockError(segment, verdict)
        time_ns = self.erase_time_ns(segment)
        seg.erase()
        self._ecc_codes.pop(segment, None)
        return time_ns

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def enable_degradation(self, program_curve=None,
                           erase_curve=None) -> None:
        """Make program/erase times wear-dependent (Section 2).

        Pass :class:`~repro.flash.endurance.DegradationCurve` instances;
        omitted curves default to the module's calibrated ones.  Once
        enabled, :meth:`program_time_ns` and :meth:`erase_time_ns`
        reflect each segment's accumulated erase cycles, so an aged
        array really is slower to maintain.
        """
        from .endurance import (ERASE_SPEC_NS, PROGRAM_SPEC_NS,
                                DegradationCurve)

        self._program_curve = program_curve or DegradationCurve(
            self.params.program_ns, PROGRAM_SPEC_NS)
        self._erase_curve = erase_curve or DegradationCurve(
            self.params.erase_ns, ERASE_SPEC_NS)

    def read_time_ns(self, segment: int = 0) -> int:
        return self.params.read_ns  # reads never degrade (Section 2)

    def program_time_ns(self, segment: int = 0) -> int:
        curve = getattr(self, "_program_curve", None)
        if curve is None:
            return self.params.program_ns
        return int(curve.time_at(self.segments[segment].erase_count))

    def erase_time_ns(self, segment: int = 0) -> int:
        curve = getattr(self, "_erase_curve", None)
        if curve is None:
            return self.params.erase_ns
        return int(curve.time_at(self.segments[segment].erase_count))

    # ------------------------------------------------------------------
    # Wear and occupancy statistics
    # ------------------------------------------------------------------

    def wear_stats(self) -> WearStats:
        return WearStats(
            erase_counts=[s.erase_count for s in self.segments],
            program_counts=[s.program_count for s in self.segments],
            endurance_cycles=self.params.endurance_cycles,
        )

    def live_pages(self) -> int:
        return sum(s.live_count for s in self.segments)

    def utilization(self) -> float:
        """Fraction of the whole array holding live data (Section 4.1)."""
        return self.live_pages() / self.total_pages

    def erased_segments(self) -> List[int]:
        return [s.segment_id for s in self.segments if s.is_erased]

    def iter_states(self, segment: int) -> Iterator[PageState]:
        return iter(self.segment(segment).states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashArray({self.num_segments} segments x "
                f"{self.pages_per_segment} pages x {self.page_bytes} B)")
