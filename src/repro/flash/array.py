"""The complete eNVy Flash array: banks of chips, viewed as segments.

The array is the unit the controller and cleaner operate on.  It exposes

* page-granularity program / read / invalidate / erase operations with
  Flash's write-once, bulk-erase semantics enforced by
  :class:`~repro.flash.segment.FlashSegment`,
* the timing parameters of Figure 12 (100 ns reads, 4 us programs, 50 ms
  erases) including optional wear degradation, and
* wear statistics (per-segment program/erase cycles, spread, endurance
  headroom) used by the wear-leveling policy of Section 4.3 and the
  lifetime model of Section 5.5.

Physical pages are addressed either by ``(segment, page)`` pairs or by a
flat physical page number ``segment * pages_per_segment + page``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.config import FlashParams
from .errors import AddressError
from .segment import FlashSegment, PageState

__all__ = ["FlashArray", "WearStats"]


class WearStats:
    """Snapshot of program/erase wear across the array."""

    __slots__ = ("erase_counts", "program_counts", "endurance_cycles")

    def __init__(self, erase_counts: List[int], program_counts: List[int],
                 endurance_cycles: int) -> None:
        self.erase_counts = erase_counts
        self.program_counts = program_counts
        self.endurance_cycles = endurance_cycles

    @property
    def min_erases(self) -> int:
        return min(self.erase_counts)

    @property
    def max_erases(self) -> int:
        return max(self.erase_counts)

    @property
    def spread(self) -> int:
        """Cycle gap between the most- and least-worn segments.

        Section 4.3 triggers a leveling swap when this exceeds 100.
        """
        return self.max_erases - self.min_erases

    @property
    def total_erases(self) -> int:
        return sum(self.erase_counts)

    @property
    def total_programs(self) -> int:
        return sum(self.program_counts)

    @property
    def remaining_fraction(self) -> float:
        """Fraction of rated endurance left on the most-worn segment."""
        if self.endurance_cycles <= 0:
            return 0.0
        used = self.max_erases / self.endurance_cycles
        return max(0.0, 1.0 - used)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WearStats(erases {self.min_erases}..{self.max_erases}, "
                f"spread={self.spread})")


class FlashArray:
    """A segment-addressed model of the whole Flash array."""

    def __init__(self, params: Optional[FlashParams] = None,
                 page_bytes: int = 256, store_data: bool = True,
                 spare_segments: int = 0) -> None:
        """``spare_segments`` adds segments beyond the nominal geometry.

        The controller models the always-erased cleaning target
        (Section 3.4) as one extra segment so that the data segments can
        be partitioned exactly; the capacity difference versus floating
        the spare inside the nominal array is under 1% at paper scale.
        """
        self.params = params or FlashParams()
        self.params.validate()
        if self.params.segment_bytes % page_bytes:
            raise ValueError("segment size must be a multiple of page size")
        if spare_segments < 0:
            raise ValueError("spare_segments cannot be negative")
        self.page_bytes = page_bytes
        self.pages_per_segment = self.params.segment_bytes // page_bytes
        self.num_segments = self.params.num_segments + spare_segments
        self.store_data = store_data
        self.segments: List[FlashSegment] = [
            FlashSegment(i, self.pages_per_segment, page_bytes,
                         store_data=store_data)
            for i in range(self.num_segments)
        ]

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def total_pages(self) -> int:
        return self.num_segments * self.pages_per_segment

    def segment(self, index: int) -> FlashSegment:
        if not 0 <= index < self.num_segments:
            raise AddressError(f"segment {index} out of range "
                               f"(array has {self.num_segments})")
        return self.segments[index]

    def split_physical(self, physical_page: int) -> Tuple[int, int]:
        """Decompose a flat physical page number into (segment, page)."""
        if not 0 <= physical_page < self.total_pages:
            raise AddressError(f"physical page {physical_page} out of range")
        return divmod(physical_page, self.pages_per_segment)

    def join_physical(self, segment: int, page: int) -> int:
        """Compose (segment, page) into a flat physical page number."""
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        if not 0 <= page < self.pages_per_segment:
            raise AddressError(f"page {page} out of range")
        return segment * self.pages_per_segment + page

    def bank_of(self, segment: int) -> int:
        """Bank that ``segment`` physically resides in.

        Segments are striped across banks in block order: bank *b* holds
        segments ``b * segments_per_bank .. (b+1) * segments_per_bank - 1``.
        Needed by the Section 6 extension that overlaps operations on
        different banks.
        """
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        return segment // self.params.segments_per_bank

    # ------------------------------------------------------------------
    # Operations (delegate to segments, return timing)
    # ------------------------------------------------------------------

    def program_page(self, segment: int, data: Optional[bytes] = None
                     ) -> Tuple[int, int]:
        """Program the next page of ``segment``; return (page, time_ns)."""
        seg = self.segment(segment)
        page = seg.program_page(data)
        return page, self.program_time_ns(segment)

    def read_page(self, segment: int, page: int) -> Optional[bytes]:
        return self.segment(segment).read_page(page)

    def invalidate_page(self, segment: int, page: int) -> None:
        self.segment(segment).invalidate_page(page)

    def erase_segment(self, segment: int) -> int:
        """Erase ``segment``; returns the erase time in nanoseconds."""
        seg = self.segment(segment)
        time_ns = self.erase_time_ns(segment)
        seg.erase()
        return time_ns

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def enable_degradation(self, program_curve=None,
                           erase_curve=None) -> None:
        """Make program/erase times wear-dependent (Section 2).

        Pass :class:`~repro.flash.endurance.DegradationCurve` instances;
        omitted curves default to the module's calibrated ones.  Once
        enabled, :meth:`program_time_ns` and :meth:`erase_time_ns`
        reflect each segment's accumulated erase cycles, so an aged
        array really is slower to maintain.
        """
        from .endurance import (ERASE_SPEC_NS, PROGRAM_SPEC_NS,
                                DegradationCurve)

        self._program_curve = program_curve or DegradationCurve(
            self.params.program_ns, PROGRAM_SPEC_NS)
        self._erase_curve = erase_curve or DegradationCurve(
            self.params.erase_ns, ERASE_SPEC_NS)

    def read_time_ns(self, segment: int = 0) -> int:
        return self.params.read_ns  # reads never degrade (Section 2)

    def program_time_ns(self, segment: int = 0) -> int:
        curve = getattr(self, "_program_curve", None)
        if curve is None:
            return self.params.program_ns
        return int(curve.time_at(self.segments[segment].erase_count))

    def erase_time_ns(self, segment: int = 0) -> int:
        curve = getattr(self, "_erase_curve", None)
        if curve is None:
            return self.params.erase_ns
        return int(curve.time_at(self.segments[segment].erase_count))

    # ------------------------------------------------------------------
    # Wear and occupancy statistics
    # ------------------------------------------------------------------

    def wear_stats(self) -> WearStats:
        return WearStats(
            erase_counts=[s.erase_count for s in self.segments],
            program_counts=[s.program_count for s in self.segments],
            endurance_cycles=self.params.endurance_cycles,
        )

    def live_pages(self) -> int:
        return sum(s.live_count for s in self.segments)

    def utilization(self) -> float:
        """Fraction of the whole array holding live data (Section 4.1)."""
        return self.live_pages() / self.total_pages

    def erased_segments(self) -> List[int]:
        return [s.segment_id for s in self.segments if s.is_erased]

    def iter_states(self, segment: int) -> Iterator[PageState]:
        return iter(self.segment(segment).states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashArray({self.num_segments} segments x "
                f"{self.pages_per_segment} pages x {self.page_bytes} B)")
