"""A bank of byte-wide Flash chips with a page-wide data path.

Section 3.3: "the Flash array is organized in banks of 256 (byte wide)
chips.  This organization allows an entire page to be transferred in just
one memory cycle."  Byte *i* of a page lives in chip *i*; page *p* of
segment *s* occupies byte ``s * block_bytes + p`` of every chip, so the
smallest independently erasable unit of a bank is one erase block across
all of its chips — a *segment* (Figure 4).

This class is the chip-accurate reference implementation of the wide data
path.  The simulators use the faster page-granularity
:class:`~repro.flash.segment.FlashSegment` bookkeeping; a property test in
the suite checks the two stay in agreement.
"""

from __future__ import annotations

from typing import List, Sequence

from .chip import FlashChip
from .errors import AddressError

__all__ = ["FlashBank"]


class FlashBank:
    """A lock-step bank of Flash chips forming page-wide segments."""

    def __init__(self, num_chips: int = 256, chip_bytes: int = 1 << 20,
                 erase_blocks_per_chip: int = 16, read_ns: int = 100,
                 program_ns: int = 4000, erase_ns: int = 50_000_000,
                 endurance_cycles: int = 1_000_000) -> None:
        self.chips: List[FlashChip] = [
            FlashChip(chip_bytes=chip_bytes,
                      erase_blocks=erase_blocks_per_chip,
                      read_ns=read_ns, program_ns=program_ns,
                      erase_ns=erase_ns, endurance_cycles=endurance_cycles)
            for _ in range(num_chips)
        ]
        self.num_chips = num_chips
        self.page_bytes = num_chips  # one byte per chip per page
        self.num_segments = erase_blocks_per_chip
        self.block_bytes = chip_bytes // erase_blocks_per_chip
        self.pages_per_segment = self.block_bytes

    # ------------------------------------------------------------------

    def _check(self, segment: int, page: int) -> None:
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        if not 0 <= page < self.pages_per_segment:
            raise AddressError(f"page {page} out of range")

    def _chip_address(self, segment: int, page: int) -> int:
        return segment * self.block_bytes + page

    # ------------------------------------------------------------------

    def program_page(self, segment: int, page: int,
                     data: Sequence[int]) -> int:
        """Program one page across all chips in parallel.

        Returns the operation time in nanoseconds: the chips program
        simultaneously, so the page takes one (possibly wear-degraded)
        byte-program time, not ``num_chips`` of them.
        """
        self._check(segment, page)
        if len(data) != self.page_bytes:
            raise ValueError(
                f"page data must be {self.page_bytes} bytes, got {len(data)}")
        address = self._chip_address(segment, page)
        time_ns = 0
        for chip, value in zip(self.chips, data):
            time_ns = max(time_ns, chip.program(address, value))
        return time_ns

    def read_page(self, segment: int, page: int) -> bytes:
        """Read one page in a single wide memory cycle."""
        self._check(segment, page)
        address = self._chip_address(segment, page)
        return bytes(chip.read(address) for chip in self.chips)

    def read_byte(self, segment: int, page: int, offset: int) -> int:
        """Read a single byte (offset selects the chip)."""
        self._check(segment, page)
        if not 0 <= offset < self.page_bytes:
            raise AddressError(f"offset {offset} out of range")
        return self.chips[offset].read(self._chip_address(segment, page))

    def erase_segment(self, segment: int) -> int:
        """Erase one block in every chip; returns the time in nanoseconds.

        All chips erase in parallel, so the wall-clock cost is a single
        block-erase time.
        """
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        time_ns = 0
        for chip in self.chips:
            time_ns = max(time_ns, chip.erase_block(segment))
        return time_ns

    # ------------------------------------------------------------------

    def segment_erase_count(self, segment: int) -> int:
        """Erase cycles of a segment (uniform across the bank's chips)."""
        if not 0 <= segment < self.num_segments:
            raise AddressError(f"segment {segment} out of range")
        counts = {chip.erase_count(segment) for chip in self.chips}
        if len(counts) != 1:
            raise AssertionError(
                "bank chips disagree on erase count; lock-step violated")
        return counts.pop()
