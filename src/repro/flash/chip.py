"""Byte-accurate model of a single Flash memory chip.

Section 2 of the paper describes the device this models: a byte-wide array
of non-volatile cells that reads like an EPROM, programs one byte at a time
in 4-10 microseconds, erases in large independently erasable blocks
(~64 KB) taking ~50 ms, and endures a limited number of program/erase
cycles after which operations merely get slower (no data is lost).

All commands go through a small Command User Interface (CUI) state
machine, mirroring the command sequences of real parts (program/verify,
erase, status, suspend).  The higher-level :class:`~repro.flash.array.
FlashArray` does not route every byte through this class — wear inside a
bank is uniform per segment, so the array keeps aggregate counters — but
the chip model is the ground truth for semantics and is exercised heavily
by the unit tests.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from .errors import (AddressError, BadBlockError, EnduranceExceeded,
                     EraseError, ProgramError, TransientEraseError,
                     TransientProgramError)

__all__ = ["FlashChip", "ChipMode", "Command"]

ERASED_BYTE = 0xFF


class ChipMode(Enum):
    """Operating mode of the chip's Command User Interface."""

    READ_ARRAY = "read_array"
    PROGRAM = "program"
    ERASE = "erase"
    ERASE_SUSPENDED = "erase_suspended"
    STATUS = "status"


class Command(Enum):
    """Commands accepted by the Command User Interface (Section 2)."""

    READ_ARRAY = 0xFF
    PROGRAM_SETUP = 0x40
    ERASE_SETUP = 0x20
    ERASE_CONFIRM = 0xD0
    ERASE_SUSPEND = 0xB0
    ERASE_RESUME = 0xD0
    READ_STATUS = 0x70
    CLEAR_STATUS = 0x50


class FlashChip:
    """A single byte-wide Flash chip with bulk-erase blocks.

    Parameters
    ----------
    chip_bytes:
        Total capacity in bytes.
    erase_blocks:
        Number of independently erasable blocks the array is divided into.
    program_ns / erase_ns:
        Nominal (data-sheet) operation times for a fresh device.
    endurance_cycles:
        Cycles for which the timing above is guaranteed.
    degradation_per_cycle:
        Fractional slow-down of program/erase per cycle, modelling the
        paper's observation that "programming method slightly degrades
        program and erase times each time these operations are executed".
    """

    def __init__(self, chip_bytes: int = 1 << 20, erase_blocks: int = 16,
                 read_ns: int = 100, program_ns: int = 4000,
                 erase_ns: int = 50_000_000, endurance_cycles: int = 1_000_000,
                 degradation_per_cycle: float = 0.0) -> None:
        if chip_bytes <= 0 or erase_blocks <= 0 or chip_bytes % erase_blocks:
            raise ValueError("chip size must divide evenly into erase blocks")
        self.chip_bytes = chip_bytes
        self.erase_blocks = erase_blocks
        self.block_bytes = chip_bytes // erase_blocks
        self.read_ns = read_ns
        self.nominal_program_ns = program_ns
        self.nominal_erase_ns = erase_ns
        self.endurance_cycles = endurance_cycles
        self.degradation_per_cycle = degradation_per_cycle

        self._cells = bytearray([ERASED_BYTE] * chip_bytes)
        self._erase_counts = [0] * erase_blocks
        self._program_counts = [0] * erase_blocks
        self._mode = ChipMode.READ_ARRAY
        self._pending_erase_block: Optional[int] = None
        self._status_ready = True
        #: Optional :class:`~repro.faults.plan.FaultInjector`; when set,
        #: program/erase/read consult it (signatures are unchanged —
        #: faults surface as the Transient*/BadBlock exceptions real
        #: firmware sees in the status register).
        self.fault_injector = None
        #: Raise :class:`EnduranceExceeded` past the rated cycles instead
        #: of silently recording the overshoot (Section 2's lenient
        #: reading is the default).
        self.strict_endurance = False
        #: Blocks retired after a permanent failure; data stays readable
        #: (Section 2) but program/erase are refused.
        self.bad_blocks: set = set()
        #: Erase operations performed past the rated cycle count.
        self.endurance_overshoots = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def block_of(self, address: int) -> int:
        """Return the erase block containing byte ``address``."""
        self._check_address(address)
        return address // self.block_bytes

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.chip_bytes:
            raise AddressError(f"byte address {address} out of range "
                               f"(chip is {self.chip_bytes} bytes)")

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.erase_blocks:
            raise AddressError(f"block {block} out of range "
                               f"(chip has {self.erase_blocks} blocks)")

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------

    @property
    def mode(self) -> ChipMode:
        return self._mode

    def read(self, address: int) -> int:
        """Read one byte.

        Reads are only defined in read-array mode; during an erase the
        caller must first suspend the operation (Section 2: commands exist
        for "suspending long operations").
        """
        self._check_address(address)
        if self._mode is ChipMode.ERASE:
            raise EraseError("chip busy erasing; suspend the erase to read")
        if self._mode is ChipMode.ERASE_SUSPENDED:
            block = self._pending_erase_block
            if block is not None and self.block_of(address) == block:
                raise EraseError("cannot read from the block being erased")
        value = self._cells[address]
        if self.fault_injector is not None:
            corrupted, flips = self.fault_injector.corrupt_read(
                bytes([value]), self.block_of(address))
            if flips:
                value = corrupted[0]
        return value

    def command(self, value: int) -> None:
        """Write a command byte to the Command User Interface."""
        try:
            cmd = Command(value)
        except ValueError as exc:
            raise FlashCommandError(value) from exc
        if cmd is Command.READ_ARRAY:
            self._mode = ChipMode.READ_ARRAY
        elif cmd is Command.PROGRAM_SETUP:
            self._mode = ChipMode.PROGRAM
        elif cmd is Command.ERASE_SETUP:
            self._mode = ChipMode.ERASE
        elif cmd is Command.READ_STATUS:
            self._mode = ChipMode.STATUS
        elif cmd is Command.CLEAR_STATUS:
            self._status_ready = True
            self._mode = ChipMode.READ_ARRAY

    # ------------------------------------------------------------------
    # Program / erase
    # ------------------------------------------------------------------

    def program(self, address: int, value: int) -> int:
        """Program one byte; returns the operation time in nanoseconds.

        Programming can only clear bits (1 -> 0).  Writing a value that
        would set any currently-cleared bit raises :class:`ProgramError`;
        this is exactly the constraint that forces the copy-on-write
        design of Section 3.1.
        """
        self._check_address(address)
        if not 0 <= value <= 0xFF:
            raise ValueError("value must be a byte")
        current = self._cells[address]
        if value & ~current:
            raise ProgramError(
                f"cannot program byte at {address}: 0x{current:02x} -> "
                f"0x{value:02x} would set bits; erase the block first")
        block = address // self.block_bytes
        if block in self.bad_blocks:
            raise BadBlockError(block, "retired")
        if self.fault_injector is not None and \
                self.fault_injector.program_fails(block):
            # The attempt consumed time but verified bad; the cells are
            # left untouched so the caller can simply retry.
            raise TransientProgramError(
                f"program at {address} failed verify; retry")
        self._cells[address] = value
        self._program_counts[block] += 1
        return self.program_time_ns(block)

    def erase_block(self, block: int) -> int:
        """Erase a block to all 0xFF; returns the time in nanoseconds."""
        self._check_block(block)
        if block in self.bad_blocks:
            raise BadBlockError(block, "retired")
        if self._erase_counts[block] >= self.endurance_cycles:
            if self.strict_endurance:
                raise EnduranceExceeded(
                    f"block {block} is past its rated "
                    f"{self.endurance_cycles} cycles")
            self.endurance_overshoots += 1
        if self.fault_injector is not None:
            wear = self._erase_counts[block] / self.endurance_cycles
            verdict = self.fault_injector.erase_verdict(block, wear)
            if verdict == "transient":
                raise TransientEraseError(
                    f"erase of block {block} failed; retry")
            if verdict in ("permanent", "grown_bad"):
                self.bad_blocks.add(block)
                raise BadBlockError(block, verdict)
        start = block * self.block_bytes
        self._cells[start:start + self.block_bytes] = (
            bytes([ERASED_BYTE]) * self.block_bytes)
        self._erase_counts[block] += 1
        self._mode = ChipMode.READ_ARRAY
        return self.erase_time_ns(block)

    def begin_erase(self, block: int) -> None:
        """Start a suspendable erase (completed by :meth:`finish_erase`)."""
        self._check_block(block)
        if self._pending_erase_block is not None:
            raise EraseError("an erase is already in progress")
        self._pending_erase_block = block
        self._mode = ChipMode.ERASE

    def suspend_erase(self) -> None:
        if self._pending_erase_block is None:
            raise EraseError("no erase in progress to suspend")
        self._mode = ChipMode.ERASE_SUSPENDED

    def resume_erase(self) -> None:
        if self._pending_erase_block is None:
            raise EraseError("no erase in progress to resume")
        self._mode = ChipMode.ERASE

    def finish_erase(self) -> int:
        """Complete the pending erase; returns the time in nanoseconds."""
        block = self._pending_erase_block
        if block is None:
            raise EraseError("no erase in progress to finish")
        self._pending_erase_block = None
        return self.erase_block(block)

    # ------------------------------------------------------------------
    # Wear and timing
    # ------------------------------------------------------------------

    def erase_count(self, block: int) -> int:
        self._check_block(block)
        return self._erase_counts[block]

    def program_count(self, block: int) -> int:
        self._check_block(block)
        return self._program_counts[block]

    def cycles_used(self, block: int) -> int:
        """Program/erase cycles consumed by ``block`` (max of the two)."""
        self._check_block(block)
        return max(self._erase_counts[block], 0)

    def within_endurance(self, block: int) -> bool:
        return self.cycles_used(block) <= self.endurance_cycles

    def _degraded(self, nominal_ns: int, block: int) -> int:
        cycles = self._erase_counts[block]
        factor = 1.0 + self.degradation_per_cycle * cycles
        return int(nominal_ns * factor)

    def program_time_ns(self, block: int) -> int:
        """Current program time for bytes in ``block``, including wear."""
        return self._degraded(self.nominal_program_ns, block)

    def erase_time_ns(self, block: int) -> int:
        """Current erase time for ``block``, including wear."""
        return self._degraded(self.nominal_erase_ns, block)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashChip({self.chip_bytes} bytes, "
                f"{self.erase_blocks} blocks)")


class FlashCommandError(ProgramError):
    """Raised for an unrecognised CUI command byte."""

    def __init__(self, value: int) -> None:
        super().__init__(f"unknown flash command 0x{value:02x}")
        self.value = value
