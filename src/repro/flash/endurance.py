"""Flash endurance and timing degradation (Section 2).

"Current Flash technology uses a programming method that slightly
degrades program and erase times each time these operations are
executed.  Each chip is guaranteed to program and erase within specific
time frames for a minimum number of cycles ... A failure of the chip is
defined as when a given write or erase operation takes more time than
allowed in the specification.  The operation might still succeed if more
time is allowed.  Also, existing data will remain readable."

And the striking anecdote: "one chip rated for 10,000 cycles programmed
in 4us and erased in 40ms after 2 million cycles, far below the
corresponding guaranteed limits of 250us and 10 seconds."

This module turns those observations into a model:

* a degradation curve — operation time as a (configurable, slightly
  super-linear) function of accumulated cycles;
* the *spec-failure* horizon — the cycle count at which an operation
  first exceeds its guaranteed limit (the paper's failure definition),
  typically far beyond the rated cycles;
* aging projections for a whole eNVy array under a sustained workload,
  using the Section 5.5 wear arithmetic.

The paper's measured chip pins the curve: 4 us at 2 M cycles against a
250 us limit says real degradation is tiny; the default parameters are
calibrated so the rated-cycle guarantee is met with the same comfortable
margin the authors observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import EnvyConfig

__all__ = ["DegradationCurve", "ArrayAging", "paper_anecdote_check"]


@dataclass(frozen=True)
class DegradationCurve:
    """Operation time as a function of accumulated program/erase cycles.

        time(c) = nominal * (1 + rate * c) ** exponent

    ``rate`` is per-cycle fractional slow-down; ``exponent`` > 1 models
    the accelerating damage of late life.  Defaults are calibrated to
    the Section 2 anecdote: a part still programming near its nominal
    4 us after 2 million cycles.
    """

    nominal_ns: int
    spec_limit_ns: int
    rate: float = 5e-8
    exponent: float = 1.6

    def time_at(self, cycles: int) -> float:
        """Expected operation time after ``cycles`` program/erase cycles."""
        if cycles < 0:
            raise ValueError("cycles cannot be negative")
        return self.nominal_ns * (1.0 + self.rate * cycles) ** self.exponent

    def slowdown_at(self, cycles: int) -> float:
        return self.time_at(cycles) / self.nominal_ns

    def spec_failure_cycles(self) -> int:
        """Cycles at which the operation first exceeds its spec limit.

        This is the paper's definition of chip failure — note that data
        is still readable and the operation still completes if the
        controller simply allows more time.
        """
        if self.spec_limit_ns <= self.nominal_ns:
            return 0
        ratio = self.spec_limit_ns / self.nominal_ns
        cycles = (ratio ** (1.0 / self.exponent) - 1.0) / self.rate
        return int(cycles)

    def margin_over_rating(self, rated_cycles: int) -> float:
        """How many times the rated endurance the spec horizon allows."""
        if rated_cycles <= 0:
            raise ValueError("rated_cycles must be positive")
        return self.spec_failure_cycles() / rated_cycles


#: Guaranteed limits from the Section 2 anecdote.
PROGRAM_SPEC_NS = 250_000          # 250 us
ERASE_SPEC_NS = 10_000_000_000     # 10 s


def paper_anecdote_check(curve: DegradationCurve = None) -> dict:
    """Evaluate the Section 2 anecdote against the default curve.

    Returns the modelled program time at 2 million cycles and the
    anecdote's measured value (4 us) for comparison.
    """
    curve = curve or DegradationCurve(4000, PROGRAM_SPEC_NS)
    return {
        "modelled_at_2M_cycles_ns": curve.time_at(2_000_000),
        "measured_anecdote_ns": 4000.0,
        "spec_limit_ns": float(curve.spec_limit_ns),
        "spec_failure_cycles": curve.spec_failure_cycles(),
    }


class ArrayAging:
    """Projects an eNVy array's timing over years of operation.

    Combines the Section 5.5 wear arithmetic (cycles accumulated per
    segment per year under a sustained flush rate and cleaning cost,
    assuming even wear — which the Section 4.3 leveler provides) with
    the degradation curve.
    """

    def __init__(self, config: EnvyConfig, page_flush_rate: float,
                 cleaning_cost: float,
                 program_curve: DegradationCurve = None,
                 erase_curve: DegradationCurve = None) -> None:
        self.config = config
        self.page_flush_rate = page_flush_rate
        self.cleaning_cost = cleaning_cost
        self.program_curve = program_curve or DegradationCurve(
            config.flash.program_ns, PROGRAM_SPEC_NS)
        self.erase_curve = erase_curve or DegradationCurve(
            config.flash.erase_ns, ERASE_SPEC_NS,
            rate=5e-8, exponent=1.6)

    def cycles_per_segment_per_year(self) -> float:
        """Erase cycles each segment accumulates in a year of operation."""
        programs_per_second = (self.page_flush_rate
                               * (1.0 + self.cleaning_cost))
        erases_per_second = (programs_per_second
                             / self.config.pages_per_segment)
        per_segment = erases_per_second / self.config.flash.num_segments
        return per_segment * 86_400 * 365.25

    def cycles_after_years(self, years: float) -> float:
        return self.cycles_per_segment_per_year() * years

    def program_time_after_years(self, years: float) -> float:
        return self.program_curve.time_at(
            int(self.cycles_after_years(years)))

    def erase_time_after_years(self, years: float) -> float:
        return self.erase_curve.time_at(
            int(self.cycles_after_years(years)))

    def rated_life_years(self) -> float:
        """Years until the rated endurance is consumed (Section 5.5)."""
        per_year = self.cycles_per_segment_per_year()
        if per_year <= 0:
            return math.inf
        return self.config.flash.endurance_cycles / per_year

    def spec_failure_years(self) -> float:
        """Years until an operation first misses its spec window.

        The paper's observed margins put this far beyond the rated
        life — the basis for "as the technology matures, Flash has the
        potential to become very durable."
        """
        per_year = self.cycles_per_segment_per_year()
        if per_year <= 0:
            return math.inf
        program_years = (self.program_curve.spec_failure_cycles()
                         / per_year)
        erase_years = self.erase_curve.spec_failure_cycles() / per_year
        return min(program_years, erase_years)

    def throughput_decay(self, years: float,
                         baseline_tps: float) -> float:
        """Saturation throughput after ``years``, to first order.

        Only the Flash-management terms slow down; reads are unaffected
        (Section 2: reads do not degrade).  Scales the program/erase
        shares of the transaction budget by their slow-down factors.
        """
        from ..sim.analytic import CapacityModel, TransactionProfile

        model = CapacityModel(self.config, TransactionProfile())
        program_factor = self.program_curve.slowdown_at(
            int(self.cycles_after_years(years)))
        erase_factor = self.erase_curve.slowdown_at(
            int(self.cycles_after_years(years)))
        aged_ns = (model.read_ns() + model.host_write_ns()
                   + (model.flush_ns() + model.clean_ns())
                   * program_factor
                   + model.erase_ns() * erase_factor)
        fresh_ns = model.transaction_ns()
        return baseline_tps * fresh_ns / aged_ns
