"""Exception hierarchy for the Flash substrate."""

__all__ = [
    "FlashError",
    "ProgramError",
    "EraseError",
    "AddressError",
    "EnduranceExceeded",
    "TransientProgramError",
    "TransientEraseError",
    "BadBlockError",
    "UncorrectableDataError",
]


class FlashError(Exception):
    """Base class for all Flash device errors."""


class ProgramError(FlashError):
    """Raised when a program operation violates write-once semantics.

    Flash cells can only be cleared (1 -> 0) by programming; restoring a
    bit to 1 requires erasing the whole block (Section 2).
    """


class EraseError(FlashError):
    """Raised when an erase targets an invalid or busy block."""


class AddressError(FlashError, IndexError):
    """Raised for out-of-range chip, block, page or byte addresses."""


class EnduranceExceeded(FlashError):
    """Raised when a block is cycled past its guaranteed endurance.

    The paper notes (Section 2) that real parts usually keep working far
    past the rated cycle count — the "failure" is only that operations may
    exceed their specified time — so raising is optional; by default the
    model records the overshoot and keeps going.  Set
    ``EnvyConfig.strict_endurance`` (or ``strict_endurance`` on a chip or
    array) to turn the overshoot into this exception.
    """


class TransientProgramError(ProgramError):
    """An injected program failure; an independent retry may succeed.

    Raised by the device models when a :class:`~repro.faults.plan.
    FaultInjector` fails a program attempt (and, at array level, only
    after the bounded retry budget is exhausted).
    """


class TransientEraseError(EraseError):
    """An injected erase failure; an independent retry may succeed."""


class BadBlockError(FlashError):
    """A block failed permanently and must be retired.

    Covers both outright permanent erase failures and wear-correlated
    *grown* bad blocks.  ``segment`` (or ``block``) identifies the
    failed unit; ``reason`` is the injector's verdict.
    """

    def __init__(self, unit: int, reason: str = "permanent") -> None:
        super().__init__(f"block {unit} failed permanently ({reason}); "
                         f"retire it")
        self.unit = unit
        self.reason = reason


class UncorrectableDataError(FlashError):
    """A read returned data whose corruption exceeds ECC's reach."""
