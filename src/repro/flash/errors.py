"""Exception hierarchy for the Flash substrate."""

__all__ = [
    "FlashError",
    "ProgramError",
    "EraseError",
    "AddressError",
    "EnduranceExceeded",
]


class FlashError(Exception):
    """Base class for all Flash device errors."""


class ProgramError(FlashError):
    """Raised when a program operation violates write-once semantics.

    Flash cells can only be cleared (1 -> 0) by programming; restoring a
    bit to 1 requires erasing the whole block (Section 2).
    """


class EraseError(FlashError):
    """Raised when an erase targets an invalid or busy block."""


class AddressError(FlashError, IndexError):
    """Raised for out-of-range chip, block, page or byte addresses."""


class EnduranceExceeded(FlashError):
    """Raised when a block is cycled past its guaranteed endurance.

    The paper notes (Section 2) that real parts usually keep working far
    past the rated cycle count — the "failure" is only that operations may
    exceed their specified time — so raising is optional; by default the
    model records the overshoot and keeps going.
    """
