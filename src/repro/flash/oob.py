"""Out-of-band (OOB) page metadata: the array describes itself.

The paper's durability story leans entirely on battery-backed SRAM
(Section 2.2): lose the page table and every datum in Flash is orphaned.
Real NAND/NOR parts reserve a spare ("out-of-band") region next to every
page, and production controllers use it to make the array
*self-describing* — each program stamps the page with its logical
identity so the whole mapping can be rebuilt by scanning Flash alone.

This module defines that stamp.  Every page program carries an
:class:`OobRecord`:

* ``kind``          — ``DATA`` (a logical page) or ``CHECKPOINT`` (a
  chunk of a flash-resident page-table checkpoint);
* ``logical_page``  — the logical page number (or chunk index for
  checkpoint chunks);
* ``epoch``         — the page's *version*: bumped once per flush, and
  **preserved** by cleaner copies, so "highest epoch" always identifies
  the newest committed version of a page;
* ``seq``           — a global program sequence number, bumped on every
  program.  Duplicate copies of the same epoch (an interrupted clean's
  shadow copies) are byte-identical, and recovery keeps the *lowest*
  sequence number — the shadow-paging original — so an uncommitted
  clean resolves exactly as the battery-backed journal would;
* ``position``      — the logical segment (cleaning position) the page
  was programmed into, letting recovery rebuild the position ↔ physical
  segment mapping;
* ``aux``           — payload byte length for checkpoint chunks, 0 for
  data pages;
* ``payload_crc``   — CRC-32 of the page payload, the torn-write
  detector: a program interrupted by power loss leaves a mismatch and
  the copy is demoted in favour of the previous version.

The packed record carries its own CRC (``oob_crc``) over the header
fields, so a bit flip inside the OOB region itself is detected (and the
slot treated as garbage) rather than silently mis-mapping a page.
Stamping is free in the timing model: the OOB travels down the same
256-byte-wide datapath as the page, in the same program cycle, exactly
like the parallel page-table update of Section 5.1.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["OobRecord", "pack_oob", "unpack_oob", "payload_crc",
           "OOB_BYTES", "DATA", "CHECKPOINT"]

#: OOB record kinds.
DATA = 1
CHECKPOINT = 2

_MAGIC = 0xE7
#: magic, kind, logical_page, epoch, seq, position, aux, payload_crc.
_HEADER = struct.Struct("<BBqqqiII")
_CRC = struct.Struct("<I")

#: Bytes of spare area consumed per page (header + its own CRC).
OOB_BYTES = _HEADER.size + _CRC.size


def payload_crc(data: Optional[bytes]) -> int:
    """CRC-32 of a page payload (None — a zero page — hashes as empty)."""
    return zlib.crc32(data) & 0xFFFFFFFF if data else 0


@dataclass(frozen=True)
class OobRecord:
    """The self-description stamped alongside one programmed page."""

    kind: int
    logical_page: int
    epoch: int
    seq: int
    position: int
    payload_crc: int
    aux: int = 0

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_checkpoint(self) -> bool:
        return self.kind == CHECKPOINT


def pack_oob(record: OobRecord) -> bytes:
    """Serialise a record to its fixed-size spare-area image."""
    header = _HEADER.pack(_MAGIC, record.kind, record.logical_page,
                          record.epoch, record.seq, record.position,
                          record.aux, record.payload_crc)
    return header + _CRC.pack(zlib.crc32(header) & 0xFFFFFFFF)


def unpack_oob(raw: Optional[bytes]) -> Optional[OobRecord]:
    """Parse a spare-area image; None for garbage (bad magic or CRC).

    A None result means the OOB region itself is unreadable — the slot
    carries no trustworthy identity, so recovery must treat whatever the
    page holds as lost (its previous version, stored elsewhere with an
    intact OOB, wins instead).
    """
    if raw is None or len(raw) != OOB_BYTES:
        return None
    header, (crc,) = raw[:_HEADER.size], _CRC.unpack(raw[_HEADER.size:])
    if zlib.crc32(header) & 0xFFFFFFFF != crc:
        return None
    magic, kind, logical_page, epoch, seq, position, aux, pcrc = \
        _HEADER.unpack(header)
    if magic != _MAGIC or kind not in (DATA, CHECKPOINT):
        return None
    return OobRecord(kind, logical_page, epoch, seq, position, pcrc, aux)
