"""Page-granularity model of a Flash segment.

A segment is the smallest independently erasable unit of the eNVy array:
one erase block from each of the 256 chips in a bank, 16 MB at paper scale
(Section 3.4, Figure 4).  The 256-byte-wide data path means a whole page
is transferred in a single memory cycle, and all chips of a bank program
and erase in lock-step — so wear is uniform across a segment and the
segment, not the chip, is the natural bookkeeping unit.

Pages move through three states:

* ``ERASED`` — all ones, ready to accept a program operation;
* ``VALID``  — holds the live copy of some logical page;
* ``INVALID`` — holds a superseded copy that only an erase can reclaim.

The state machine enforces Flash's write-once rule: only ERASED pages can
be programmed, and the only way back to ERASED is a whole-segment erase.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional

from .errors import AddressError, BadBlockError, EraseError, ProgramError

__all__ = ["PageState", "FlashSegment"]


class PageState(IntEnum):
    """Lifecycle state of one 256-byte page within a segment."""

    ERASED = 0
    VALID = 1
    INVALID = 2


class FlashSegment:
    """One independently erasable segment of the Flash array.

    Parameters
    ----------
    num_pages:
        Pages per segment (65,536 at paper scale: 16 MB / 256 B).
    page_bytes:
        Page size; only used when the segment stores real data.
    store_data:
        When False the segment tracks only page states and wear, which is
        what the simulators need; when True it also holds page contents
        for the data-bearing controller.
    """

    __slots__ = ("segment_id", "num_pages", "page_bytes", "store_data",
                 "states", "data", "oob", "erase_count", "program_count",
                 "write_pointer", "live_count", "live_slots", "_erasing",
                 "is_bad")

    def __init__(self, segment_id: int, num_pages: int, page_bytes: int = 256,
                 store_data: bool = True) -> None:
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        self.segment_id = segment_id
        self.num_pages = num_pages
        self.page_bytes = page_bytes
        self.store_data = store_data
        self.states: List[PageState] = [PageState.ERASED] * num_pages
        self.data: List[Optional[bytes]] = ([None] * num_pages
                                            if store_data else [])
        #: Out-of-band (spare-area) metadata per page, stamped at program
        #: time (see :mod:`repro.flash.oob`).  Kept even in stateless
        #: mode: the OOB is what makes the array self-describing, and
        #: recovery needs it whether or not payloads are modelled.
        self.oob: List[Optional[bytes]] = [None] * num_pages
        #: Cumulative program/erase cycles (wear) for this segment.
        self.erase_count = 0
        #: Total page program operations over the segment's lifetime.
        self.program_count = 0
        #: Next sequentially writable page ("data is written to the tail
        #: of a segment", Section 4.3).
        self.write_pointer = 0
        self.live_count = 0
        #: Indices of VALID pages, maintained incrementally so
        #: :meth:`live_pages` never rescans the state list.  Code that
        #: assigns ``states`` wholesale must call
        #: :meth:`rebuild_live_slots`.
        self.live_slots: set = set()
        self._erasing = False
        #: Retired after a permanent erase failure (grown bad block).
        #: Existing data stays readable (Section 2) but the segment
        #: accepts no further program or erase operations.
        self.is_bad = False

    # ------------------------------------------------------------------

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise AddressError(
                f"page {page} out of range for segment {self.segment_id} "
                f"({self.num_pages} pages)")

    @property
    def free_pages(self) -> int:
        """Pages still erased and sequentially reachable for programming."""
        return self.num_pages - self.write_pointer

    @property
    def invalid_pages(self) -> int:
        """Pages holding superseded data (reclaimable only by erase)."""
        return self.write_pointer - self.live_count

    @property
    def utilization(self) -> float:
        """Fraction of the segment occupied by live data."""
        return self.live_count / self.num_pages

    @property
    def is_erased(self) -> bool:
        return self.write_pointer == 0 and self.live_count == 0

    @property
    def erasing(self) -> bool:
        return self._erasing

    # ------------------------------------------------------------------
    # Program / read / invalidate
    # ------------------------------------------------------------------

    def program_page(self, data: Optional[bytes] = None,
                     oob: Optional[bytes] = None) -> int:
        """Program the next sequential page; returns its index.

        Appending at the write pointer models the real array: with a
        256-byte-wide bank there is exactly one in-order program stream
        per segment, and the cleaner relies on this order being preserved
        (Section 4.3: "the order of the pages is maintained").

        ``oob`` is the page's spare-area self-description (see
        :mod:`repro.flash.oob`); it travels down the same wide datapath
        in the same program cycle, so stamping it costs no extra time.
        """
        if self.is_bad:
            raise BadBlockError(self.segment_id, "retired")
        if self._erasing:
            raise EraseError(f"segment {self.segment_id} is being erased")
        if self.write_pointer >= self.num_pages:
            raise ProgramError(f"segment {self.segment_id} is full")
        page = self.write_pointer
        if self.states[page] is not PageState.ERASED:
            raise ProgramError(
                f"page {page} of segment {self.segment_id} is not erased")
        if self.store_data:
            if data is not None and len(data) != self.page_bytes:
                raise ValueError(
                    f"page data must be {self.page_bytes} bytes, "
                    f"got {len(data)}")
            self.data[page] = bytes(data) if data is not None else None
        self.oob[page] = bytes(oob) if oob is not None else None
        self.states[page] = PageState.VALID
        self.write_pointer += 1
        self.live_count += 1
        self.live_slots.add(page)
        self.program_count += 1
        return page

    def read_page(self, page: int) -> Optional[bytes]:
        """Return the stored bytes of ``page`` (None in stateless mode)."""
        self._check_page(page)
        if self._erasing:
            raise EraseError(f"segment {self.segment_id} is being erased")
        if self.states[page] is PageState.ERASED:
            raise AddressError(
                f"page {page} of segment {self.segment_id} is erased")
        if not self.store_data:
            return None
        return self.data[page]

    def read_oob(self, page: int) -> Optional[bytes]:
        """Return the spare-area bytes of a programmed page.

        Erased pages have no OOB (they read all-ones on real parts, the
        unambiguous "never programmed" marker), so asking for one is an
        addressing error just like reading their data.
        """
        self._check_page(page)
        if self._erasing:
            raise EraseError(f"segment {self.segment_id} is being erased")
        if self.states[page] is PageState.ERASED:
            raise AddressError(
                f"page {page} of segment {self.segment_id} is erased")
        return self.oob[page]

    def invalidate_page(self, page: int) -> None:
        """Mark ``page`` as superseded after a copy-on-write or clean."""
        self._check_page(page)
        if self.states[page] is not PageState.VALID:
            raise ProgramError(
                f"page {page} of segment {self.segment_id} is not valid "
                f"(state={self.states[page].name})")
        self.states[page] = PageState.INVALID
        self.live_count -= 1
        self.live_slots.discard(page)

    def live_pages(self) -> List[int]:
        """Indices of valid pages, in programming (head-to-tail) order."""
        return sorted(self.live_slots)

    def rebuild_live_slots(self) -> None:
        """Recompute :attr:`live_slots` after ``states`` was replaced
        wholesale (snapshot restore)."""
        self.live_slots = {i for i in range(self.write_pointer)
                           if self.states[i] is PageState.VALID}

    # ------------------------------------------------------------------
    # Erase
    # ------------------------------------------------------------------

    def erase(self) -> None:
        """Bulk-erase the whole segment back to the ERASED state."""
        self.begin_erase()
        self.finish_erase()

    def mark_bad(self) -> None:
        """Retire the segment after a permanent failure."""
        self.is_bad = True
        self._erasing = False

    def begin_erase(self) -> None:
        """Start a (suspendable) erase; data becomes inaccessible."""
        if self.is_bad:
            raise BadBlockError(self.segment_id, "retired")
        if self._erasing:
            raise EraseError(f"segment {self.segment_id} already erasing")
        if self.live_count:
            raise EraseError(
                f"segment {self.segment_id} still holds {self.live_count} "
                f"live pages; clean it first")
        self._erasing = True

    def finish_erase(self) -> None:
        if not self._erasing:
            raise EraseError(f"segment {self.segment_id} is not erasing")
        self._erasing = False
        self.states = [PageState.ERASED] * self.num_pages
        if self.store_data:
            self.data = [None] * self.num_pages
        self.oob = [None] * self.num_pages
        self.write_pointer = 0
        self.live_count = 0
        self.live_slots = set()
        self.erase_count += 1

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------

    def rebuild_states(self, live_slots) -> None:
        """Reset VALID/INVALID marks from a recovery scan's verdicts.

        The VALID/INVALID state machine is controller bookkeeping (real
        cells hold only data); after a power loss that took the SRAM
        with it, the recovery scan re-derives liveness from OOB epochs
        and installs its verdict here.  Programmed slots in
        ``live_slots`` become VALID, every other programmed slot
        INVALID; erased slots are untouched.
        """
        live = 0
        for slot in range(self.write_pointer):
            if slot in live_slots:
                self.states[slot] = PageState.VALID
                live += 1
            else:
                self.states[slot] = PageState.INVALID
        self.live_count = live
        self.rebuild_live_slots()

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlashSegment(id={self.segment_id}, live={self.live_count}"
                f"/{self.num_pages}, wp={self.write_pointer}, "
                f"erases={self.erase_count})")
