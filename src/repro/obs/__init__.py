"""Unified observability: event bus, histograms, time series, exports.

The package is the single instrumentation spine for the reproduction:
every subsystem publishes typed events to the controller's
:class:`~repro.obs.events.EventBus` (dormant and near-free until
something subscribes), and :class:`~repro.obs.hub.ObservabilityHub`
turns the stream into histograms, windowed time series, and
Perfetto/Prometheus/JSONL exports.  See ``docs/OBSERVABILITY.md``.
"""

from .events import EventBus, ObsEvent
from .hist import LatencyHistogram
from .hub import ObservabilityHub
from .timeseries import TimeSeriesSampler, Window

__all__ = ["EventBus", "ObsEvent", "LatencyHistogram",
           "ObservabilityHub", "TimeSeriesSampler", "Window"]
