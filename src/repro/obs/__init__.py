"""Unified observability: event bus, histograms, time series, exports.

The package is the single instrumentation spine for the reproduction:
every subsystem publishes typed events to the controller's
:class:`~repro.obs.events.EventBus` (dormant and near-free until
something subscribes), and :class:`~repro.obs.hub.ObservabilityHub`
turns the stream into histograms, windowed time series, and
Perfetto/Prometheus/JSONL exports.  :mod:`repro.obs.trace` adds
request-level span trees with exact critical-path attribution and
:mod:`repro.obs.slo` per-tenant SLO burn tracking on top.  See
``docs/OBSERVABILITY.md``.
"""

from .events import EventBus, ObsEvent
from .hist import LatencyHistogram
from .hub import ObservabilityHub
from .slo import SLOTracker
from .timeseries import TimeSeriesSampler, Window
from .trace import COMPONENTS, TraceReport

__all__ = ["EventBus", "ObsEvent", "LatencyHistogram",
           "ObservabilityHub", "TimeSeriesSampler", "Window",
           "TraceReport", "COMPONENTS", "SLOTracker"]
