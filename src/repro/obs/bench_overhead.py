"""Observability-overhead benchmark: the zero-overhead contract, timed.

``benchmarks/bench_obs_overhead.py`` and the CI ``obs-overhead`` job
land here.  The instrumentation spine promises two things:

* **Dormant is free** — with nothing subscribed, every publisher pays
  one ``bus.active`` check.  The ``tpca_dormant`` scenario times the
  canonical TPC-A simulation with the bus dormant; its calibration-
  normalized wall throughput is gated against the committed baseline
  (CI runs ``--max-regression 0.05``: within 5%).
* **Observation never perturbs** — subscribing (the hub) or tracing
  (the sharded service) changes *no* simulated number.  The
  ``tpca_instrumented`` scenario re-runs the same simulation with the
  :class:`~repro.obs.hub.ObservabilityHub` attached and must reproduce
  the dormant run's fidelity dict exactly; its overhead ratio vs the
  dormant run is reported (informational — instrumentation is opt-in).
  The ``service_traced`` scenario runs a multi-tenant service with
  request tracing on and records the trace's own acceptance numbers
  (0 ns decomposition error, tail blame, SLO burn rates) as exact
  fidelity.

As everywhere in the perf harness, wall numbers are compared only
after normalizing by :func:`repro.perf.bench.calibrate`, and the
seeded simulated outputs must match the committed baseline bit for
bit.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..perf.bench import calibrate

__all__ = ["SCENARIOS", "run_bench", "compare_reports", "main"]

SCHEMA = "envy-bench-obs/1"

#: Canonical scenarios in (full, smoke) variants.  The TPC-A pair share
#: one geometry per mode so dormant and instrumented runs are the same
#: simulation; the traced-service scenario mirrors the ``python -m
#: repro trace`` default mix (online/batch SLO tenants + cleaner storm).
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    "tpca_dormant": {
        "full": dict(kind="tpca", instrument=False, num_segments=32,
                     pages_per_segment=256, rate_tps=8000.0,
                     duration_s=0.15, prewarm_s=5.0, seed=7, repeats=3),
        "smoke": dict(kind="tpca", instrument=False, num_segments=16,
                      pages_per_segment=128, rate_tps=8000.0,
                      duration_s=0.12, prewarm_s=5.0, seed=7,
                      repeats=5),
    },
    "tpca_instrumented": {
        "full": dict(kind="tpca", instrument=True, num_segments=32,
                     pages_per_segment=256, rate_tps=8000.0,
                     duration_s=0.15, prewarm_s=5.0, seed=7, repeats=3),
        "smoke": dict(kind="tpca", instrument=True, num_segments=16,
                      pages_per_segment=128, rate_tps=8000.0,
                      duration_s=0.12, prewarm_s=5.0, seed=7,
                      repeats=5),
    },
    "service_traced": {
        "full": dict(kind="service", num_shards=4, num_segments=16,
                     pages_per_segment=64, rate_tps=4e6,
                     duration_s=0.001, seed=0),
        "smoke": dict(kind="service", num_shards=2, num_segments=8,
                      pages_per_segment=32, rate_tps=4e6,
                      duration_s=0.0004, seed=0),
    },
}


def _run_tpca(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Best-of-``repeats`` timing: each repeat is a fresh deterministic
    simulation, so the fidelity is identical and the minimum wall time
    is the least-noisy estimate (scheduler hiccups only ever add)."""
    from ..sim import build_tpca_system

    wall_s = float("inf")
    stats = hub = None
    for _ in range(spec.get("repeats", 1)):
        simulator = build_tpca_system(
            num_segments=spec["num_segments"],
            pages_per_segment=spec["pages_per_segment"],
            rate_tps=spec["rate_tps"], seed=spec["seed"])
        simulator.prewarm(spec["prewarm_s"])
        hub = None
        if spec["instrument"]:
            from .hub import ObservabilityHub

            hub = ObservabilityHub(simulator.controller)
        start = time.perf_counter()
        stats = simulator.run(spec["duration_s"])
        wall_s = min(wall_s, time.perf_counter() - start)
    point: Dict[str, Any] = {
        "wall_s": round(wall_s, 4),
        "txn_per_wall_s": round(stats.transactions_completed / wall_s, 1),
        "fidelity": {
            "transactions_completed": stats.transactions_completed,
            "read_p50_ns": stats.read_latency.p50,
            "read_p99_ns": stats.read_latency.p99,
            "write_p50_ns": stats.write_latency.p50,
            "write_p99_ns": stats.write_latency.p99,
            "pages_flushed": stats.pages_flushed,
            "clean_copies": stats.clean_copies,
            "erases": stats.erases,
        },
    }
    if hub is not None:
        hub.close()
        point["hub_events"] = hub.total_events()
    return point


def _run_traced_service(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..service.frontend import EnvyService, ServiceConfig
    from ..service.tenant import TenantSpec

    rate = spec["rate_tps"]
    config = ServiceConfig(num_shards=spec["num_shards"],
                           num_segments=spec["num_segments"],
                           pages_per_segment=spec["pages_per_segment"],
                           seed=spec["seed"], retry_limit=2,
                           queue_capacity=32)
    tenants = [
        TenantSpec("online", rate_tps=rate / 2, skew=1.0,
                   write_fraction=0.3, slo_read_p99_ns=100_000,
                   slo_write_p99_ns=250_000,
                   slo_throughput_tps=rate / 20),
        TenantSpec("batch", rate_tps=rate / 4, workload="uniform",
                   write_fraction=0.8, slo_write_p99_ns=500_000),
        TenantSpec("storm", rate_tps=rate / 2, workload="clean_amp",
                   write_fraction=1.0),
    ]
    service = EnvyService(config, tenants)
    start = time.perf_counter()
    stats = service.run(spec["duration_s"], jobs=1, trace=True)
    wall_s = time.perf_counter() - start
    report = service.last_trace
    slo = service.health_report().get("slo", {})
    blame = report.blame()
    return {
        "wall_s": round(wall_s, 4),
        "served_per_wall_s": round(stats.accesses_served / wall_s, 1),
        "fidelity": {
            "accesses_served": stats.accesses_served,
            "trace_rows": len(report.rows),
            "max_decomposition_error_ns": report.validate(),
            "blame": blame,
            "slo": slo,
        },
    }


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    """Run every scenario and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        # Best-of-5: scheduler noise only ever slows the probe, so the
        # fastest sample is the machine's true speed score.
        "calibration_ops_per_s": round(max(calibrate()
                                           for _ in range(5)), 1),
        "scenarios": {},
    }
    for name, variants in SCENARIOS.items():
        spec = variants[mode]
        if spec["kind"] == "tpca":
            report["scenarios"][name] = _run_tpca(spec)
        else:
            report["scenarios"][name] = _run_traced_service(spec)
    dormant = report["scenarios"]["tpca_dormant"]
    hubbed = report["scenarios"]["tpca_instrumented"]
    if dormant["wall_s"]:
        report["instrumented_overhead_x"] = round(
            hubbed["wall_s"] / dormant["wall_s"], 3)
    return report


def check_contract(report: Dict[str, Any]) -> List[str]:
    """Self-contained contract checks (no baseline needed)."""
    failures: List[str] = []
    scenarios = report.get("scenarios", {})
    dormant = scenarios.get("tpca_dormant", {}).get("fidelity")
    hubbed = scenarios.get("tpca_instrumented", {}).get("fidelity")
    if dormant != hubbed:
        failures.append("instrumented TPC-A fidelity differs from the "
                        "dormant run — observation perturbed the "
                        "simulation")
    traced = scenarios.get("service_traced", {}).get("fidelity", {})
    if traced.get("max_decomposition_error_ns") != 0:
        failures.append(
            f"traced service decomposition error is "
            f"{traced.get('max_decomposition_error_ns')} ns (expected 0)")
    if not traced.get("slo"):
        failures.append("traced service reported no SLO section")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.05) -> List[str]:
    """Regression check vs a committed report; returns failures.

    The dormant-bus wall throughput is the gated number (the
    zero-overhead-when-disabled promise); the instrumented run is
    informational.  Fidelity must match exactly for every scenario.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same "
            f"--smoke setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        if cur_entry["fidelity"] != base_entry["fidelity"]:
            failures.append(f"{name}: seeded outputs changed — "
                            f"determinism break")
        if name != "tpca_dormant":
            continue
        # Two noise sources fight each other on a shared CI host: wall
        # time (best-of-N repeats already tame it) and the calibration
        # probe itself (observed varying >10% run-to-run).  A genuine
        # slowdown shows up in BOTH the raw and the calibration-
        # normalized ratio, so gate on the more favourable of the two.
        base_raw = base_entry["txn_per_wall_s"]
        raw_ratio = cur_entry["txn_per_wall_s"] / base_raw if base_raw else 0.0
        cur_norm = cur_entry["txn_per_wall_s"] / cur_calib
        base_norm = base_entry["txn_per_wall_s"] / base_calib
        norm_ratio = cur_norm / base_norm if base_norm else 0.0
        ratio = max(raw_ratio, norm_ratio)
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: dormant-bus throughput fell to "
                f"{ratio:.0%} of baseline (raw {raw_ratio:.0%}, "
                f"normalized {norm_ratio:.0%}; "
                f"{cur_entry['txn_per_wall_s']:,.0f}/s vs "
                f"{base_entry['txn_per_wall_s']:,.0f}/s)")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"obs-overhead bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    for name in ("tpca_dormant", "tpca_instrumented"):
        point = report["scenarios"][name]
        fid = point["fidelity"]
        lines.append(
            f"  {name:<18} {point['txn_per_wall_s']:>10,.0f} txn/wall-s "
            f"({fid['transactions_completed']:,} txns, "
            f"write p99 {fid['write_p99_ns']:,}ns)")
    lines.append(f"  instrumented overhead: "
                 f"{report.get('instrumented_overhead_x', 0):.2f}x "
                 f"dormant wall time")
    traced = report["scenarios"]["service_traced"]
    fid = traced["fidelity"]
    lines.append(
        f"  service_traced     {traced['served_per_wall_s']:>10,.0f} "
        f"acc/wall-s ({fid['trace_rows']:,} trace rows, "
        f"decomposition error {fid['max_decomposition_error_ns']}ns, "
        f"{len(fid['slo'])} SLO tenants)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_obs_overhead",
        description="eNVy observability-overhead benchmark (dormant-bus "
                    "gate, instrumentation perturbation, tracing "
                    "fidelity)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--output", default="BENCH_OBS.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        help="tolerated normalized dormant-throughput "
                             "drop (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_contract(report)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression)
    if failures:
        print("\nOBS-OVERHEAD BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
