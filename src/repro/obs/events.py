"""Typed event bus: the single spine every subsystem publishes to.

Before this module each layer reported through its own side channel —
the store's ``observer`` callback, the array's ``fault_listeners``, the
tracing proxy's access list — and anything that wanted a global picture
had to subscribe to all of them and reconcile clocks.  The bus unifies
them: the controller owns one :class:`EventBus`, every subsystem
publishes :class:`ObsEvent` records onto it, and consumers (the
observability hub, the tracing proxy, exporters) subscribe by kind
prefix.

Zero overhead when disabled
---------------------------

The bus is *always present* (``controller.events``) but dormant until
someone subscribes.  Publishers guard each emission with a single
attribute test::

    bus = self.events
    if bus.active:
        bus.emit_span(HOST_READ, access_ns, {"page": page})

so a run with no subscribers pays one boolean check per instrumented
operation and never constructs an event object.  The instrumentation is
purely observational — it charges no time and mutates no simulation
state — so enabling it cannot perturb the cost model (the test suite
verifies metrics are bit-identical either way).

Simulated-time clock
--------------------

``EventBus.clock_ns`` is the observability timeline: publishers advance
it by each span's duration, and the timed simulator syncs it to
transaction arrival times so idle gaps appear in exported traces.  The
clock exists only for observers; the simulation's own accounting never
reads it.

Event taxonomy (kind strings, hierarchical by prefix):

======================  ================================================
``host.read/.write``    one host page access (span; data: page)
``buffer.flush``        write-buffer pages programmed to Flash (span)
``clean.copy``          cleaner survivor copies during a clean (span)
``clean.transfer``      pages migrated between positions (span)
``clean.rescue``        flushed-copy rescue programs (span)
``clean.erase``         segment erase (span)
``retry.program/.erase``fault-driven repeated operations (span)
``fault.*``             injected faults / defences (instant; wraps
                        :class:`~repro.faults.plan.FaultEvent`)
``checkpoint.begin``    metadata checkpoint started (instant)
``checkpoint.commit``   checkpoint complete (span; data: id, chunks)
``checkpoint.disabled`` checkpointing shut itself off (instant)
``wear.swap``           wear-leveling segment swap (instant)
``chaos.kill``          simulated power cut fired (instant)
``service.run``         service run started (instant; data: requests,
                        shards, tenants)
``service.shard``       one shard's run summary (instant)
``service.batch``       a coalesced write batch closed (span; data:
                        shard, pages)
``service.reject``      admission control refused a request (instant;
                        data: shard, tenant, reason)
``service.throttle``    cleaner-debt backpressure delayed a write
                        (instant; data: shard, tenant, delay_ns)
``service.retry``       queue-full rejection converted into a delayed
                        retry (instant; data: shard, tenant, attempt)
``service.request``     one traced service request, end to end (span;
                        data: rid, tenant, shard, op, and the exact
                        critical-path component breakdown — see
                        :mod:`repro.obs.trace`)
``redundancy.replica``  extra program/read charged for a replica or
                        parity placement (instant; data: bank, kind)
``redundancy.kill``     a whole bank was declared dead (instant; data:
                        bank)
``redundancy.degraded`` a request was served degraded — redirected to
                        a mirror or reconstructed from parity (instant;
                        data: page, bank, source)
``redundancy.rebuild``  one rebuild batch copied onto a replacement
                        bank (span; data: bank, pages, done, total)
``redundancy.rebalance``a hot logical page was remapped to another
                        bank (instant; data: page, from, to)
``security.flag``       the attack detector flagged a tenant (instant;
                        data: tenant, signals)
``security.quarantine`` a tenant's token bucket was degraded (instant;
                        data: tenant, rate_tps)
``security.remap``      a flagged tenant's hot page was scattered to a
                        randomized placement (instant; data: tenant,
                        page, peer)
``cache.hit``           read served from the DRAM cache tier (instant;
                        data: shard, tenant, page)
``cache.miss``          cache-tier read fell through to Flash (instant;
                        data: shard, tenant, page)
``cache.evict``         a resident page was displaced (instant; data:
                        shard, page)
``cache.invalidate``    an entry was dropped because its backing copy
                        changed (instant; data: shard, page, reason —
                        "write", "clean", or "topology")
``admission.decision``  the closed-loop admission controller changed a
                        tenant's state (instant; data: tenant, state,
                        burn, rate_tps)
======================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ObsEvent", "EventBus",
    "HOST_READ", "HOST_WRITE", "BUFFER_FLUSH", "CLEAN_COPY",
    "CLEAN_TRANSFER", "CLEAN_RESCUE", "CLEAN_ERASE", "RETRY_PROGRAM",
    "RETRY_ERASE", "FAULT_PREFIX", "CHECKPOINT_BEGIN", "CHECKPOINT_COMMIT",
    "CHECKPOINT_DISABLED", "WEAR_SWAP", "CHAOS_KILL",
    "SERVICE_RUN", "SERVICE_SHARD", "SERVICE_BATCH", "SERVICE_REJECT",
    "SERVICE_THROTTLE", "SERVICE_RETRY", "SERVICE_REQUEST",
    "REDUNDANCY_REPLICA", "REDUNDANCY_KILL", "REDUNDANCY_DEGRADED",
    "REDUNDANCY_REBUILD", "REDUNDANCY_REBALANCE",
    "SECURITY_FLAG", "SECURITY_QUARANTINE", "SECURITY_REMAP",
    "CACHE_HIT", "CACHE_MISS", "CACHE_EVICT", "CACHE_INVALIDATE",
    "ADMISSION_DECISION",
]

HOST_READ = "host.read"
HOST_WRITE = "host.write"
BUFFER_FLUSH = "buffer.flush"
CLEAN_COPY = "clean.copy"
CLEAN_TRANSFER = "clean.transfer"
CLEAN_RESCUE = "clean.rescue"
CLEAN_ERASE = "clean.erase"
RETRY_PROGRAM = "retry.program"
RETRY_ERASE = "retry.erase"
FAULT_PREFIX = "fault."
CHECKPOINT_BEGIN = "checkpoint.begin"
CHECKPOINT_COMMIT = "checkpoint.commit"
CHECKPOINT_DISABLED = "checkpoint.disabled"
WEAR_SWAP = "wear.swap"
CHAOS_KILL = "chaos.kill"
SERVICE_RUN = "service.run"
SERVICE_SHARD = "service.shard"
SERVICE_BATCH = "service.batch"
SERVICE_REJECT = "service.reject"
SERVICE_THROTTLE = "service.throttle"
SERVICE_RETRY = "service.retry"
SERVICE_REQUEST = "service.request"
REDUNDANCY_REPLICA = "redundancy.replica"
REDUNDANCY_KILL = "redundancy.kill"
REDUNDANCY_DEGRADED = "redundancy.degraded"
REDUNDANCY_REBUILD = "redundancy.rebuild"
REDUNDANCY_REBALANCE = "redundancy.rebalance"
SECURITY_FLAG = "security.flag"
SECURITY_QUARANTINE = "security.quarantine"
SECURITY_REMAP = "security.remap"
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_EVICT = "cache.evict"
CACHE_INVALIDATE = "cache.invalidate"
ADMISSION_DECISION = "admission.decision"

#: Store-observer event names -> bus kinds (the store predates the bus
#: and keeps its compact names; the controller translates).
STORE_EVENT_KINDS = {
    "program": BUFFER_FLUSH,
    "clean_copy": CLEAN_COPY,
    "transfer": CLEAN_TRANSFER,
    "rescue": CLEAN_RESCUE,
    "erase": CLEAN_ERASE,
}


@dataclass(frozen=True)
class ObsEvent:
    """One observed occurrence on the simulated timeline.

    ``t_ns`` is the event's start on the observability clock; spans
    carry their duration in ``dur_ns`` (instant events use 0).  ``data``
    holds a small JSON-serialisable payload whose keys depend on the
    kind (see the module taxonomy table).
    """

    kind: str
    t_ns: int
    dur_ns: int = 0
    data: Optional[Dict[str, object]] = None

    def as_dict(self) -> dict:
        """Flat JSON-friendly form (the JSONL export row)."""
        row = {"kind": self.kind, "t_ns": self.t_ns, "dur_ns": self.dur_ns}
        if self.data:
            row.update(self.data)
        return row


class EventBus:
    """Prefix-filtered publish/subscribe hub with a simulated clock."""

    __slots__ = ("clock_ns", "active", "_subscribers")

    def __init__(self) -> None:
        #: Observability timeline in simulated nanoseconds.
        self.clock_ns = 0
        #: True iff at least one subscriber is attached.  Publishers
        #: check this before constructing events — the entire cost of a
        #: disabled bus is this boolean.
        self.active = False
        self._subscribers: List[Tuple[Optional[str],
                                      Callable[[ObsEvent], None]]] = []

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------

    def subscribe(self, handler: Callable[[ObsEvent], None],
                  prefix: Optional[str] = None) -> None:
        """Register ``handler`` for events whose kind starts with
        ``prefix`` (None = every event)."""
        self._subscribers.append((prefix, handler))
        self.active = True

    def unsubscribe(self, handler: Callable[[ObsEvent], None]) -> None:
        """Drop every registration of ``handler`` (missing is a no-op)."""
        self._subscribers = [(p, h) for p, h in self._subscribers
                             if h is not handler]
        self.active = bool(self._subscribers)

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------

    def emit(self, event: ObsEvent) -> None:
        """Deliver ``event`` to every matching subscriber."""
        for prefix, handler in self._subscribers:
            if prefix is None or event.kind.startswith(prefix):
                handler(event)

    def emit_span(self, kind: str, dur_ns: int,
                  data: Optional[Dict[str, object]] = None) -> None:
        """Emit a span starting now and advance the clock past it."""
        self.emit(ObsEvent(kind, self.clock_ns, dur_ns, data))
        self.clock_ns += dur_ns

    def mark(self, kind: str,
             data: Optional[Dict[str, object]] = None) -> None:
        """Emit an instant event at the current clock."""
        self.emit(ObsEvent(kind, self.clock_ns, 0, data))

    def sync(self, t_ns: int) -> None:
        """Advance the clock to ``t_ns`` if it is ahead (never rewinds)."""
        if t_ns > self.clock_ns:
            self.clock_ns = t_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventBus(clock={self.clock_ns}ns, "
                f"{len(self._subscribers)} subscribers)")
