"""Exporters: simulated-timeline and metrics data in standard formats.

Three consumers, three formats:

* **Chrome trace / Perfetto JSON** (:func:`chrome_trace`) — the simulated
  timeline as complete ("X") and instant ("i") events, with each
  subsystem on its own named track so host operations and cleaning spans
  interleave visually exactly as they do in simulated time.  Open the
  file at https://ui.perfetto.dev ("Open trace file") or
  ``chrome://tracing``.
* **Prometheus text exposition** (:func:`prometheus_text`) — the
  controller counters and latency histograms in the plain-text scrape
  format, so a run's final state can be diffed, plotted, or pushed to a
  gateway without custom parsing.
* **JSONL** (:func:`events_jsonl`, :func:`timeseries_json`) — raw event
  and window dumps for ad-hoc analysis (one JSON object per line; pipe
  through ``jq``).

All functions return strings; callers own file placement.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .events import ObsEvent
from .hist import LatencyHistogram

__all__ = ["chrome_trace", "prometheus_text", "events_jsonl",
           "timeseries_json", "TRACKS"]

#: Kind prefix -> (tid, track name).  First matching prefix wins, so
#: every subsystem renders on its own named row in Perfetto.
TRACKS = [
    ("host.", 1, "host ops"),
    ("buffer.", 2, "write buffer"),
    ("clean.", 3, "cleaner"),
    ("checkpoint.", 4, "checkpoint"),
    ("retry.", 5, "faults"),
    ("fault.", 5, "faults"),
    ("wear.", 6, "wear leveling"),
    ("chaos.", 7, "chaos"),
]
_DEFAULT_TID = 8
_DEFAULT_TRACK = "other"


def _tid_of(kind: str) -> int:
    for prefix, tid, _ in TRACKS:
        if kind.startswith(prefix):
            return tid
    return _DEFAULT_TID


def chrome_trace(events: Iterable[ObsEvent],
                 process_name: str = "eNVy (simulated)") -> str:
    """Serialise events as a Chrome-trace JSON document (Perfetto).

    Timestamps and durations convert from simulated nanoseconds to the
    trace format's microseconds; sub-microsecond spans keep their
    precision as fractional values.
    """
    trace_events: List[dict] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    seen_tids = set()
    rows = []
    for event in events:
        tid = _tid_of(event.kind)
        seen_tids.add(tid)
        row = {
            "name": event.kind,
            "pid": 1,
            "tid": tid,
            "ts": event.t_ns / 1e3,
        }
        if event.dur_ns > 0:
            row["ph"] = "X"
            row["dur"] = event.dur_ns / 1e3
        else:
            row["ph"] = "i"
            row["s"] = "t"
        if event.data:
            row["args"] = dict(event.data)
        rows.append(row)
    names = {tid: name for _, tid, name in TRACKS}
    names[_DEFAULT_TID] = _DEFAULT_TRACK
    for tid in sorted(seen_tids):
        trace_events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": names[tid]},
        })
    trace_events.extend(rows)
    return json.dumps({"traceEvents": trace_events,
                       "displayTimeUnit": "ns"})


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: ControllerMetrics counter attribute -> (metric name, help text).
_COUNTERS = [
    ("reads", "envy_reads_total", "Host page reads serviced"),
    ("writes", "envy_writes_total", "Host page writes serviced"),
    ("buffer_hits", "envy_buffer_hits_total",
     "Writes absorbed by the SRAM write buffer"),
    ("copy_on_writes", "envy_copy_on_writes_total",
     "Flash pages copied into SRAM on write"),
    ("flushes", "envy_flushes_total", "Buffer pages programmed to Flash"),
    ("clean_copies", "envy_clean_copies_total",
     "Pages copied by the cleaner"),
    ("erases", "envy_erases_total", "Segment erases"),
    ("wear_swaps", "envy_wear_swaps_total", "Wear-leveling segment swaps"),
    ("ecc_corrected", "envy_ecc_corrected_total",
     "Reads corrected by SEC-DED"),
    ("ecc_uncorrectable", "envy_ecc_uncorrectable_total",
     "Reads with uncorrectable corruption"),
    ("program_retries", "envy_program_retries_total",
     "Transient program failures retried"),
    ("erase_retries", "envy_erase_retries_total",
     "Transient erase failures retried"),
    ("bad_blocks_retired", "envy_bad_blocks_retired_total",
     "Segments retired as bad blocks"),
    ("checkpoints_written", "envy_checkpoints_total",
     "Metadata checkpoints written"),
]


def _histogram_lines(name: str, help_text: str,
                     hist: LatencyHistogram) -> List[str]:
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
    cumulative = 0
    for _, high, count in hist.iter_buckets():
        cumulative += count
        lines.append(f'{name}_bucket{{le="{high}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{name}_sum {hist.total_ns}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def prometheus_text(metrics) -> str:
    """Render a :class:`~repro.core.metrics.ControllerMetrics` in the
    Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for attr, name, help_text in _COUNTERS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {getattr(metrics, attr)}")
    lines.append("# HELP envy_busy_ns_total Controller time by activity")
    lines.append("# TYPE envy_busy_ns_total counter")
    for activity in sorted(metrics.busy_ns):
        lines.append(f'envy_busy_ns_total{{activity="{activity}"}} '
                     f'{metrics.busy_ns[activity]}')
    lines.extend(_histogram_lines(
        "envy_read_latency_ns", "Host read latency (simulated ns)",
        metrics.read_latency))
    lines.extend(_histogram_lines(
        "envy_write_latency_ns", "Host write latency (simulated ns)",
        metrics.write_latency))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSONL / JSON dumps
# ----------------------------------------------------------------------

def events_jsonl(events: Iterable[ObsEvent]) -> str:
    """One JSON object per line, in event order (ends with newline)."""
    lines = [json.dumps(event.as_dict()) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def timeseries_json(windows, include_arrays: bool = True) -> str:
    """The sampler's windows as a JSON array of flat objects."""
    rows = [w.as_dict(include_arrays) for w in windows]
    return json.dumps(rows, indent=1)
