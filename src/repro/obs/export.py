"""Exporters: simulated-timeline and metrics data in standard formats.

Three consumers, three formats:

* **Chrome trace / Perfetto JSON** (:func:`chrome_trace`) — the simulated
  timeline as complete ("X") and instant ("i") events, with each
  subsystem on its own named track so host operations and cleaning spans
  interleave visually exactly as they do in simulated time.  Events that
  carry a ``shard`` (or ``bank``) in their payload land on per-shard
  tracks named ``shard<N>``, and ``flow_key`` links one request's spans
  across those tracks with Perfetto flow arrows.  Open the file at
  https://ui.perfetto.dev ("Open trace file") or ``chrome://tracing``.
* **Prometheus text exposition** (:func:`prometheus_text`) — the
  controller counters and latency histograms — plus, given service-level
  stats, per-tenant ``envy_service_*`` and ``envy_security_*`` series —
  in the plain-text scrape format, so a run's final state can be diffed,
  plotted, or pushed to a gateway without custom parsing.
* **JSONL** (:func:`events_jsonl`, :func:`timeseries_json`) — raw event
  and window dumps for ad-hoc analysis (one JSON object per line; pipe
  through ``jq``).

All functions return strings; callers own file placement.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .events import ObsEvent
from .hist import LatencyHistogram

__all__ = ["chrome_trace", "prometheus_text", "service_prometheus_text",
           "events_jsonl", "timeseries_json", "TRACKS", "SHARD_TRACK_BASE"]

#: Kind prefix -> (tid, track name).  First matching prefix wins, so
#: every subsystem renders on its own named row in Perfetto.  Service-
#: layer kinds carrying a ``shard``/``bank`` payload override these with
#: a per-shard track (see :func:`_track_of`).
TRACKS = [
    ("host.", 1, "host ops"),
    ("buffer.", 2, "write buffer"),
    ("clean.", 3, "cleaner"),
    ("checkpoint.", 4, "checkpoint"),
    ("retry.", 5, "faults"),
    ("fault.", 5, "faults"),
    ("wear.", 6, "wear leveling"),
    ("chaos.", 7, "chaos"),
    ("service.", 8, "service"),
    ("redundancy.", 9, "redundancy"),
    ("security.", 10, "security"),
]
_DEFAULT_TID = 11
_DEFAULT_TRACK = "other"

#: Per-shard tracks start here: shard N renders on tid
#: ``SHARD_TRACK_BASE + N`` named ``shard<N>``.
SHARD_TRACK_BASE = 16

#: Kind prefixes whose events move to a ``shard<N>`` track when their
#: payload names the shard/bank they happened on.
_SHARDED_PREFIXES = ("service.", "redundancy.")


def _track_of(kind: str, data: Optional[dict] = None) -> int:
    """Stable track (tid) for one event.

    Subsystem prefixes map through :data:`TRACKS`; service and
    redundancy events that name a ``shard`` (or ``bank``) land on that
    shard's own ``shard<N>`` track instead, so per-request spans from
    different banks render as parallel rows.
    """
    if data and kind.startswith(_SHARDED_PREFIXES):
        where = data.get("shard", data.get("bank"))
        if isinstance(where, int) and where >= 0:
            return SHARD_TRACK_BASE + where
    for prefix, tid, _ in TRACKS:
        if kind.startswith(prefix):
            return tid
    return _DEFAULT_TID


def _tid_of(kind: str) -> int:
    """Back-compat shim: track of a kind with no payload context."""
    return _track_of(kind, None)


def _track_name(tid: int) -> str:
    if tid >= SHARD_TRACK_BASE:
        return f"shard{tid - SHARD_TRACK_BASE}"
    for _, track_tid, name in TRACKS:
        if tid == track_tid:
            return name
    return _DEFAULT_TRACK


def chrome_trace(events: Iterable[ObsEvent],
                 process_name: str = "eNVy (simulated)",
                 flow_key: Optional[str] = None) -> str:
    """Serialise events as a Chrome-trace JSON document (Perfetto).

    Timestamps and durations convert from simulated nanoseconds to the
    trace format's microseconds; sub-microsecond spans keep their
    precision as fractional values.

    ``flow_key`` names a payload key (e.g. ``"rid"``) whose value
    identifies one logical request: span events sharing a value are
    linked with flow events (ph ``s``/``t``/``f``), which Perfetto draws
    as arrows between the spans — across shard tracks if the request
    fanned out to replicas.
    """
    trace_events: List[dict] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    seen_tids = set()
    rows = []
    flows: Dict[object, List[dict]] = {}
    for event in events:
        tid = _track_of(event.kind, event.data)
        seen_tids.add(tid)
        row = {
            "name": event.kind,
            "pid": 1,
            "tid": tid,
            "ts": event.t_ns / 1e3,
        }
        if event.dur_ns > 0:
            row["ph"] = "X"
            row["dur"] = event.dur_ns / 1e3
        else:
            row["ph"] = "i"
            row["s"] = "t"
        if event.data:
            row["args"] = dict(event.data)
            if (flow_key is not None and event.dur_ns > 0
                    and flow_key in event.data):
                flows.setdefault(event.data[flow_key], []).append(row)
        rows.append(row)
    names = {tid: name for _, tid, name in TRACKS}
    names[_DEFAULT_TID] = _DEFAULT_TRACK
    for tid in sorted(seen_tids):
        trace_events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": names.get(tid, _track_name(tid))},
        })
    trace_events.extend(rows)
    if flow_key is not None:
        flow_id = 0
        for value in sorted(flows, key=str):
            group = flows[value]
            if len(group) < 2:
                continue  # a flow needs two ends
            flow_id += 1
            for index, row in enumerate(group):
                ph = ("s" if index == 0
                      else "f" if index == len(group) - 1 else "t")
                flow = {
                    "ph": ph, "pid": 1, "tid": row["tid"],
                    "ts": row["ts"], "id": flow_id,
                    "name": f"{flow_key}:{value}", "cat": "flow",
                }
                if ph == "f":
                    flow["bp"] = "e"  # bind to the enclosing slice
                trace_events.append(flow)
    return json.dumps({"traceEvents": trace_events,
                       "displayTimeUnit": "ns"})


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: ControllerMetrics counter attribute -> (metric name, help text).
_COUNTERS = [
    ("reads", "envy_reads_total", "Host page reads serviced"),
    ("writes", "envy_writes_total", "Host page writes serviced"),
    ("buffer_hits", "envy_buffer_hits_total",
     "Writes absorbed by the SRAM write buffer"),
    ("copy_on_writes", "envy_copy_on_writes_total",
     "Flash pages copied into SRAM on write"),
    ("flushes", "envy_flushes_total", "Buffer pages programmed to Flash"),
    ("clean_copies", "envy_clean_copies_total",
     "Pages copied by the cleaner"),
    ("erases", "envy_erases_total", "Segment erases"),
    ("wear_swaps", "envy_wear_swaps_total", "Wear-leveling segment swaps"),
    ("ecc_corrected", "envy_ecc_corrected_total",
     "Reads corrected by SEC-DED"),
    ("ecc_uncorrectable", "envy_ecc_uncorrectable_total",
     "Reads with uncorrectable corruption"),
    ("program_retries", "envy_program_retries_total",
     "Transient program failures retried"),
    ("erase_retries", "envy_erase_retries_total",
     "Transient erase failures retried"),
    ("bad_blocks_retired", "envy_bad_blocks_retired_total",
     "Segments retired as bad blocks"),
    ("checkpoints_written", "envy_checkpoints_total",
     "Metadata checkpoints written"),
]


def _labels(labels: Optional[Dict[str, object]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in labels)
    return "{" + inner + "}"


def _histogram_lines(name: str, help_text: str, hist: LatencyHistogram,
                     labels: Optional[Dict[str, object]] = None,
                     with_header: bool = True) -> List[str]:
    lines = ([f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
             if with_header else [])
    label_str = _labels(labels)
    base = dict(labels) if labels else {}
    cumulative = 0
    for _, high, count in hist.iter_buckets():
        cumulative += count
        lines.append(
            f'{name}_bucket{_labels(dict(base, le=high))} {cumulative}')
    lines.append(
        f'{name}_bucket{_labels(dict(base, le="+Inf"))} {hist.count}')
    lines.append(f"{name}_sum{label_str} {hist.total_ns}")
    lines.append(f"{name}_count{label_str} {hist.count}")
    return lines


def prometheus_text(metrics) -> str:
    """Render a :class:`~repro.core.metrics.ControllerMetrics` in the
    Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for attr, name, help_text in _COUNTERS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {getattr(metrics, attr)}")
    lines.append("# HELP envy_busy_ns_total Controller time by activity")
    lines.append("# TYPE envy_busy_ns_total counter")
    for activity in sorted(metrics.busy_ns):
        lines.append(f'envy_busy_ns_total{{activity="{activity}"}} '
                     f'{metrics.busy_ns[activity]}')
    lines.extend(_histogram_lines(
        "envy_read_latency_ns", "Host read latency (simulated ns)",
        metrics.read_latency))
    lines.extend(_histogram_lines(
        "envy_write_latency_ns", "Host write latency (simulated ns)",
        metrics.write_latency))
    return "\n".join(lines) + "\n"


#: Per-tenant service gauges taken straight off TenantStats attributes.
_SERVICE_COUNTERS = [
    ("throttled", "envy_service_throttled_total",
     "Requests refused by the tenant's token bucket"),
    ("delayed", "envy_service_delayed_total",
     "Writes delayed by cleaner-debt backpressure"),
    ("retried", "envy_service_retried_total",
     "Queue-full rejections absorbed as deferred retries"),
]


def service_prometheus_text(stats, security: Optional[dict] = None,
                            slo: Optional[dict] = None,
                            admission: Optional[dict] = None) -> str:
    """Per-tenant service (and security) series in Prometheus text.

    ``stats`` is a :class:`~repro.service.frontend.ServiceStats`;
    ``security`` the ``health_report()["security"]`` section (quarantine
    verdicts and detector flags); ``slo`` the ``health_report()["slo"]``
    section (burn rates); ``admission`` the ``health_report()
    ["admission"]`` section (closed-loop ladder states).  Runs with a
    DRAM cache tier additionally export ``envy_cache_*`` series.  Label
    sets iterate tenants in stats order and label values sorted, so two
    runs with the same seed produce byte-identical text at any
    ``--jobs`` setting.
    """
    lines: List[str] = []
    tenants = list(stats.tenants.items())

    lines.append("# HELP envy_service_requests_total "
                 "Requests served, by tenant and operation")
    lines.append("# TYPE envy_service_requests_total counter")
    for name, tstats in tenants:
        for op, count in (("read", tstats.reads), ("write", tstats.writes)):
            lines.append(f'envy_service_requests_total'
                         f'{{tenant="{name}",op="{op}"}} {count}')

    lines.append("# HELP envy_service_rejected_total "
                 "Requests rejected at admission, by tenant and reason")
    lines.append("# TYPE envy_service_rejected_total counter")
    for name, tstats in tenants:
        queue = tstats.extra.get("rejected_queue", 0)
        shed = tstats.extra.get("rejected_shed", 0)
        reasons = [("queue_full", queue), ("cleaner_behind", shed),
                   ("wear_budget", tstats.rejected_wear)]
        for reason, count in reasons:
            lines.append(f'envy_service_rejected_total'
                         f'{{tenant="{name}",reason="{reason}"}} {count}')

    for attr, name, help_text in _SERVICE_COUNTERS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for tenant, tstats in tenants:
            lines.append(f'{name}{{tenant="{tenant}"}} '
                         f'{getattr(tstats, attr)}')

    for op in ("read", "write"):
        name = f"envy_service_{op}_latency_ns"
        lines.append(f"# HELP {name} Tenant {op} latency (simulated ns)")
        lines.append(f"# TYPE {name} histogram")
        for tenant, tstats in tenants:
            lines.extend(_histogram_lines(
                name, "", getattr(tstats, f"{op}_latency"),
                labels={"tenant": tenant}, with_header=False))
    for quantile in ("50", "99"):
        name = f"envy_service_latency_p{quantile}_ns"
        lines.append(f"# HELP {name} Tenant p{quantile} latency "
                     f"(simulated ns)")
        lines.append(f"# TYPE {name} gauge")
        for tenant, tstats in tenants:
            for op in ("read", "write"):
                value = getattr(tstats, f"{op}_latency").percentile(
                    float(quantile))
                lines.append(f'{name}{{tenant="{tenant}",op="{op}"}} '
                             f'{value}')

    cached_run = (stats.cache_hits or stats.cache_misses
                  or stats.cache_evictions or stats.cache_invalidations)
    if cached_run:
        lines.append("# HELP envy_cache_requests_total "
                     "DRAM cache-tier probes, by tenant and outcome")
        lines.append("# TYPE envy_cache_requests_total counter")
        for name, tstats in tenants:
            for outcome, count in (("hit", tstats.cache_hits),
                                   ("miss", tstats.cache_misses)):
                lines.append(f'envy_cache_requests_total'
                             f'{{tenant="{name}",outcome="{outcome}"}} '
                             f'{count}')
        lines.append("# HELP envy_cache_evictions_total "
                     "Pages displaced from the DRAM cache tier")
        lines.append("# TYPE envy_cache_evictions_total counter")
        lines.append(f"envy_cache_evictions_total "
                     f"{stats.cache_evictions}")
        lines.append("# HELP envy_cache_invalidations_total "
                     "Cache entries dropped (writes, cleaner copies, "
                     "topology changes)")
        lines.append("# TYPE envy_cache_invalidations_total counter")
        lines.append(f"envy_cache_invalidations_total "
                     f"{stats.cache_invalidations}")
        lines.append("# HELP envy_cache_hit_rate "
                     "Service-wide cache hit rate of the last run")
        lines.append("# TYPE envy_cache_hit_rate gauge")
        lines.append(f"envy_cache_hit_rate "
                     f"{round(stats.cache_hit_rate, 6)}")

    if admission:
        states = admission.get("states", {})
        lines.append("# HELP envy_admission_state "
                     "Closed-loop admission ladder position "
                     "(1 = tenant is in the labelled state)")
        lines.append("# TYPE envy_admission_state gauge")
        for tenant in sorted(states):
            lines.append(f'envy_admission_state{{tenant="{tenant}",'
                         f'state="{states[tenant]}"}} 1')
        overrides = admission.get("rate_overrides", {})
        lines.append("# HELP envy_admission_rate_tps "
                     "Throttle/shed token-bucket override for next run")
        lines.append("# TYPE envy_admission_rate_tps gauge")
        for tenant in sorted(overrides):
            lines.append(f'envy_admission_rate_tps'
                         f'{{tenant="{tenant}"}} {overrides[tenant]}')

    if security is not None:
        lines.append("# HELP envy_security_quarantined "
                     "1 if the tenant is quarantined (value: capped tps)")
        lines.append("# TYPE envy_security_quarantined gauge")
        for tenant in sorted(security.get("quarantined", {})):
            rate = security["quarantined"][tenant]
            lines.append(
                f'envy_security_quarantined{{tenant="{tenant}"}} {rate}')
        lines.append("# HELP envy_security_flagged "
                     "1 if the attack detector flagged the tenant")
        lines.append("# TYPE envy_security_flagged gauge")
        flagged = security.get("flagged") or []
        flagged_names = sorted(
            entry.get("tenant", entry) if isinstance(entry, dict)
            else entry for entry in flagged)
        for tenant in flagged_names:
            lines.append(
                f'envy_security_flagged{{tenant="{tenant}"}} 1')

    if slo:
        lines.append("# HELP envy_slo_burn_rate "
                     "Error-budget burn rate, by tenant and window")
        lines.append("# TYPE envy_slo_burn_rate gauge")
        for tenant in sorted(slo):
            burn = slo[tenant].get("burn", {})
            for window in sorted(burn):
                lines.append(
                    f'envy_slo_burn_rate{{tenant="{tenant}",'
                    f'window="{window}"}} {burn[window]}')
        lines.append("# HELP envy_slo_violations_total "
                     "SLO-violating requests, by tenant and objective")
        lines.append("# TYPE envy_slo_violations_total counter")
        for tenant in sorted(slo):
            for objective in ("read", "write"):
                entry = slo[tenant].get(objective)
                if entry is not None:
                    lines.append(
                        f'envy_slo_violations_total{{tenant="{tenant}",'
                        f'objective="{objective}_p99"}} '
                        f'{entry["violations"]}')
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSONL / JSON dumps
# ----------------------------------------------------------------------

def events_jsonl(events: Iterable[ObsEvent]) -> str:
    """One JSON object per line, in event order (ends with newline)."""
    lines = [json.dumps(event.as_dict()) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def timeseries_json(windows, include_arrays: bool = True) -> str:
    """The sampler's windows as a JSON array of flat objects."""
    rows = [w.as_dict(include_arrays) for w in windows]
    return json.dumps(rows, indent=1)
