"""Log-bucketed latency histograms (the tails Section 5 cannot see).

The paper reports *average* latencies (Figure 15) and the metrics module
mirrored that with a bare min/max/mean stat.  But the phenomena the
reproduction now models — cleaning stalls at high utilization, write
buffer saturation, fault-retry storms — are tail phenomena: a mean of
200 ns hides the 1-in-100 write that waited 7 us behind a flush chain.

:class:`LatencyHistogram` is an HdrHistogram-style log-bucketed counter:

* values below ``2 * SUBBUCKETS`` are recorded exactly (one bucket per
  nanosecond), so the common fast-path latencies (160-200 ns region
  scaled down, or small counters) lose nothing;
* above that, each power-of-two octave is split into ``SUBBUCKETS``
  linear sub-buckets, bounding the relative quantization error at
  ``1 / SUBBUCKETS`` (6.25%) regardless of magnitude;
* buckets are kept sparsely (dict), so an idle histogram costs nothing
  and a busy one costs proportional to the distinct latency scales seen.

Count, total and min/max are tracked exactly; only the percentile
estimates are bucket-quantized.  ``merge`` is exact bucket addition, so
merging shard histograms equals recording every sample into one — a
property the test suite checks, and the reason per-worker histograms can
be combined after a parallel run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

__all__ = ["LatencyHistogram", "SUBBUCKETS", "RELATIVE_ERROR"]

#: Sub-buckets per power-of-two octave (must be a power of two).
SUBBUCKET_BITS = 4
SUBBUCKETS = 1 << SUBBUCKET_BITS
#: Worst-case relative bucket width for values >= ``2 * SUBBUCKETS``.
RELATIVE_ERROR = 1 / SUBBUCKETS


def bucket_index(value: int) -> int:
    """Bucket holding ``value`` (monotone non-decreasing in value)."""
    if value < 2 * SUBBUCKETS:
        return value
    shift = value.bit_length() - (SUBBUCKET_BITS + 1)
    return ((shift + 1) << SUBBUCKET_BITS) + ((value >> shift) - SUBBUCKETS)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``(low, high)`` value range of bucket ``index``."""
    if index < 2 * SUBBUCKETS:
        return index, index
    shift = (index >> SUBBUCKET_BITS) - 1
    mantissa = SUBBUCKETS + (index & (SUBBUCKETS - 1))
    return mantissa << shift, ((mantissa + 1) << shift) - 1


class LatencyHistogram:
    """Streaming histogram of non-negative integer samples (nanoseconds).

    API superset of the old ``LatencyStat``: ``record``, ``merge``,
    ``count``, ``total_ns``, ``min_ns``, ``max_ns``, ``mean_ns`` behave
    identically; percentiles, bucket iteration and snapshot/restore are
    new.
    """

    __slots__ = ("count", "total_ns", "_min_ns", "_max_ns", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self._min_ns = 0
        self._max_ns = 0
        #: Sparse bucket counts: bucket index -> samples.
        self.buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, ns: int) -> None:
        ns = int(ns)
        if ns < 0:
            ns = 0
        if self.count == 0 or ns < self._min_ns:
            self._min_ns = ns
        if ns > self._max_ns:
            self._max_ns = ns
        self.count += 1
        self.total_ns += ns
        # bucket_index(ns), inlined: record() is called once per
        # simulated access and the function-call overhead dominates it.
        if ns < 2 * SUBBUCKETS:
            index = ns
        else:
            shift = ns.bit_length() - (SUBBUCKET_BITS + 1)
            index = (((shift + 1) << SUBBUCKET_BITS)
                     + ((ns >> shift) - SUBBUCKETS))
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` in; exactly equivalent to recording its
        samples here (bucket counts are additive)."""
        if other.count == 0:
            return
        if self.count == 0 or other._min_ns < self._min_ns:
            self._min_ns = other._min_ns
        if other._max_ns > self._max_ns:
            self._max_ns = other._max_ns
        self.count += other.count
        self.total_ns += other.total_ns
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def reset(self) -> None:
        self.count = 0
        self.total_ns = 0
        self._min_ns = 0
        self._max_ns = 0
        self.buckets = {}

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    @property
    def min_ns(self) -> int:
        return self._min_ns if self.count else 0

    @property
    def max_ns(self) -> int:
        return self._max_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket holding the p-th percentile sample.

        Exact for values below ``2 * SUBBUCKETS``; otherwise within
        ``1/SUBBUCKETS`` (6.25%) above the true sample.  Monotone
        non-decreasing in ``p`` and clamped to ``[min_ns, max_ns]``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0
        target = max(1, -(-self.count * p // 100))  # ceil
        running = 0
        for index in sorted(self.buckets):
            running += self.buckets[index]
            if running >= target:
                high = bucket_bounds(index)[1]
                return min(max(high, self._min_ns), self._max_ns)
        return self._max_ns  # pragma: no cover - target <= count always

    @property
    def p50(self) -> int:
        return self.percentile(50)

    @property
    def p90(self) -> int:
        return self.percentile(90)

    @property
    def p99(self) -> int:
        return self.percentile(99)

    @property
    def p999(self) -> int:
        return self.percentile(99.9)

    def percentiles(self) -> Dict[str, int]:
        """The standard tail summary as a flat dict."""
        return {"p50": self.p50, "p90": self.p90,
                "p99": self.p99, "p999": self.p999}

    # ------------------------------------------------------------------
    # Bucket views (exporters, dashboards)
    # ------------------------------------------------------------------

    def iter_buckets(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(low_ns, high_ns, count)`` for occupied buckets."""
        for index in sorted(self.buckets):
            low, high = bucket_bounds(index)
            yield low, high, self.buckets[index]

    def octaves(self) -> List[Tuple[int, int, int]]:
        """Bucket counts coarsened to power-of-two octaves.

        Returns ``(low, high, count)`` rows suitable for a compact ASCII
        rendering; empty octaves between occupied ones are included so
        bar charts keep a log-linear x axis.
        """
        if not self.buckets:
            return []
        per_octave: Dict[int, int] = {}
        for index, count in self.buckets.items():
            low, _ = bucket_bounds(index)
            octave = low.bit_length() - 1 if low else 0
            per_octave[octave] = per_octave.get(octave, 0) + count
        lo, hi = min(per_octave), max(per_octave)
        return [((1 << o) if o else 0,
                 (1 << (o + 1)) - 1,
                 per_octave.get(o, 0))
                for o in range(lo, hi + 1)]

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """A plain, JSON/pickle-friendly snapshot of the histogram."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self._min_ns,
            "max_ns": self._max_ns,
            "buckets": {int(k): int(v) for k, v in self.buckets.items()},
        }

    def load_state(self, state: dict) -> None:
        self.count = int(state["count"])
        self.total_ns = int(state["total_ns"])
        self._min_ns = int(state["min_ns"])
        self._max_ns = int(state["max_ns"])
        self.buckets = {int(k): int(v)
                        for k, v in state["buckets"].items()}

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        hist = cls()
        hist.load_state(state)
        return hist

    # ------------------------------------------------------------------

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0 (empty)"
        return (f"n={self.count} mean={self.mean_ns:.0f}ns "
                f"p50={self.p50} p99={self.p99} "
                f"[{self.min_ns}..{self.max_ns}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"
