"""The observability hub: one attach point that turns everything on.

:class:`ObservabilityHub` subscribes to a controller's event bus and,
from the single event stream, maintains every derived view at once:

* the raw event list (bounded; overflow is counted, never silent),
* per-kind counts and per-kind *duration* histograms (how long do
  erases take vs flushes vs host reads),
* the windowed time-series sampler (driven by event timestamps), and
* export helpers for the Chrome-trace / Prometheus / JSONL formats.

Attaching a hub flips the bus active; detaching it returns the
controller to the zero-overhead disabled state.  The hub also registers
itself as ``controller.observability`` so ``health_report()`` can fold
in percentiles and the latest window.

Usage::

    ctrl = EnvyController(config)
    hub = ObservabilityHub(ctrl, sample_interval_ns=1_000_000)
    ... run workload ...
    hub.close()                     # stop observing, close last window
    hub.write_exports("out/")       # trace.json, metrics.prom, ...
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import EventBus, ObsEvent
from .export import (chrome_trace, events_jsonl, prometheus_text,
                     timeseries_json)
from .hist import LatencyHistogram
from .timeseries import TimeSeriesSampler, Window

__all__ = ["ObservabilityHub"]


class ObservabilityHub:
    """Subscribes to a controller's bus and maintains all derived views."""

    def __init__(self, controller, sample_interval_ns: int = 1_000_000,
                 max_events: int = 500_000,
                 keep_events: bool = True) -> None:
        self.controller = controller
        self.max_events = max_events
        self.keep_events = keep_events
        #: Raw events in emission order (capped at ``max_events``).
        self.events: List[ObsEvent] = []
        #: Events discarded after the cap was hit (never silent).
        self.dropped_events = 0
        self.kind_counts: Dict[str, int] = {}
        #: Span-duration histograms, one per event kind with ``dur_ns``.
        self.span_histograms: Dict[str, LatencyHistogram] = {}
        self.sampler = TimeSeriesSampler(controller, sample_interval_ns)
        self.closed = False
        controller.events.subscribe(self._on_event)
        controller.observability = self

    # ------------------------------------------------------------------

    def _on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if event.dur_ns > 0:
            hist = self.span_histograms.get(kind)
            if hist is None:
                hist = self.span_histograms[kind] = LatencyHistogram()
            hist.record(event.dur_ns)
        if self.keep_events:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped_events += 1
        self.sampler.observe(event.t_ns + event.dur_ns)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop observing and close the trailing sampler window.

        The collected data stays readable (and the hub stays registered
        as ``controller.observability``); only the subscription ends, so
        the bus returns to its zero-overhead state if nothing else is
        attached.
        """
        if self.closed:
            return
        self.controller.events.unsubscribe(self._on_event)
        self.sampler.flush()
        self.closed = True

    def latest_window(self) -> Optional[Window]:
        return self.sampler.latest()

    def total_events(self) -> int:
        return sum(self.kind_counts.values())

    def time_by_kind(self) -> Dict[str, int]:
        """Total simulated span time per kind, descending."""
        totals = {kind: hist.total_ns
                  for kind, hist in self.span_histograms.items()}
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def chrome_trace_json(self) -> str:
        return chrome_trace(self.events)

    def prometheus(self) -> str:
        return prometheus_text(self.controller.metrics)

    def events_jsonl(self) -> str:
        return events_jsonl(self.events)

    def timeseries(self, include_arrays: bool = True) -> str:
        return timeseries_json(self.sampler.windows, include_arrays)

    def write_exports(self, out_dir: str) -> Dict[str, str]:
        """Write all four exports into ``out_dir``; returns name->path."""
        import os

        os.makedirs(out_dir, exist_ok=True)
        written = {}
        for name, payload in [
            ("trace.json", self.chrome_trace_json()),
            ("metrics.prom", self.prometheus()),
            ("events.jsonl", self.events_jsonl()),
            ("timeseries.json", self.timeseries()),
        ]:
            path = os.path.join(out_dir, name)
            with open(path, "w") as handle:
                handle.write(payload)
            written[name] = path
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ObservabilityHub({self.total_events()} events, "
                f"{len(self.sampler.windows)} windows"
                f"{', closed' if self.closed else ''})")
