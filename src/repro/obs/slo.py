"""Per-tenant SLO tracking: objectives, violations, burn rates.

A tenant declares objectives on its :class:`~repro.service.tenant.
TenantSpec` — ``slo_read_p99_ns`` / ``slo_write_p99_ns`` latency bounds
that a ``slo_target`` fraction of requests must meet, and/or a
``slo_throughput_tps`` floor on served accesses per simulated second.
The :class:`SLOTracker` is fed once per :meth:`~repro.service.frontend.
EnvyService.run` with the merged per-tenant stats and reports, for
every tenant with a declared SLO:

* **violation counts** — requests over the latency bound, counted from
  the exact merged histograms (a request violates when its entire
  bucket lies above the bound; a bucket straddling the bound counts as
  compliant, so quantization never inflates violations and the count is
  identical across reruns and ``--jobs``);
* **error-budget burn rates** over multiple windows — ``last`` (the
  most recent run), ``recent`` (the last :data:`RECENT_WINDOW_RUNS`
  runs) and ``lifetime`` (every observed run).  A burn rate of 1.0
  means violations are consuming the budget exactly as fast as the
  target allows (a ``slo_target`` of 0.99 budgets 1% of requests);
  above 1.0 the tenant is burning error budget faster than it accrues —
  the multi-window pair (fast ``last`` window, slow ``lifetime``
  window) is the standard page/ticket split.

Everything here is integer/ratio arithmetic over deterministic inputs,
so ``health_report()["slo"]`` is a pure function of
``(tenants, durations, seed)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .hist import LatencyHistogram

__all__ = ["SLOTracker", "violations_over", "RECENT_WINDOW_RUNS"]

#: Runs aggregated into the ``recent`` burn-rate window.
RECENT_WINDOW_RUNS = 4


def violations_over(hist: LatencyHistogram, bound_ns: int) -> int:
    """Requests whose latency certainly exceeded ``bound_ns``.

    Counts occupied buckets whose *lower* edge is above the bound, so a
    bucket straddling the bound never counts — conservative, exact for
    sub-bucket values, and independent of merge order.
    """
    violations = 0
    for low, _, count in hist.iter_buckets():
        if low > bound_ns:
            violations += count
    return violations


class _Objective:
    """One tenant's declared objectives plus the per-run history."""

    __slots__ = ("read_p99_ns", "write_p99_ns", "throughput_tps",
                 "target", "runs")

    def __init__(self, read_p99_ns: Optional[int],
                 write_p99_ns: Optional[int],
                 throughput_tps: Optional[float], target: float) -> None:
        self.read_p99_ns = read_p99_ns
        self.write_p99_ns = write_p99_ns
        self.throughput_tps = throughput_tps
        self.target = target
        #: One entry per observed run:
        #: {"requests", "violations", "served", "duration_s"}.
        self.runs: List[Dict[str, float]] = []


class SLOTracker:
    """Tracks declared per-tenant SLOs across service runs."""

    def __init__(self, tenants) -> None:
        self._objectives: Dict[str, _Objective] = {}
        for spec in tenants:
            if (spec.slo_read_p99_ns is None
                    and spec.slo_write_p99_ns is None
                    and spec.slo_throughput_tps is None):
                continue
            self._objectives[spec.name] = _Objective(
                spec.slo_read_p99_ns, spec.slo_write_p99_ns,
                spec.slo_throughput_tps, spec.slo_target)

    def __bool__(self) -> bool:
        return bool(self._objectives)

    @property
    def tracked_tenants(self) -> List[str]:
        return sorted(self._objectives)

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(self, stats, duration_s: float) -> None:
        """Fold one run's merged :class:`~repro.service.frontend.
        ServiceStats` into every tracked tenant's history."""
        for name, objective in self._objectives.items():
            tstats = stats.tenants.get(name)
            if tstats is None:
                continue
            requests = 0
            violations = 0
            per_op = {}
            for op, bound in (("read", objective.read_p99_ns),
                              ("write", objective.write_p99_ns)):
                if bound is None:
                    continue
                hist = getattr(tstats, f"{op}_latency")
                over = violations_over(hist, bound)
                per_op[op] = over
                requests += hist.count
                violations += over
            objective.runs.append({
                "requests": requests,
                "violations": violations,
                "per_op": per_op,
                "served": tstats.served,
                "duration_s": duration_s,
            })

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @staticmethod
    def _burn(runs: List[Dict[str, float]], budget: float) -> float:
        requests = sum(run["requests"] for run in runs)
        violations = sum(run["violations"] for run in runs)
        if not requests:
            return 0.0
        return round(violations / requests / budget, 6)

    def report(self) -> Dict[str, dict]:
        """``health_report()["slo"]``: per tracked tenant, the declared
        objectives, last-run violation counts, achieved throughput, and
        multi-window burn rates.  Deterministic per seed."""
        out: Dict[str, dict] = {}
        for name in sorted(self._objectives):
            objective = self._objectives[name]
            budget = 1.0 - objective.target
            runs = objective.runs
            last = runs[-1] if runs else None
            entry: Dict[str, object] = {
                "target": objective.target,
                "runs_observed": len(runs),
            }
            for op, bound in (("read", objective.read_p99_ns),
                              ("write", objective.write_p99_ns)):
                if bound is None:
                    continue
                entry[op] = {"bound_p99_ns": bound,
                             "violations": (last["per_op"][op]
                                            if last else 0)}
            if last is not None:
                entry["last_requests"] = last["requests"]
                entry["last_violations"] = last["violations"]
            burn = {
                "last": self._burn(runs[-1:], budget),
                "recent": self._burn(runs[-RECENT_WINDOW_RUNS:], budget),
                "lifetime": self._burn(runs, budget),
            }
            entry["burn"] = burn
            met = burn["last"] <= 1.0
            if objective.throughput_tps is not None:
                served = sum(run["served"] for run in runs)
                seconds = sum(run["duration_s"] for run in runs)
                last_tps = (last["served"] / last["duration_s"]
                            if last and last["duration_s"] else 0.0)
                lifetime_tps = served / seconds if seconds else 0.0
                throughput = {
                    "floor_tps": objective.throughput_tps,
                    "last_tps": round(last_tps, 1),
                    "lifetime_tps": round(lifetime_tps, 1),
                    "met": last_tps >= objective.throughput_tps,
                }
                entry["throughput"] = throughput
                met = met and bool(throughput["met"])
            entry["met"] = met
            out[name] = entry
        return out
