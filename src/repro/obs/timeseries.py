"""Windowed time-series sampling of system gauges over simulated time.

Percentile histograms say *how bad* the tail is; they cannot say *when*
it happened or what the system looked like at that moment.  The sampler
closes that gap: at a fixed simulated-time cadence it snapshots the
rates (reads, writes, flushes, cleaner copies, erases per window) and
gauges (buffer occupancy, cleaning backlog, utilization, wear spread)
whose co-movement explains the tails — e.g. write p99 spikes line up
with windows where buffer occupancy pinned at 100% and cleaning backlog
grew, which is exactly the Figure 15 saturation story told over time.

The sampler is driven by the observability hub: every event's timestamp
is fed to :meth:`observe`, which closes as many whole windows as the
clock has passed.  Between events nothing runs, so an idle system costs
nothing and a busy one costs one comparison per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Window", "TimeSeriesSampler"]


@dataclass
class Window:
    """One closed sampling window: deltas over it, gauges at its end."""

    t_start_ns: int
    t_end_ns: int
    # --- rates (deltas over the window) ------------------------------
    reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    flushes: int = 0
    clean_copies: int = 0
    erases: int = 0
    retries: int = 0
    faults: int = 0
    # --- gauges (state at window close) ------------------------------
    buffer_pages: int = 0
    buffer_capacity: int = 0
    #: Dead (invalidated, not yet erased) pages across the store — the
    #: cleaning backlog the cleaner must eventually move past.
    cleaning_backlog_pages: int = 0
    utilization: float = 0.0
    wear_spread: int = 0
    #: Live fraction of each position (segment-resolution heat data).
    per_position_utilization: List[float] = field(default_factory=list)
    #: Erase cycles per physical segment (wear heat data).
    per_segment_erases: List[int] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return max(1, self.t_end_ns - self.t_start_ns)

    @property
    def buffer_occupancy(self) -> float:
        if not self.buffer_capacity:
            return 0.0
        return self.buffer_pages / self.buffer_capacity

    def rate_per_s(self, count: int) -> float:
        return count * 1e9 / self.duration_ns

    def as_dict(self, include_arrays: bool = True) -> dict:
        row = {
            "t_start_ns": self.t_start_ns,
            "t_end_ns": self.t_end_ns,
            "reads": self.reads,
            "writes": self.writes,
            "buffer_hits": self.buffer_hits,
            "flushes": self.flushes,
            "clean_copies": self.clean_copies,
            "erases": self.erases,
            "retries": self.retries,
            "faults": self.faults,
            "buffer_pages": self.buffer_pages,
            "buffer_capacity": self.buffer_capacity,
            "buffer_occupancy": round(self.buffer_occupancy, 4),
            "cleaning_backlog_pages": self.cleaning_backlog_pages,
            "utilization": round(self.utilization, 4),
            "wear_spread": self.wear_spread,
        }
        if include_arrays:
            row["per_position_utilization"] = self.per_position_utilization
            row["per_segment_erases"] = self.per_segment_erases
        return row


class _CounterBaseline:
    """Controller-metrics counter values at the last window close."""

    __slots__ = ("reads", "writes", "buffer_hits", "flushes",
                 "clean_copies", "erases", "retries", "faults")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.flushes = 0
        self.clean_copies = 0
        self.erases = 0
        self.retries = 0
        self.faults = 0

    def capture(self, metrics) -> None:
        self.reads = metrics.reads
        self.writes = metrics.writes
        self.buffer_hits = metrics.buffer_hits
        self.flushes = metrics.flushes
        self.clean_copies = metrics.clean_copies
        self.erases = metrics.erases
        self.retries = metrics.program_retries + metrics.erase_retries
        self.faults = (metrics.ecc_corrected + metrics.ecc_uncorrectable
                       + metrics.bad_blocks_retired)


class TimeSeriesSampler:
    """Closes fixed-cadence windows as the observability clock advances."""

    def __init__(self, controller, interval_ns: int = 1_000_000) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.controller = controller
        self.interval_ns = interval_ns
        self.windows: List[Window] = []
        self._window_start = controller.events.clock_ns
        self._baseline = _CounterBaseline()
        self._baseline.capture(controller.metrics)

    # ------------------------------------------------------------------

    def observe(self, t_ns: int) -> None:
        """Close every whole window the clock has moved past."""
        while t_ns - self._window_start >= self.interval_ns:
            self._close(self._window_start + self.interval_ns)

    def flush(self, t_ns: Optional[int] = None) -> None:
        """Close the trailing partial window (end of run)."""
        end = t_ns if t_ns is not None else self.controller.events.clock_ns
        if end > self._window_start:
            self._close(end)

    def latest(self) -> Optional[Window]:
        return self.windows[-1] if self.windows else None

    # ------------------------------------------------------------------

    def _close(self, end_ns: int) -> None:
        controller = self.controller
        metrics = controller.metrics
        base = self._baseline
        window = Window(t_start_ns=self._window_start, t_end_ns=end_ns)
        window.reads = metrics.reads - base.reads
        window.writes = metrics.writes - base.writes
        window.buffer_hits = metrics.buffer_hits - base.buffer_hits
        window.flushes = metrics.flushes - base.flushes
        window.clean_copies = metrics.clean_copies - base.clean_copies
        window.erases = metrics.erases - base.erases
        retries = metrics.program_retries + metrics.erase_retries
        window.retries = retries - base.retries
        faults = (metrics.ecc_corrected + metrics.ecc_uncorrectable
                  + metrics.bad_blocks_retired)
        window.faults = faults - base.faults
        # Gauges at window close.
        window.buffer_pages = len(controller.buffer)
        window.buffer_capacity = controller.buffer.capacity_pages
        occupancy = controller.store.occupancy()
        window.cleaning_backlog_pages = occupancy["dead_pages"]
        window.utilization = occupancy["utilization"]
        window.per_position_utilization = \
            occupancy["per_position_utilization"]
        wear = controller.array.wear_stats()
        window.wear_spread = wear.spread
        window.per_segment_erases = list(wear.erase_counts)
        self.windows.append(window)
        self._window_start = end_ns
        base.capture(metrics)

    def as_dicts(self, include_arrays: bool = True) -> List[dict]:
        return [w.as_dict(include_arrays) for w in self.windows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TimeSeriesSampler({len(self.windows)} windows of "
                f"{self.interval_ns}ns)")
