"""Request-level tracing: span trees and tail-latency attribution.

Every service request admitted by the front-end carries a deterministic
request id (its index in the merged schedule — a pure function of
``(tenants, duration, seed)``).  When a run is traced, each
:class:`~repro.service.executor.ShardExecutor` records, per request, an
exact critical-path decomposition of its end-to-end latency plus the
child spans the controller emitted while serving it (buffer flushes,
cleaner copies, erases, fault retries).  This module aggregates those
rows into a :class:`TraceReport`: slowest-N listings, per-tenant blame
breakdowns for the p99+ tail, and a Perfetto export with flow events
linking one request's spans across shard tracks.

The decomposition is *exact integer arithmetic*, not sampling: every
nanosecond of ``end - original_arrival`` lands in exactly one component,
so the components of any row sum to its latency with zero error
(:meth:`TraceReport.validate` proves it).  The components:

==============  ========================================================
``queue``       waiting behind earlier foreground requests on this shard
``redundancy``  waiting behind ``__redundancy__``/``__rebuild__``
                overhead traffic (replica programs, parity maintenance,
                rebuild copies)
``retry_wait``  backoff between the original arrival and the served
                attempt (queue-full retries)
``throttle``    cleaner-debt soft-watermark penalty
``flush_stall`` write-buffer flush chains (and checkpoints) the request
                stalled on, including background overdraft it paid off
``clean_stall`` cleaner copies and segment erases inside the stall
``fault_retry`` fault-driven program/erase retries inside the stall
``service``     the device access itself (stall-free controller time)
==============  ========================================================

Tracing obeys the bus discipline: executors publish each request as a
``service.request`` span on the controller's :class:`~repro.obs.events.
EventBus`, instrumentation costs one ``bus.active`` check when tracing
is off, and a traced run's simulation metrics are bit-identical to an
untraced one (the test suite verifies both).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from .events import SERVICE_REQUEST, ObsEvent
from .export import chrome_trace

__all__ = ["COMPONENTS", "TraceReport", "merge_shard_traces"]

#: Critical-path components, in canonical display order.  Per traced
#: request these are non-negative integers summing exactly to the
#: request's end-to-end latency.
COMPONENTS = ("queue", "redundancy", "retry_wait", "throttle",
              "flush_stall", "clean_stall", "fault_retry", "service")


def merge_shard_traces(shard_traces: Iterable[Optional[dict]]
                       ) -> Tuple[List[dict], Dict[str, List[int]]]:
    """Merge per-shard trace payloads deterministically.

    Shard results arrive in shard order (``run_sweep`` preserves input
    order); rows merge sorted by ``(rid, shard, start_ns)`` so the
    merged stream is identical for every ``jobs`` setting, and the
    background summaries (untraced controller work between requests)
    add per kind.
    """
    rows: List[dict] = []
    background: Dict[str, List[int]] = {}
    for payload in shard_traces:
        if not payload:
            continue
        rows.extend(payload.get("rows", ()))
        for kind, (count, total_ns) in payload.get("background",
                                                   {}).items():
            slot = background.setdefault(kind, [0, 0])
            slot[0] += count
            slot[1] += total_ns
    rows.sort(key=lambda row: (row["rid"], row["shard"],
                               row["start_ns"]))
    return rows, background


class TraceReport:
    """Merged request trace of one service run."""

    def __init__(self, rows: List[dict],
                 background: Optional[Dict[str, List[int]]] = None,
                 num_shards: int = 1) -> None:
        #: Every traced row (served, rejected and pseudo-tenant rows),
        #: sorted by ``(rid, shard, start_ns)``.
        self.rows = rows
        #: Untraced controller work between requests: kind ->
        #: ``[count, total_ns]``.
        self.background = background or {}
        self.num_shards = num_shards

    # ------------------------------------------------------------------
    # Row views
    # ------------------------------------------------------------------

    def served(self, include_pseudo: bool = False) -> List[dict]:
        """Rows that completed service (the ones with latency)."""
        return [row for row in self.rows
                if row["outcome"] == "served"
                and (include_pseudo or not row["tenant"].startswith("__"))]

    def slowest(self, n: int = 10) -> List[dict]:
        """The n slowest served foreground requests, ties broken by
        ``(rid, shard)`` so the listing is deterministic."""
        return sorted(self.served(),
                      key=lambda row: (-row["latency_ns"], row["rid"],
                                       row["shard"]))[:n]

    # ------------------------------------------------------------------
    # Validation (the 1ns acceptance criterion, met with 0ns to spare)
    # ------------------------------------------------------------------

    def validate(self) -> int:
        """Worst absolute error between a served row's component sum and
        its end-to-end latency, in nanoseconds.  Exact decomposition
        means this returns 0."""
        worst = 0
        for row in self.served(include_pseudo=True):
            err = abs(sum(row["components"][c] for c in COMPONENTS)
                      - row["latency_ns"])
            if err > worst:
                worst = err
        return worst

    # ------------------------------------------------------------------
    # Tail blame
    # ------------------------------------------------------------------

    def blame(self, percentile: float = 99.0) -> Dict[str, dict]:
        """Per-tenant component blame for the latency tail.

        For each tenant, the threshold is the exact ``percentile``-th
        latency of its served requests (nearest-rank on the true sorted
        latencies — no histogram quantization); rows at or above it are
        the tail, and their components sum into blame *shares* (each
        component's fraction of the tail's total latency).  Pure integer
        sums divided once at the end, so shares are identical across
        reruns and ``--jobs``.
        """
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        per_tenant: Dict[str, List[dict]] = {}
        for row in self.served():
            per_tenant.setdefault(row["tenant"], []).append(row)
        report: Dict[str, dict] = {}
        for tenant in sorted(per_tenant):
            rows = per_tenant[tenant]
            latencies = sorted(row["latency_ns"] for row in rows)
            rank = max(1, -(-len(latencies) * int(percentile * 100)
                            // 10_000))  # ceil at 0.01% resolution
            threshold = latencies[rank - 1]
            tail = [row for row in rows
                    if row["latency_ns"] >= threshold]
            sums = {component: 0 for component in COMPONENTS}
            for row in tail:
                for component in COMPONENTS:
                    sums[component] += row["components"][component]
            total = sum(sums.values())
            report[tenant] = {
                "requests": len(rows),
                "tail_requests": len(tail),
                "threshold_ns": threshold,
                "tail_total_ns": total,
                "component_ns": sums,
                "shares": {component: (round(sums[component] / total, 6)
                                       if total else 0.0)
                           for component in COMPONENTS},
            }
        return report

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def to_events(self) -> List[ObsEvent]:
        """Every traced request as a ``service.request`` span plus its
        child spans, in merged row order."""
        events: List[ObsEvent] = []
        for row in self.rows:
            if row["outcome"] != "served":
                continue
            data = {"rid": row["rid"], "tenant": row["tenant"],
                    "shard": row["shard"], "op": row["op"]}
            data.update(row["components"])
            events.append(ObsEvent(
                SERVICE_REQUEST, row["start_ns"],
                max(1, row["end_ns"] - row["start_ns"]), data))
            for kind, t_ns, dur_ns in row.get("children", ()):
                events.append(ObsEvent(kind, t_ns, dur_ns,
                                       {"shard": row["shard"],
                                        "rid": row["rid"]}))
        return events

    def chrome_trace(self,
                     process_name: str = "eNVy service (traced)") -> str:
        """Perfetto JSON: per-shard ``shard<N>`` tracks, one span per
        request, flow arrows linking rows that share a rid (replica /
        parity fan-out)."""
        return chrome_trace(self.to_events(), process_name,
                            flow_key="rid")

    def to_jsonl(self) -> str:
        """One JSON object per traced row (ends with newline)."""
        lines = []
        for row in self.rows:
            out = dict(row)
            if "children" in out:
                out["children"] = [list(child)
                                   for child in out["children"]]
            lines.append(json.dumps(out, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        """Deterministic summary (the determinism tests compare this)."""
        served = self.served()
        outcomes: Dict[str, int] = {}
        for row in self.rows:
            outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
        return {
            "rows": len(self.rows),
            "served": len(served),
            "outcomes": {key: outcomes[key] for key in sorted(outcomes)},
            "max_decomposition_error_ns": self.validate(),
            "blame": self.blame(),
            "background": {kind: list(self.background[kind])
                           for kind in sorted(self.background)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceReport({len(self.rows)} rows, "
                f"{len(self.served())} served, "
                f"{self.num_shards} shards)")
