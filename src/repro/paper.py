"""The paper's quantitative claims, as an executable checklist.

Every number the paper states is registered here with its section and a
check function; ``python -m repro claims`` runs the fast ones and prints
a verification report, and the test suite runs them all.  This is the
reproduction's contract made explicit: if a refactor breaks a claim,
the checklist names the section of the paper that no longer holds.

Only claims verifiable in a few seconds run by default; the simulation-
scale claims (Figures 8-15) have their own benchmarks and are listed
here with ``fast=False`` pointing at them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["Claim", "CLAIMS", "verify_claims"]


@dataclass
class Claim:
    section: str
    statement: str
    fast: bool
    check: Optional[Callable[[], bool]] = None
    bench: Optional[str] = None

    def run(self) -> Optional[bool]:
        if self.check is None:
            return None
        try:
            return bool(self.check())
        except Exception:
            return False


def _figure1_costs() -> bool:
    from .core import EnvyConfig, system_cost

    cost = system_cost(EnvyConfig.paper())
    return (abs(cost.total_dollars - 70_000) < 3_500
            and abs(cost.sram_only_alternative() - 250_000) < 12_000
            and abs(cost.page_table_overhead - 0.10) < 0.02)


def _figure12_geometry() -> bool:
    from .core import EnvyConfig, TpcParams

    config = EnvyConfig.paper()
    tpc = TpcParams()
    return (config.flash.num_chips == 2048
            and config.flash.num_segments == 128
            and config.flash.segment_bytes == 16 << 20
            and config.pages_per_segment == 65_536
            and tpc.index_levels(tpc.num_accounts) == 5
            and tpc.index_levels(tpc.num_tellers) == 3
            and tpc.index_levels(tpc.num_branches) == 2)


def _cleaning_cost_at_80() -> bool:
    from .cleaning import cleaning_cost

    return abs(cleaning_cost(0.8) - 4.0) < 1e-9


def _lifetime_example() -> bool:
    from .core.lifetime import paper_example

    example = paper_example()
    return abs(example.days - 3151) < 35


def _latency_model() -> bool:
    from .core import EnvyConfig, EnvySystem

    system = EnvySystem(EnvyConfig.small(num_segments=8,
                                         pages_per_segment=32),
                        store_data=False)
    system.read(0, 1)  # warm the MMU
    _, read_ns = system.read_timed(0, 8)
    cow_ns = system.write(0, b"x")
    hit_ns = system.write(1, b"y")
    return read_ns == 160 and cow_ns == 260 and hit_ns == 160


def _endurance_anecdote() -> bool:
    from .flash.endurance import paper_anecdote_check

    result = paper_anecdote_check()
    return (result["modelled_at_2M_cycles_ns"] < 10_000
            and result["spec_failure_cycles"] > 1_000_000)


def _parallel_flush() -> bool:
    import random

    from .core import EnvyConfig, EnvySystem
    from .ext import ParallelFlushScheduler

    system = EnvySystem(EnvyConfig.small(num_segments=32,
                                         pages_per_segment=64,
                                         partition_segments=4),
                        store_data=False)
    rng = random.Random(1)
    for _ in range(60):
        system.write(rng.randrange(system.size_bytes - 8), b"y" * 8)
    scheduler = ParallelFlushScheduler(system, max_concurrency=8)
    scheduler.drain(40)
    return scheduler.mean_flush_time_ns < 1000


CLAIMS: List[Claim] = [
    Claim("Fig 1 / §5.1", "2 GB system ~$70k; SRAM alternative ~$250k; "
          "page table ~10% of flash cost", True, _figure1_costs),
    Claim("Fig 12", "2048 chips, 128 segments of 16 MB, 65,536 pages "
          "per segment; TPC index depths 5/3/2", True,
          _figure12_geometry),
    Claim("§4.1 / Fig 6", "cleaning cost is u/(1-u): exactly 4 at 80% "
          "utilization", True, _cleaning_cost_at_80),
    Claim("§5.5", "10,376 pages/s at cost 1.97 on 1M-cycle parts gives "
          "3,151 days (8.63 years)", True, _lifetime_example),
    Claim("§5.1/§5.4", "raw accesses 160 ns; copy-on-write 260 ns; "
          "buffered writes 160 ns (averages 180/200 under TPC-A)",
          True, _latency_model),
    Claim("§2", "a 10,000-cycle-rated part still programs near 4 us "
          "after 2M cycles, far under the 250 us limit", True,
          _endurance_anecdote),
    Claim("§6", "4-8 concurrent programs drop per-page flush time "
          "from 4 us to under 1 us", True, _parallel_flush),
    Claim("Fig 8", "greedy degrades with locality; locality gathering "
          "pinned ~4 uniform, improves with locality; hybrid best "
          "overall", False, bench="bench_fig08_policy_comparison.py"),
    Claim("Fig 9", "hybrid partition sweet spot at ~16 segments for a "
          "128-segment array", False,
          bench="bench_fig09_partition_size.py"),
    Claim("Fig 10", "more segments help until each is ~1% of the "
          "array", False, bench="bench_fig10_segment_count.py"),
    Claim("Fig 13", "throughput tracks request rate, saturating around "
          "30k TPS", False, bench="bench_fig13_throughput.py"),
    Claim("Fig 14", "throughput flat to ~80% utilization, then a steep "
          "drop", False, bench="bench_fig14_utilization.py"),
    Claim("Fig 15", "reads ~180 ns at all loads; writes jump from "
          "~200 ns to microseconds at saturation", False,
          bench="bench_fig15_latency.py"),
    Claim("§5.3", "at saturation ~40% reads, ~30% cleaning, ~15% "
          "flushing; SRAM-only bound ~2.5x", False,
          bench="bench_sec53_breakdown.py"),
]


def verify_claims(include_slow_listing: bool = True) -> List[tuple]:
    """Run every fast claim; returns (claim, passed-or-None) pairs."""
    results = []
    for claim in CLAIMS:
        if claim.fast:
            results.append((claim, claim.run()))
        elif include_slow_listing:
            results.append((claim, None))
    return results
