"""Performance layer: parallel sweep runner and perf-regression bench.

The paper's figures are grids of independent simulation points;
:func:`run_sweep` fans them out across processes with results identical
to a serial loop (see :mod:`repro.perf.sweep` for the determinism
contract).  :mod:`repro.perf.bench` is the harness behind
``benchmarks/bench_perf.py`` and ``python -m repro perf``, which track
simulator throughput over time in ``BENCH_PERF.json``.
"""

from .bench import SCENARIOS, compare_reports, run_bench
from .points import cleaning_cost_point, tpca_point
from .sweep import derive_seed, resolve_jobs, run_sweep

__all__ = [
    "run_sweep",
    "resolve_jobs",
    "derive_seed",
    "cleaning_cost_point",
    "tpca_point",
    "run_bench",
    "compare_reports",
    "SCENARIOS",
]
