"""Perf-regression harness: canonical scenarios, wall-clock, trajectory.

``benchmarks/bench_perf.py`` and ``python -m repro perf`` both land
here.  The harness measures simulator *throughput* (simulated accesses
per wall-clock second) on a small set of canonical scenarios, checks
that a parallel sweep reproduces serial results exactly while scaling
across cores, and emits ``BENCH_PERF.json`` — the repo's perf
trajectory, one committed point per optimization PR.

Machine comparability: raw wall-clock numbers are only comparable on
one machine, so every report embeds a *calibration* score (a fixed pure
Python loop, ops/s).  Regression checks compare calibration-normalized
throughput, which makes the committed baseline meaningful on CI runners
of different speeds; the 25% default tolerance absorbs the remaining
noise.

Scenario fidelity: each scenario also records its seeded simulation
outputs (cleaning cost, wear spread, latency percentiles).  Those are
machine-independent and must match the committed baseline *exactly* —
an optimization that changes them is a correctness bug, not a perf win.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from .points import cleaning_cost_point, tpca_point
from .sweep import derive_seed, resolve_jobs, run_sweep

__all__ = ["SCENARIOS", "run_bench", "compare_reports", "main"]

SCHEMA = "envy-bench-perf/1"

#: Canonical scenarios, in (full, smoke) variants.  The untimed
#: cleaning-cost pair exercises the store/cleaner fast path; the timed
#: TPC-A point exercises the controller/MMU/latency-histogram path.
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    "cleaning_greedy": {
        "full": dict(policy="greedy", locality="50/50", num_segments=128,
                     pages_per_segment=256, utilization=0.80,
                     turnovers=6.0, warmup_turnovers=4.0, seed=1234),
        "smoke": dict(policy="greedy", locality="50/50", num_segments=32,
                      pages_per_segment=64, utilization=0.80,
                      turnovers=2.0, warmup_turnovers=2.0, seed=1234),
    },
    "cleaning_locality": {
        "full": dict(policy="locality", locality="10/90", num_segments=128,
                     pages_per_segment=256, utilization=0.80,
                     turnovers=6.0, warmup_turnovers=4.0, seed=1234),
        "smoke": dict(policy="locality", locality="10/90", num_segments=32,
                      pages_per_segment=64, utilization=0.80,
                      turnovers=2.0, warmup_turnovers=2.0, seed=1234),
    },
    "tpca_hybrid": {
        "full": dict(rate_tps=20_000.0, num_segments=32,
                     pages_per_segment=256, duration_s=0.15,
                     warmup_s=0.05, prewarm_turnovers=5.0, seed=7),
        "smoke": dict(rate_tps=20_000.0, num_segments=16,
                      pages_per_segment=128, duration_s=0.04,
                      warmup_s=0.01, prewarm_turnovers=3.0, seed=7),
    },
}


def _total_host_writes(spec: Dict[str, Any]) -> int:
    """Host writes driven by an untimed scenario, warm-up included."""
    live = int(spec["num_segments"] * spec["pages_per_segment"]
               * spec["utilization"])
    return int(live * spec["warmup_turnovers"]) + int(live
                                                      * spec["turnovers"])


def _run_scenario(name: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    spec = dict(spec)
    start = time.perf_counter()
    if name.startswith("cleaning"):
        result = cleaning_cost_point(spec)
        wall_s = time.perf_counter() - start
        accesses = _total_host_writes(spec)
        fidelity = {
            "cleaning_cost": result.cleaning_cost,
            "flushes": result.flushes,
            "clean_copies": result.clean_copies,
            "erases": result.erases,
            "wear_spread": result.wear_spread,
            "wear_swaps": result.wear_swaps,
        }
    else:
        stats = tpca_point(spec)
        wall_s = time.perf_counter() - start
        accesses = stats.read_latency.count + stats.write_latency.count
        fidelity = {
            "transactions_completed": stats.transactions_completed,
            "read_p50_ns": stats.read_latency.p50,
            "read_p99_ns": stats.read_latency.p99,
            "write_p50_ns": stats.write_latency.p50,
            "write_p99_ns": stats.write_latency.p99,
            "pages_flushed": stats.pages_flushed,
            "clean_copies": stats.clean_copies,
            "erases": stats.erases,
        }
    return {
        "wall_s": round(wall_s, 4),
        "accesses": accesses,
        "accesses_per_s": round(accesses / wall_s, 1),
        "fidelity": fidelity,
    }


def calibrate(iterations: int = 2_000_000) -> float:
    """Machine speed score: fixed pure-Python loop, iterations/s."""
    start = time.perf_counter()
    x = 0
    for i in range(iterations):
        x += i & 7
    elapsed = time.perf_counter() - start
    assert x >= 0
    return iterations / elapsed


def _scaling_points(smoke: bool, count: int) -> List[Dict[str, Any]]:
    base = dict(policy="greedy", locality="50/50", utilization=0.80,
                num_segments=32 if smoke else 64,
                pages_per_segment=32 if smoke else 128,
                turnovers=1.0 if smoke else 3.0,
                warmup_turnovers=1.0 if smoke else 2.0)
    return [dict(base, seed=derive_seed(1234, index))
            for index in range(count)]


def measure_scaling(jobs: Optional[int] = None,
                    smoke: bool = False) -> Dict[str, Any]:
    """Serial vs parallel wall-clock on an independent policy sweep.

    Runs the same point list once with ``jobs=1`` and once with the
    resolved worker count; reports the speedup, the per-core efficiency
    and whether the two result lists were identical (they must be).
    """
    jobs = resolve_jobs(jobs)
    count = max(2, jobs)
    points = _scaling_points(smoke, count)
    worker = "repro.perf.points:cleaning_cost_point"
    start = time.perf_counter()
    serial = run_sweep(worker, points, jobs=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(worker, points, jobs=jobs)
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s if parallel_s else 0.0
    effective = min(jobs, count)
    return {
        "points": count,
        "jobs": effective,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / effective, 3),
        "results_identical": serial == parallel,
    }


def run_bench(smoke: bool = False, jobs: Optional[int] = None,
              scaling: bool = True) -> Dict[str, Any]:
    """Run every scenario (plus the scaling probe) and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "scenarios": {},
    }
    for name, variants in SCENARIOS.items():
        report["scenarios"][name] = _run_scenario(name, variants[mode])
    if scaling:
        report["parallel_scaling"] = measure_scaling(jobs, smoke)
    return report


def attach_seed_baseline(report: Dict[str, Any],
                         baseline: Dict[str, Any]) -> None:
    """Embed a pre-optimization report and the speedups against it.

    ``baseline`` is a report produced by this harness running against
    the unoptimized code (same machine, same mode), so raw wall-clock
    ratios are meaningful.
    """
    summary = {}
    for name, entry in baseline.get("scenarios", {}).items():
        current = report["scenarios"].get(name)
        if current is None:
            continue
        speedup = (current["accesses_per_s"] / entry["accesses_per_s"]
                   if entry["accesses_per_s"] else 0.0)
        summary[name] = {
            "accesses_per_s": entry["accesses_per_s"],
            "wall_s": entry["wall_s"],
            "speedup": round(speedup, 2),
        }
    report["seed_baseline"] = {
        "mode": baseline.get("mode"),
        "calibration_ops_per_s": baseline.get("calibration_ops_per_s"),
        "scenarios": summary,
    }


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25) -> List[str]:
    """Regression check; returns a list of failure descriptions.

    Throughput is normalized by each report's calibration score before
    comparison, so a slower CI runner does not read as a regression.
    Fidelity values are compared exactly: any drift in seeded outputs
    fails regardless of speed.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same --smoke "
            f"setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        cur_norm = cur_entry["accesses_per_s"] / cur_calib
        base_norm = base_entry["accesses_per_s"] / base_calib
        ratio = cur_norm / base_norm if base_norm else 0.0
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: normalized throughput fell to {ratio:.0%} of "
                f"baseline ({cur_entry['accesses_per_s']:,.0f}/s vs "
                f"{base_entry['accesses_per_s']:,.0f}/s; calibration "
                f"{cur_calib:,.0f} vs {base_calib:,.0f} ops/s)")
        base_fid = base_entry.get("fidelity", {})
        cur_fid = cur_entry.get("fidelity", {})
        for key, value in base_fid.items():
            if key in cur_fid and cur_fid[key] != value:
                failures.append(
                    f"{name}: seeded output {key!r} changed "
                    f"({value!r} -> {cur_fid[key]!r}) — determinism break")
    scaling = current.get("parallel_scaling")
    if scaling is not None and not scaling.get("results_identical", True):
        failures.append("parallel sweep results differ from serial run")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"perf bench ({report['mode']}, python {report['python']}, "
             f"{report['cpu_count']} cpus, calibration "
             f"{report['calibration_ops_per_s']:,.0f} ops/s)"]
    for name, entry in report["scenarios"].items():
        line = (f"  {name:<18} {entry['wall_s']:>8.3f}s "
                f"{entry['accesses_per_s']:>12,.0f} accesses/s")
        seed = report.get("seed_baseline", {}).get("scenarios", {})
        if name in seed:
            line += f"   {seed[name]['speedup']:.2f}x vs seed"
        lines.append(line)
    scaling = report.get("parallel_scaling")
    if scaling:
        lines.append(
            f"  parallel sweep     {scaling['points']} points on "
            f"{scaling['jobs']} workers: {scaling['speedup']:.2f}x "
            f"(efficiency {scaling['efficiency']:.2f}, results "
            f"{'identical' if scaling['results_identical'] else 'DIFFER'})")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_perf",
        description="eNVy simulator perf-regression harness")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI (seconds, not minutes)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel sweep workers (default: ENVY_JOBS "
                             "or CPU count)")
    parser.add_argument("--output", default="BENCH_PERF.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized-throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--seed-baseline", metavar="REPORT",
                        help="embed this pre-optimization report and the "
                             "speedups against it")
    parser.add_argument("--no-scaling", action="store_true",
                        help="skip the parallel scaling probe")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, jobs=args.jobs,
                       scaling=not args.no_scaling)
    if args.seed_baseline:
        with open(args.seed_baseline, "r", encoding="utf-8") as handle:
            attach_seed_baseline(report, json.load(handle))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_reports(report, baseline,
                                   max_regression=args.max_regression)
        if failures:
            print(f"\nPERF REGRESSION vs {args.compare}:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
