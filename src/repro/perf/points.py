"""Picklable sweep workers for the standard simulation points.

These are the module-level functions :func:`repro.perf.sweep.run_sweep`
dispatches to worker processes (by the dotted names below).  Each takes
one mapping of keyword arguments and returns the simulator's ordinary
result object, so rewiring a serial figure loop onto the sweep runner
changes nothing downstream of the call.

Dotted names:

* ``"repro.perf.points:cleaning_cost_point"`` — one untimed
  cleaning-cost measurement (Figures 6, 8, 9, 10); returns
  :class:`~repro.cleaning.simulator.SimulationResult`.
* ``"repro.perf.points:tpca_point"`` — one timed TPC-A point
  (Figures 13, 14, 15); returns :class:`~repro.sim.tracker.SimStats`.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["cleaning_cost_point", "tpca_point"]


def cleaning_cost_point(point: Mapping[str, Any]):
    """Run one untimed cleaning-cost simulation.

    ``point`` holds :func:`~repro.cleaning.simulator
    .measure_cleaning_cost` keyword arguments plus:

    * ``policy`` — policy name for :func:`~repro.cleaning.make_policy`
      (default ``"greedy"``);
    * ``policy_kwargs`` — constructor arguments for that policy (e.g.
      ``{"partition_segments": 16}`` for hybrid).
    """
    from ..cleaning import make_policy, measure_cleaning_cost

    kwargs = dict(point)
    policy = kwargs.pop("policy", "greedy")
    policy_kwargs = kwargs.pop("policy_kwargs", None) or {}
    return measure_cleaning_cost(make_policy(policy, **policy_kwargs),
                                 **kwargs)


def tpca_point(point: Mapping[str, Any]):
    """Run one timed TPC-A simulation point.

    ``point`` holds :func:`~repro.sim.engine.simulate_tpca` keyword
    arguments (``rate_tps`` is required).
    """
    from ..sim import simulate_tpca

    return simulate_tpca(**dict(point))
