"""Deterministic parallel sweep runner.

Every figure in the paper is an embarrassingly parallel sweep: a grid of
independent simulation points (policy x locality, utilization x load,
segment count x locality ...) where each point seeds its own RNGs and
never touches shared state.  This module fans such sweeps out across
processes while guaranteeing the *exact* result list a serial loop would
produce:

* points are dispatched with ``multiprocessing.Pool.map``, whose result
  order is the input order regardless of completion order;
* each point is a plain picklable mapping of keyword arguments, and each
  worker is addressed by a ``"module:function"`` dotted name so the
  child process imports it fresh (no closure state crosses the fork);
* nothing about a point depends on which worker ran it or when — seeds
  travel *in* the point (see :func:`derive_seed` for grids that want a
  distinct stream per point).

``jobs=1`` (or a single-CPU machine) runs the loop in-process with no
pool at all, which is also the fallback wherever ``multiprocessing`` is
unavailable.  Serial and parallel runs are therefore interchangeable —
the determinism test suite asserts equality of the full result lists.

The worker count resolves in priority order: explicit ``jobs`` argument,
the ``ENVY_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from importlib import import_module
from typing import Any, Callable, List, Optional, Sequence, Union

__all__ = ["derive_seed", "resolve_jobs", "run_sweep"]

_MASK64 = (1 << 64) - 1
#: splitmix64 constants (Steele et al.); fixed here forever because
#: committed golden values depend on the derived seed streams.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def derive_seed(base_seed: int, index: int) -> int:
    """A stable per-point seed for point ``index`` of a sweep.

    splitmix64 finalizer over ``base_seed + index`` — decorrelated even
    for adjacent indices (unlike ``base_seed + index`` itself, which
    makes neighbouring points share most of their Mersenne state), and
    platform/run independent so golden values can be committed.
    """
    x = (base_seed * _GAMMA + (index + 1) * _GAMMA) & _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    # Fits random.Random and JSON alike.
    return x & 0x7FFFFFFF


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``ENVY_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("ENVY_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"ENVY_JOBS must be an integer, got {env!r}")
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


def _resolve_worker(worker: Union[str, Callable[[Any], Any]]
                    ) -> Callable[[Any], Any]:
    if callable(worker):
        return worker
    module, sep, name = worker.partition(":")
    if not sep or not module or not name:
        raise ValueError(
            f"worker must be callable or 'module:function', got {worker!r}")
    fn = getattr(import_module(module), name, None)
    if not callable(fn):
        raise ValueError(f"{worker!r} does not name a callable")
    return fn


def _invoke(task):  # top-level: must pickle under the spawn method too
    worker, point = task
    return _resolve_worker(worker)(point)


def run_sweep(worker: Union[str, Callable[[Any], Any]],
              points: Sequence[Any],
              jobs: Optional[int] = None) -> List[Any]:
    """Run ``worker`` over every point, returning results in point order.

    ``worker`` is a callable or (preferred, because it always pickles) a
    ``"module:function"`` dotted name resolved inside each worker
    process.  The result list is identical to
    ``[worker(p) for p in points]`` for any ``jobs`` value.
    """
    points = list(points)
    if not points:
        return []
    jobs = min(resolve_jobs(jobs), len(points))
    if jobs == 1:
        fn = _resolve_worker(worker)
        return [fn(point) for point in points]
    import multiprocessing

    # fork is cheapest and inherits the imported simulator; fall back to
    # the platform default (spawn) where fork does not exist.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    worker_ref = worker if isinstance(worker, str) else worker
    tasks = [(worker_ref, point) for point in points]
    with context.Pool(processes=jobs) as pool:
        return pool.map(_invoke, tasks)
