"""Backwards compatibility: RAM-disk block device + small filesystem."""

from .blockdev import BlockDevice, BlockDeviceError
from .fs import DirEntry, FileSystem, FileSystemError

__all__ = [
    "BlockDevice",
    "BlockDeviceError",
    "FileSystem",
    "FileSystemError",
    "DirEntry",
]
