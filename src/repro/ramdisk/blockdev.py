"""RAM-disk block device over eNVy's linear memory (Section 1).

"For backwards compatibility, a simple RAM disk program can make a
memory array usable by a standard file system."  This adapter presents
the word-addressable eNVy space as a classic block device — fixed-size
sectors, read/write by block number — so unmodified block-oriented
software (like the small filesystem in :mod:`repro.ramdisk.fs`) can run
on top.

It also illustrates the paper's efficiency argument in reverse: every
single-byte update through the block interface costs a full sector
read-modify-write, the overhead eNVy's memory-mapped interface removes.

Every operation is charged through the timing model: when the backing
memory reports per-access nanoseconds (``read_timed``/``write`` on an
:class:`~repro.core.controller.EnvySystem`), the device accumulates
those; otherwise it falls back to the Figure 1 DRAM rates from
:mod:`repro.core.costmodel`.  A memory that exposes a
``block_devices`` list (the controller does) gets the device
registered there, so its counters surface in ``health_report()``.
"""

from __future__ import annotations

from typing import Tuple

from ..core.costmodel import DRAM_READ_NS, DRAM_WRITE_NS

__all__ = ["BlockDevice", "BlockDeviceError"]


class BlockDeviceError(Exception):
    """Raised for out-of-range or missized block operations."""


class BlockDevice:
    """Fixed-size-sector view of a byte-addressable memory."""

    def __init__(self, memory, block_bytes: int = 512,
                 offset: int = 0, num_blocks: int = None) -> None:
        """``memory`` is an EnvySystem (or anything with read/write).

        ``offset``/``num_blocks`` carve the device out of a region of
        the address space, so a block device can coexist with memory-
        mapped data structures in the same array.
        """
        if block_bytes <= 0:
            raise ValueError("block size must be positive")
        self.memory = memory
        self.block_bytes = block_bytes
        self.offset = offset
        if num_blocks is None:
            if not hasattr(memory, "size_bytes"):
                raise ValueError("num_blocks required when the memory "
                                 "does not report its size")
            num_blocks = (memory.size_bytes - offset) // block_bytes
        if num_blocks <= 0:
            raise ValueError("device needs at least one block")
        self.num_blocks = num_blocks
        self.reads = 0
        self.writes = 0
        #: Nanoseconds the underlying memory charged for this device's
        #: reads/writes (or the Figure 1 DRAM fallback when the memory
        #: is untimed).
        self.read_ns = 0
        self.write_ns = 0
        self._read_timed = getattr(memory, "read_timed", None)
        devices = getattr(memory, "block_devices", None)
        if devices is not None:
            devices.append(self)

    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def _address(self, block: int) -> int:
        if not 0 <= block < self.num_blocks:
            raise BlockDeviceError(
                f"block {block} out of range (device has "
                f"{self.num_blocks} blocks)")
        return self.offset + block * self.block_bytes

    # ------------------------------------------------------------------

    def read_block_timed(self, block: int) -> Tuple[bytes, int]:
        """Read one whole sector; returns (data, nanoseconds)."""
        address = self._address(block)
        if self._read_timed is not None:
            data, ns = self._read_timed(address, self.block_bytes)
        else:
            data = self.memory.read(address, self.block_bytes)
            ns = DRAM_READ_NS
        self.reads += 1
        self.read_ns += ns
        return data, ns

    def read_block(self, block: int) -> bytes:
        """Read one whole sector."""
        return self.read_block_timed(block)[0]

    def write_block_timed(self, block: int, data: bytes) -> int:
        """Write one whole sector; returns the nanoseconds it took."""
        if len(data) != self.block_bytes:
            raise BlockDeviceError(
                f"write must be exactly {self.block_bytes} bytes, "
                f"got {len(data)}")
        ns = self.memory.write(self._address(block), data)
        if ns is None:
            ns = DRAM_WRITE_NS
        self.writes += 1
        self.write_ns += ns
        return ns

    def write_block(self, block: int, data: bytes) -> None:
        """Write one whole sector (must be exactly one block long)."""
        self.write_block_timed(block, data)

    def update_bytes(self, block: int, offset: int, data: bytes) -> int:
        """Partial-sector update via read-modify-write.

        This is what a block interface forces on small updates — the
        overhead the paper's memory-mapped interface exists to avoid.
        Returns the nanoseconds of the full read-modify-write.
        """
        if offset < 0 or offset + len(data) > self.block_bytes:
            raise BlockDeviceError("update does not fit in the block")
        sector, read_ns = self.read_block_timed(block)
        buffer = bytearray(sector)
        buffer[offset:offset + len(data)] = data
        return read_ns + self.write_block_timed(block, bytes(buffer))

    def stats(self) -> dict:
        """Operation/time counters (folded into ``health_report()``)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_ns": self.read_ns,
            "write_ns": self.write_ns,
            "blocks": self.num_blocks,
            "block_bytes": self.block_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BlockDevice({self.num_blocks} x {self.block_bytes} B "
                f"at +{self.offset})")
