"""RAM-disk block device over eNVy's linear memory (Section 1).

"For backwards compatibility, a simple RAM disk program can make a
memory array usable by a standard file system."  This adapter presents
the word-addressable eNVy space as a classic block device — fixed-size
sectors, read/write by block number — so unmodified block-oriented
software (like the small filesystem in :mod:`repro.ramdisk.fs`) can run
on top.

It also illustrates the paper's efficiency argument in reverse: every
single-byte update through the block interface costs a full sector
read-modify-write, the overhead eNVy's memory-mapped interface removes.
"""

from __future__ import annotations

__all__ = ["BlockDevice", "BlockDeviceError"]


class BlockDeviceError(Exception):
    """Raised for out-of-range or missized block operations."""


class BlockDevice:
    """Fixed-size-sector view of a byte-addressable memory."""

    def __init__(self, memory, block_bytes: int = 512,
                 offset: int = 0, num_blocks: int = None) -> None:
        """``memory`` is an EnvySystem (or anything with read/write).

        ``offset``/``num_blocks`` carve the device out of a region of
        the address space, so a block device can coexist with memory-
        mapped data structures in the same array.
        """
        if block_bytes <= 0:
            raise ValueError("block size must be positive")
        self.memory = memory
        self.block_bytes = block_bytes
        self.offset = offset
        if num_blocks is None:
            if not hasattr(memory, "size_bytes"):
                raise ValueError("num_blocks required when the memory "
                                 "does not report its size")
            num_blocks = (memory.size_bytes - offset) // block_bytes
        if num_blocks <= 0:
            raise ValueError("device needs at least one block")
        self.num_blocks = num_blocks
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def _address(self, block: int) -> int:
        if not 0 <= block < self.num_blocks:
            raise BlockDeviceError(
                f"block {block} out of range (device has "
                f"{self.num_blocks} blocks)")
        return self.offset + block * self.block_bytes

    # ------------------------------------------------------------------

    def read_block(self, block: int) -> bytes:
        """Read one whole sector."""
        self.reads += 1
        return self.memory.read(self._address(block), self.block_bytes)

    def write_block(self, block: int, data: bytes) -> None:
        """Write one whole sector (must be exactly one block long)."""
        if len(data) != self.block_bytes:
            raise BlockDeviceError(
                f"write must be exactly {self.block_bytes} bytes, "
                f"got {len(data)}")
        self.writes += 1
        self.memory.write(self._address(block), data)

    def update_bytes(self, block: int, offset: int, data: bytes) -> None:
        """Partial-sector update via read-modify-write.

        This is what a block interface forces on small updates — the
        overhead the paper's memory-mapped interface exists to avoid.
        """
        if offset < 0 or offset + len(data) > self.block_bytes:
            raise BlockDeviceError("update does not fit in the block")
        sector = bytearray(self.read_block(block))
        sector[offset:offset + len(data)] = data
        self.write_block(block, bytes(sector))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BlockDevice({self.num_blocks} x {self.block_bytes} B "
                f"at +{self.offset})")
