"""A small FAT-style filesystem on the RAM-disk block device.

Demonstrates the paper's backwards-compatibility path end to end: a
"standard" block filesystem running unmodified on eNVy through the
RAM-disk adapter, with persistence provided by the Flash array
underneath.

On-disk format (all little-endian):

* Block 0 — superblock: magic, block size, total blocks, FAT start/len,
  root directory block, data region start.
* FAT — one 32-bit entry per data block: 0 = free, 0xFFFFFFFF = end of
  chain, else the next block in the file's chain.
* Root directory — a single block of fixed 64-byte entries: name (48),
  size (4), first block (4), flags (1), padding.
* Data region — file contents in FAT-chained blocks.

Deliberately minimal (flat namespace, one directory block) but a real
filesystem: files are created, extended block by block, truncated,
deleted, and survive power cycles.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from .blockdev import BlockDevice

__all__ = ["FileSystem", "FileSystemError", "DirEntry"]

MAGIC = b"eNVyFS1\x00"
FAT_FREE = 0
FAT_END = 0xFFFFFFFF
NAME_BYTES = 48
DIRENT = struct.Struct(f"<{NAME_BYTES}sIIB7x")
SUPER = struct.Struct("<8sIIIIII")


class FileSystemError(Exception):
    """Raised for filesystem-level failures (no space, missing file...)."""


class DirEntry:
    """One root-directory entry."""

    __slots__ = ("name", "size", "first_block", "used")

    def __init__(self, name: str, size: int, first_block: int,
                 used: bool) -> None:
        self.name = name
        self.size = size
        self.first_block = first_block
        self.used = used

    def pack(self) -> bytes:
        raw_name = self.name.encode("utf-8")[:NAME_BYTES]
        return DIRENT.pack(raw_name, self.size, self.first_block,
                           1 if self.used else 0)

    @classmethod
    def unpack(cls, raw: bytes) -> "DirEntry":
        raw_name, size, first_block, flags = DIRENT.unpack(raw)
        name = raw_name.rstrip(b"\x00").decode("utf-8", "replace")
        return cls(name, size, first_block, bool(flags & 1))


class FileSystem:
    """Flat FAT filesystem over a :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self.block_bytes = device.block_bytes
        self._fat: List[int] = []
        self._loaded = False
        # Geometry (set by format/mount).
        self.fat_start = 1
        self.fat_blocks = 0
        self.root_block = 0
        self.data_start = 0

    # ------------------------------------------------------------------
    # Format / mount
    # ------------------------------------------------------------------

    def format(self) -> None:
        """Create a fresh, empty filesystem on the device."""
        total = self.device.num_blocks
        if total < 8:
            raise FileSystemError("device too small for a filesystem")
        entries_per_block = self.block_bytes // 4
        # Solve for a FAT that covers the data region.
        fat_blocks = 1
        while True:
            data_start = 1 + fat_blocks + 1  # super + FAT + root dir
            data_blocks = total - data_start
            if data_blocks <= fat_blocks * entries_per_block:
                break
            fat_blocks += 1
        self.fat_blocks = fat_blocks
        self.root_block = 1 + fat_blocks
        self.data_start = self.root_block + 1
        super_block = SUPER.pack(MAGIC, self.block_bytes, total,
                                 self.fat_start, fat_blocks,
                                 self.root_block, self.data_start)
        self.device.write_block(0, super_block.ljust(self.block_bytes,
                                                     b"\x00"))
        self._fat = [FAT_FREE] * (total - self.data_start)
        self._write_fat()
        self.device.write_block(self.root_block, b"\x00" * self.block_bytes)
        self._loaded = True

    def mount(self) -> None:
        """Attach to an existing filesystem (e.g. after a power cycle)."""
        raw = self.device.read_block(0)
        magic, block_bytes, total, fat_start, fat_blocks, root, data = \
            SUPER.unpack_from(raw)
        if magic != MAGIC:
            raise FileSystemError("no filesystem found (bad magic)")
        if block_bytes != self.block_bytes:
            raise FileSystemError("block size mismatch")
        self.fat_start = fat_start
        self.fat_blocks = fat_blocks
        self.root_block = root
        self.data_start = data
        self._fat = []
        for index in range(fat_blocks):
            raw = self.device.read_block(fat_start + index)
            self._fat.extend(struct.unpack(f"<{len(raw) // 4}I", raw))
        self._fat = self._fat[: total - data]
        self._loaded = True

    def _write_fat(self) -> None:
        entries_per_block = self.block_bytes // 4
        padded = self._fat + [FAT_FREE] * (
            self.fat_blocks * entries_per_block - len(self._fat))
        for index in range(self.fat_blocks):
            chunk = padded[index * entries_per_block:
                           (index + 1) * entries_per_block]
            self.device.write_block(
                self.fat_start + index,
                struct.pack(f"<{len(chunk)}I", *chunk))

    def _require_mounted(self) -> None:
        if not self._loaded:
            raise FileSystemError("filesystem not formatted or mounted")

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------

    @property
    def _entries_per_dir(self) -> int:
        return self.block_bytes // DIRENT.size

    def _read_dir(self) -> List[DirEntry]:
        raw = self.device.read_block(self.root_block)
        return [DirEntry.unpack(raw[i * DIRENT.size:(i + 1) * DIRENT.size])
                for i in range(self._entries_per_dir)]

    def _write_dir(self, entries: List[DirEntry]) -> None:
        raw = b"".join(entry.pack() for entry in entries)
        self.device.write_block(self.root_block,
                                raw.ljust(self.block_bytes, b"\x00"))

    def _find(self, name: str) -> Optional[int]:
        for index, entry in enumerate(self._read_dir()):
            if entry.used and entry.name == name:
                return index
        return None

    def list_files(self) -> List[str]:
        self._require_mounted()
        return [e.name for e in self._read_dir() if e.used]

    def stat(self, name: str) -> DirEntry:
        self._require_mounted()
        index = self._find(name)
        if index is None:
            raise FileSystemError(f"no such file: {name!r}")
        return self._read_dir()[index]

    # ------------------------------------------------------------------
    # Block allocation
    # ------------------------------------------------------------------

    def _allocate_chain(self, count: int) -> List[int]:
        free = [i for i, v in enumerate(self._fat) if v == FAT_FREE]
        if len(free) < count:
            raise FileSystemError(
                f"out of space: need {count} blocks, {len(free)} free")
        chain = free[:count]
        # Store links as "next data-block index + 1" so 0 stays FREE.
        for here, there in zip(chain, chain[1:]):
            self._fat[here] = there + 1
        if chain:
            self._fat[chain[-1]] = FAT_END
        return chain

    def _chain_of(self, first_block: int) -> List[int]:
        chain = []
        here = first_block
        seen = set()
        while here != FAT_END:
            if here in seen or not 0 <= here < len(self._fat):
                raise FileSystemError("corrupt FAT chain")
            seen.add(here)
            chain.append(here)
            nxt = self._fat[here]
            if nxt == FAT_END:
                break
            if nxt == FAT_FREE:
                raise FileSystemError("chain runs into a free block")
            here = nxt - 1
        return chain

    def free_blocks(self) -> int:
        self._require_mounted()
        return sum(1 for v in self._fat if v == FAT_FREE)

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def write_file(self, name: str, data: bytes) -> None:
        """Create or replace a file with ``data``."""
        self._require_mounted()
        if not name or len(name.encode("utf-8")) > NAME_BYTES:
            raise FileSystemError(f"bad file name: {name!r}")
        if self._find(name) is not None:
            self.delete(name)
        blocks_needed = max(1, -(-len(data) // self.block_bytes))
        chain = self._allocate_chain(blocks_needed)
        for index, block in enumerate(chain):
            chunk = data[index * self.block_bytes:
                         (index + 1) * self.block_bytes]
            self.device.write_block(self.data_start + block,
                                    chunk.ljust(self.block_bytes, b"\x00"))
        entries = self._read_dir()
        for slot, entry in enumerate(entries):
            if not entry.used:
                entries[slot] = DirEntry(name, len(data), chain[0], True)
                break
        else:
            for block in chain:
                self._fat[block] = FAT_FREE
            raise FileSystemError("root directory is full")
        self._write_fat()
        self._write_dir(entries)

    def read_file(self, name: str) -> bytes:
        self._require_mounted()
        entry = self.stat(name)
        pieces = []
        for block in self._chain_of(entry.first_block):
            pieces.append(self.device.read_block(self.data_start + block))
        return b"".join(pieces)[: entry.size]

    def delete(self, name: str) -> None:
        self._require_mounted()
        index = self._find(name)
        if index is None:
            raise FileSystemError(f"no such file: {name!r}")
        entries = self._read_dir()
        for block in self._chain_of(entries[index].first_block):
            self._fat[block] = FAT_FREE
        entries[index] = DirEntry("", 0, 0, False)
        self._write_fat()
        self._write_dir(entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "mounted" if self._loaded else "unmounted"
        return f"FileSystem({state}, {self.device!r})"
