"""``repro.service``: one-or-many eNVy banks as a storage service.

The library below this package simulates a *single* eNVy controller;
this package presents N of them as a concurrent, multi-tenant storage
service:

* :class:`ShardRouter` — stripes one logical page space across shards
  (:mod:`repro.service.shard`);
* :class:`TenantSpec` / :class:`TokenBucket` / :class:`TenantStats` —
  per-tenant workload shapes, rate limits and accounting
  (:mod:`repro.service.tenant`);
* :class:`LoadGenerator` — deterministic open/closed-loop multi-tenant
  schedules on the discrete-event clock
  (:mod:`repro.service.loadgen`);
* :class:`ShardExecutor` — bounded queue, admission control, bounded
  deterministic retry and write batching per shard
  (:mod:`repro.service.executor`);
* :class:`PageCache` — the DRAM read-cache tier (CLOCK / LRU,
  per-tenant occupancy caps) serving hot reads at DRAM speed
  (:mod:`repro.service.cache`);
* :class:`AdmissionController` — closed-loop admission: promote /
  throttle / shed tenants from their observed SLO burn between runs
  (:mod:`repro.service.admission`);
* :class:`EnvyService` — the front door: schedule, fan out over
  ``run_sweep``, merge (:mod:`repro.service.frontend`);
* :class:`RedundancyPolicy` and friends — cross-bank mirroring and
  rotated single parity so the service survives whole-bank loss,
  plus :class:`RebuildScheduler` (online rebuild) and
  :func:`plan_rebalance` (hot-page remapping)
  (:mod:`repro.service.redundancy`);
* :func:`run_service_chaos` / :func:`service_chaos_sweep` — kill a
  shard mid-batch and recover every shard independently;
  :func:`run_redundancy_chaos` / :func:`redundancy_chaos_sweep` —
  kill a whole *bank* mid-write and prove degraded serving, online
  rebuild and post-mortem recovery (:mod:`repro.service.chaos`);
* :class:`AttackDetector` / :func:`attack_tenant` /
  :func:`run_attack_scenario` — hostile-tenant wear attacks, per-tenant
  wear attribution, detection and quarantine-and-throttle mitigation
  (:mod:`repro.service.adversary`).

Drive it from the CLI with ``python -m repro serve`` (see
``--redundancy`` / ``--kill-bank``) and benchmark it with
``benchmarks/bench_service.py`` and ``benchmarks/bench_redundancy.py``;
docs/SERVICE.md is the guide.
"""

from .admission import ADMISSION_STATES, AdmissionController
from .adversary import (ATTACK_KINDS, AttackDetector, attack_tenant,
                        project_lifetime, run_attack_scenario)
from .cache import CACHE_POLICIES, PageCache
from .chaos import (RedundancyChaosReport, ServiceChaosReport,
                    redundancy_chaos_sweep, run_redundancy_chaos,
                    run_service_chaos, service_chaos_sweep)
from .executor import ShardExecutor, prewarm_shard, service_shard_point
from .frontend import (EnvyService, ServiceConfig, ServiceStats,
                       ServiceTransaction)
from .loadgen import LoadGenerator, Request
from .redundancy import (BANK_DEAD, BANK_HEALTHY, BANK_REBUILDING,
                         DegradedModeError, MirrorPolicy, NoRedundancy,
                         ParityPolicy, RebuildScheduler, RedundancyPolicy,
                         RedundantRouter, make_policy, plan_rebalance)
from .shard import CrossShardError, ShardRouter
from .tenant import TenantSpec, TenantStats, TokenBucket

__all__ = [
    "ShardRouter",
    "CrossShardError",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "LoadGenerator",
    "Request",
    "ShardExecutor",
    "prewarm_shard",
    "service_shard_point",
    "PageCache",
    "CACHE_POLICIES",
    "AdmissionController",
    "ADMISSION_STATES",
    "EnvyService",
    "ServiceConfig",
    "ServiceStats",
    "ServiceTransaction",
    "DegradedModeError",
    "RedundancyPolicy",
    "NoRedundancy",
    "MirrorPolicy",
    "ParityPolicy",
    "make_policy",
    "RedundantRouter",
    "RebuildScheduler",
    "plan_rebalance",
    "BANK_HEALTHY",
    "BANK_DEAD",
    "BANK_REBUILDING",
    "ServiceChaosReport",
    "run_service_chaos",
    "service_chaos_sweep",
    "RedundancyChaosReport",
    "run_redundancy_chaos",
    "redundancy_chaos_sweep",
    "ATTACK_KINDS",
    "AttackDetector",
    "attack_tenant",
    "project_lifetime",
    "run_attack_scenario",
]
