"""``repro.service``: one-or-many eNVy banks as a storage service.

The library below this package simulates a *single* eNVy controller;
this package presents N of them as a concurrent, multi-tenant storage
service:

* :class:`ShardRouter` — stripes one logical page space across shards
  (:mod:`repro.service.shard`);
* :class:`TenantSpec` / :class:`TokenBucket` / :class:`TenantStats` —
  per-tenant workload shapes, rate limits and accounting
  (:mod:`repro.service.tenant`);
* :class:`LoadGenerator` — deterministic open/closed-loop multi-tenant
  schedules on the discrete-event clock
  (:mod:`repro.service.loadgen`);
* :class:`ShardExecutor` — bounded queue, admission control and write
  batching per shard (:mod:`repro.service.executor`);
* :class:`EnvyService` — the front door: schedule, fan out over
  ``run_sweep``, merge (:mod:`repro.service.frontend`);
* :func:`run_service_chaos` / :func:`service_chaos_sweep` — kill a
  shard mid-batch and recover every shard independently
  (:mod:`repro.service.chaos`).

Drive it from the CLI with ``python -m repro serve`` and benchmark it
with ``benchmarks/bench_service.py``; docs/SERVICE.md is the guide.
"""

from .chaos import ServiceChaosReport, run_service_chaos, service_chaos_sweep
from .executor import ShardExecutor, prewarm_shard, service_shard_point
from .frontend import (EnvyService, ServiceConfig, ServiceStats,
                       ServiceTransaction)
from .loadgen import LoadGenerator, Request
from .shard import CrossShardError, ShardRouter
from .tenant import TenantSpec, TenantStats, TokenBucket

__all__ = [
    "ShardRouter",
    "CrossShardError",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "LoadGenerator",
    "Request",
    "ShardExecutor",
    "prewarm_shard",
    "service_shard_point",
    "EnvyService",
    "ServiceConfig",
    "ServiceStats",
    "ServiceTransaction",
    "ServiceChaosReport",
    "run_service_chaos",
    "service_chaos_sweep",
]
