"""Closed-loop, SLO-driven admission control.

PR 6's admission layer was *static*: each tenant declared a
``rate_limit_tps`` and a token bucket enforced it forever, blind to
what the tenant actually experienced.  This module closes the loop
using the control signal PR 9 landed for exactly this purpose — the
:class:`~repro.obs.slo.SLOTracker`'s per-tenant error-budget burn
rates over the merged (deterministic) latency histograms.

After every :meth:`~repro.service.frontend.EnvyService.run`, the
controller walks each SLO-bearing tenant through a four-state ladder:

::

    normal ──burn>1──> promoted ──burn>1──> throttled ──burn>1──> shed
      ^                   │                    │                    │
      └──────burn<=1──────┘<───────burn<=1────┘<──────burn<=1──────┘

* **promote** — the cheapest remedy: a read-heavy tenant missing its
  latency SLO is moved into the DRAM cache tier, where its hot head is
  served at DRAM speed.  (Skipped when no cache is configured, when
  the tenant opted out with ``cache=False``, or when its traffic is
  write-dominated — the cache cannot help writes.)
* **throttle** — next run the tenant's token bucket is replaced with
  one at ``throttle_factor`` × its *observed served rate*, trading its
  own throughput for its own tail (and everyone else's).
* **shed** — a severe cut to ``shed_factor`` × the served rate for
  tenants burning budget faster than ``burn_shed``; the tenant keeps a
  trickle (``floor_tps``) so recovery can be observed.
* **recover** — a healthy run (burn ≤ 1) relaxes one step per run;
  promoted tenants stay promoted, since the tier is usually *why* they
  are healthy.

Every decision is a pure function of the previous runs' merged stats
and SLO report — both already bit-identical across reruns and
``--jobs`` — so the closed loop inherits the service's determinism
contract.  Decisions act at *schedule time*, through the same
``rate_overrides`` mechanism the quarantine path uses (the override
never relaxes a tenant's own declared limit), plus the per-run cache
tier/occupancy inputs the front-end hands each shard.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["AdmissionController", "ADMISSION_STATES"]

#: The ladder, mildest to harshest.
ADMISSION_STATES = ("normal", "promoted", "throttled", "shed")


class AdmissionController:
    """Per-tenant state machine over SLO burn rates."""

    def __init__(self, tenants: Sequence, cache_available: bool = False,
                 burn_hot: float = 1.0, burn_shed: float = 4.0,
                 throttle_factor: float = 0.5,
                 shed_factor: float = 0.05,
                 floor_tps: float = 100.0) -> None:
        if burn_hot <= 0 or burn_shed < burn_hot:
            raise ValueError("need 0 < burn_hot <= burn_shed")
        if not 0 < shed_factor <= throttle_factor <= 1:
            raise ValueError(
                "need 0 < shed_factor <= throttle_factor <= 1")
        if floor_tps <= 0:
            raise ValueError("floor_tps must be positive")
        self.tenants = list(tenants)
        self.cache_available = cache_available
        self.burn_hot = burn_hot
        self.burn_shed = burn_shed
        self.throttle_factor = throttle_factor
        self.shed_factor = shed_factor
        self.floor_tps = floor_tps
        self._specs = {spec.name: spec for spec in self.tenants}
        #: Tenants the loop manages: those with a declared SLO.
        self.managed = [spec.name for spec in self.tenants
                        if spec.slo_read_p99_ns is not None
                        or spec.slo_write_p99_ns is not None
                        or spec.slo_throughput_tps is not None]
        self._state: Dict[str, str] = {name: "normal"
                                       for name in self.managed}
        self._rates: Dict[str, float] = {}
        self._last_decisions: List[Dict] = []
        self.runs_observed = 0

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def observe(self, stats, slo_report: Mapping[str, Mapping],
                duration_s: float) -> List[Dict]:
        """Fold one run's outcome into the ladder.

        ``stats`` is the merged :class:`~repro.service.frontend.
        ServiceStats`; ``slo_report`` is ``SLOTracker.report()`` *after*
        the same run was observed.  Returns the run's decision records
        (state changes and standing non-normal states), in tenant
        declaration order.
        """
        decisions: List[Dict] = []
        for name in self.managed:
            entry = slo_report.get(name)
            if entry is None:
                continue
            spec = self._specs[name]
            tstats = stats.tenants.get(name)
            burn = entry["burn"]["last"]
            state = self._state[name]
            read_heavy = (tstats is not None
                          and tstats.reads >= tstats.writes)
            can_promote = (self.cache_available
                           and spec.cache is not False and read_heavy)
            if burn > self.burn_shed:
                new_state = "shed"
            elif burn > self.burn_hot:
                if state == "normal":
                    new_state = "promoted" if can_promote else "throttled"
                elif state == "promoted":
                    new_state = "throttled"
                else:
                    new_state = "shed"
            else:
                if state == "shed":
                    new_state = "throttled"
                elif state == "throttled":
                    new_state = "promoted" if can_promote else "normal"
                else:
                    # normal stays normal; promoted stays promoted (the
                    # tier is likely what keeps the burn down).
                    new_state = state
            if new_state in ("throttled", "shed"):
                served_tps = (tstats.served / duration_s
                              if tstats is not None and duration_s > 0
                              else 0.0)
                factor = (self.throttle_factor if new_state == "throttled"
                          else self.shed_factor)
                base = served_tps if served_tps > 0 else \
                    self._rates.get(name, self.floor_tps)
                rate = max(self.floor_tps, base * factor)
                if spec.rate_limit_tps is not None:
                    rate = min(rate, spec.rate_limit_tps)
                self._rates[name] = rate
            else:
                self._rates.pop(name, None)
            self._state[name] = new_state
            if new_state != state or new_state != "normal":
                decisions.append({
                    "tenant": name,
                    "state": new_state,
                    "previous": state,
                    "burn": burn,
                    "rate_tps": round(self._rates.get(name, 0.0), 3),
                })
        self.runs_observed += 1
        self._last_decisions = decisions
        return decisions

    # ------------------------------------------------------------------
    # Outputs the front-end consumes
    # ------------------------------------------------------------------

    def state(self, name: str) -> str:
        return self._state.get(name, "normal")

    def rate_overrides(self) -> Dict[str, float]:
        """Schedule-time bucket replacements for the next run (same
        mechanism as quarantine; merged with ``min()`` against it)."""
        return dict(self._rates)

    def cache_tier(self) -> List[str]:
        """Tenants in the DRAM tier next run: pinned (``cache=True``)
        plus currently promoted, minus opted-out (``cache=False``)."""
        tier = []
        for spec in self.tenants:
            if spec.cache is False:
                continue
            if spec.cache is True or \
                    self._state.get(spec.name) == "promoted":
                tier.append(spec.name)
        return tier

    def report(self) -> Dict[str, object]:
        """``health_report()["admission"]`` payload."""
        return {
            "enabled": True,
            "runs_observed": self.runs_observed,
            "managed": list(self.managed),
            "states": {name: self._state[name]
                       for name in sorted(self._state)},
            "rate_overrides": {name: round(rate, 3)
                               for name, rate in sorted(
                                   self._rates.items())},
            "cache_tier": self.cache_tier(),
            "last_decisions": list(self._last_decisions),
        }
