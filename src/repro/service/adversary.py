"""Adversarial multi-tenancy: wear attacks, detection, mitigation.

The eNVy paper assumes cooperative traffic; a shared, sharded service
cannot.  Flash wear is a *consumable* shared resource, so a hostile
tenant can attack the medium itself rather than mere bandwidth:

* **targeted wear-out** (``hammer``) — cycle writes over a working set
  sized just past the SRAM buffer's coalescing reach, so every write
  misses SRAM and flushes back toward the same few segments, burning
  their endurance budget;
* **cleaning-pressure amplification** (``clean_amp``) — a coprime-
  stride sweep of the whole span: nothing coalesces, no segment ever
  looks cold, and every admitted byte drags near-worst-case cleaner
  copies behind it — cost paid by everyone sharing the bank;
* **buffer-occupancy squatting** (``squat``) — cycle over a working
  set sized to the aggregate SRAM, pinning every shard's FIFO near its
  watermarks so honest writes land in throttle/shed admission.

All three are ordinary :class:`~repro.service.tenant.TenantSpec`
shapes generated through the deterministic
:class:`~repro.service.loadgen.LoadGenerator` streams, so an attack
replays bit-identically across reruns and ``jobs`` settings — the
property every detection threshold and mitigation gate here relies on.

Detection principle — *the attacker lies*.  A tenant's declared
workload shape is a contract: the :class:`AttackDetector` compares the
wear each tenant *actually* caused (the per-tenant attribution the
shard executors collect when ``attribute_wear=True``) against a
reference stream regenerated from the tenant's **declared** shape with
a detector-owned seed.  Declared attack shapes are treated as declared
``uniform`` — a real attacker would not announce itself, and an honest
tenant never declares one.  Honest tenants match their own declaration
by construction (same generator family), which is what makes the
zero-false-positive gate achievable without per-workload tuning.

Mitigation composes three levers, all deterministic:

* **quarantine** (:meth:`~repro.service.frontend.EnvyService.
  quarantine`) — the flagged tenant's token bucket is degraded at
  schedule time;
* **wear budgets** — per-(tenant, page) admitted-write caps enforced
  by the shard executors at admission, sized here from the honest
  tenants' own observed per-page maxima;
* **hot-page scatter** (:meth:`~repro.service.frontend.EnvyService.
  scatter_hot_pages`) — the flagged tenant's hottest pages are
  remapped to seeded random peers through the redundancy layer's
  permutation, de-focusing the wear it already aimed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..core.lifetime import LifetimeEstimate
from ..core.metrics import wear_concentration
from ..obs.events import SECURITY_FLAG
from ..perf.sweep import derive_seed
from .frontend import EnvyService, ServiceConfig, ServiceStats
from .tenant import ATTACK_WORKLOADS, TenantSpec

__all__ = ["ATTACK_KINDS", "attack_tenant", "AttackDetector",
           "project_lifetime", "run_attack_scenario"]

#: CLI-facing attack preset names (see :func:`attack_tenant`).
ATTACK_KINDS = ("targeted-wear", "clean-amp", "squat")

#: Writes a reference stream draws at most (keeps detection cheap).
_REF_WRITE_CAP = 50_000


def attack_tenant(kind: str, config: Optional[ServiceConfig] = None,
                  name: str = "attacker", rate_tps: float = 200_000.0,
                  **overrides) -> TenantSpec:
    """A preset hostile tenant for one of :data:`ATTACK_KINDS`.

    ``config`` sizes the squat working set to the service's aggregate
    SRAM (every shard's segment-sized buffer); the other shapes use
    their documented defaults.  ``overrides`` are TenantSpec fields.
    """
    key = kind.replace("_", "-")
    if key == "targeted-wear":
        fields = {"workload": "hammer", "write_fraction": 1.0}
    elif key == "clean-amp":
        fields = {"workload": "clean_amp", "write_fraction": 1.0}
    elif key == "squat":
        pages = (config.num_shards * config.pages_per_segment
                 if config is not None else 256)
        fields = {"workload": "squat", "write_fraction": 1.0,
                  "attack_pages": pages}
    else:
        raise ValueError(
            f"unknown attack kind {kind!r}; choose from {ATTACK_KINDS}")
    fields.update(overrides)
    spec = TenantSpec(name=name, rate_tps=rate_tps, **fields)
    spec.validate()
    return spec


class AttackDetector:
    """Flags tenants whose attributed wear betrays their declaration.

    Three independent signals, each a ratio of *observed* behaviour to
    what the tenant's declared shape predicts (so an honest heavy-Zipf
    tenant is judged against heavy Zipf, not against uniform):

    * ``wear`` — page-level write concentration
      (:func:`~repro.core.metrics.wear_concentration` over the
      attributed per-page write counts, padded to the tenant's span)
      versus the same statistic over a declared-shape reference stream
      of equal length;
    * ``clean`` — uncoalesced flush pressure.  Induced cleaner copies
      smear across whoever's flush happens to trip the cleaner (the
      free pool is shared), so per-flush cost cannot localize blame;
      what does identify cleaning amplification is a tenant that is
      write-only (``own_write_fraction`` ≈ 1), coalesces essentially
      nothing in SRAM (``flush_per_write`` ≈ 1 — the stride's whole
      point) and dominates flush volume.  A tenant meeting all three
      is buying near-worst-case cleaning pressure per admitted token,
      whatever it declared;
    * ``squat`` — occupying a large fraction of the *aggregate* SRAM
      buffer, with a sustained per-window residency z-score against
      the other tenants (the windowed series the executors integrate)
      — dominance that persists across windows, not a burst — while
      being write-heavy (``own_write_fraction`` past
      ``squat_write_fraction``).  Buffer residency comes only from
      writes, so a squatter must write to squat; a read-mostly tenant
      whose writes happen to dwell is a big honest customer, and an
      attacker that pads with reads to duck this test surrenders the
      token-bucket budget those reads consume — halving its squat
      pressure at equal rate.

    The remaining quantities (induced cleaning cost vs peers, residency
    vs write share) are reported as evidence alongside the verdict.
    """

    def __init__(self, service: EnvyService,
                 concentration_margin: float = 4.0,
                 clean_write_fraction: float = 0.95,
                 clean_flush_per_write: float = 0.85,
                 clean_min_flush_share: float = 0.25,
                 occupancy_threshold: float = 0.45,
                 occupancy_z: float = 1.0,
                 squat_write_fraction: float = 0.8,
                 min_writes: int = 200) -> None:
        self.service = service
        self.concentration_margin = concentration_margin
        self.clean_write_fraction = clean_write_fraction
        self.clean_flush_per_write = clean_flush_per_write
        self.clean_min_flush_share = clean_min_flush_share
        self.occupancy_threshold = occupancy_threshold
        self.occupancy_z = occupancy_z
        self.squat_write_fraction = squat_write_fraction
        self.min_writes = min_writes

    # -- declared-shape reference ------------------------------------

    def _tenant_span(self, spec: TenantSpec) -> int:
        if spec.page_range is not None:
            start, end = spec.page_range
            return end - start
        return self.service.router.num_pages

    def _reference_concentration(self, spec: TenantSpec, index: int,
                                 writes: int) -> float:
        """Write concentration of ``writes`` draws from the tenant's
        *declared* shape (attack declarations read as uniform)."""
        span = self._tenant_span(spec)
        seed = derive_seed(self.service.config.seed, 9000 + index)
        declared = spec.workload
        if declared in ATTACK_WORKLOADS:
            declared = "uniform"
        counts: Dict[int, int] = {}
        if declared == "tpca":
            from ..db.layout import TpcaLayout
            from ..workloads.tpca import TpcaWorkload

            page_bytes = self.service.config.page_bytes
            layout = TpcaLayout.sized_for(
                self.service.router.num_pages * page_bytes)
            workload = TpcaWorkload(layout,
                                    rate_tps=max(spec.rate_tps, 1.0),
                                    seed=seed)
            last_page = self.service.router.num_pages - 1
            drawn = 0
            while drawn < writes:
                txn = workload.next_transaction()
                for is_write, address in workload.accesses(txn):
                    if not is_write:
                        continue
                    page = min(address // page_bytes, last_page)
                    counts[page] = counts.get(page, 0) + 1
                    drawn += 1
        else:
            if declared == "zipf":
                from ..workloads.zipf import ZipfWorkload

                pages = ZipfWorkload(span, skew=spec.skew, seed=seed,
                                     scatter=spec.scatter)
            else:
                from ..workloads.uniform import UniformWorkload

                pages = UniformWorkload(span, seed=seed)
            for _ in range(writes):
                page = pages.next_page()
                counts[page] = counts.get(page, 0) + 1
        values = list(counts.values())
        values += [0] * (span - len(values))
        return wear_concentration(values)

    # -- analysis -----------------------------------------------------

    def analyze(self, stats: Optional[ServiceStats] = None) -> dict:
        """The security report for one run's attributed stats."""
        service = self.service
        stats = stats if stats is not None else service.last_stats
        if stats is None:
            raise ValueError("no run to analyze")
        specs = {spec.name: spec for spec in service.tenants}
        indices = {spec.name: i for i, spec in
                   enumerate(service.tenants)}

        total_writes = sum(t.writes for t in stats.tenants.values())
        wears = {name: t.wear for name, t in stats.tenants.items()
                 if t.wear is not None}
        total_flushes = sum(w.get("flushes", 0) for w in wears.values())
        total_clean = sum(w.get("induced_clean_copies", 0)
                          for w in wears.values())
        total_residency = sum(w.get("residency_ns", 0)
                              for w in wears.values())
        # Aggregate buffer capacity: every shard owns one segment-sized
        # SRAM buffer (pages_per_segment pages).
        capacity_pages = (service.config.num_shards
                          * service.config.pages_per_segment)
        simulated_ns = max(1, stats.simulated_ns)
        window_series = {
            name: list(w.get("residency_windows") or [])
            for name, w in wears.items()}
        depth = max((len(series) for series in window_series.values()),
                    default=0)
        for series in window_series.values():
            series.extend([0] * (depth - len(series)))

        report_tenants: Dict[str, dict] = {}
        flagged: List[str] = []
        for name in sorted(stats.tenants):
            tstats = stats.tenants[name]
            wear = wears.get(name)
            spec = specs.get(name)
            if wear is None or spec is None:
                continue
            signals: Dict[str, float] = {}
            flags: List[str] = []

            # Signal 1: wear concentration vs declared shape.
            page_writes = [count for page, count
                           in wear.get("page_writes", {}).items()
                           if isinstance(page, int)]
            writes = sum(page_writes)
            if writes >= self.min_writes:
                span = self._tenant_span(spec)
                values = page_writes + [0] * (span - len(page_writes))
                realized = wear_concentration(values)
                reference = self._reference_concentration(
                    spec, indices[name],
                    min(writes, _REF_WRITE_CAP))
                ratio = realized / max(reference, 1.0)
                signals["wear_concentration"] = round(realized, 3)
                signals["declared_concentration"] = round(reference, 3)
                signals["concentration_ratio"] = round(ratio, 3)
                if ratio > self.concentration_margin:
                    flags.append("wear")

            # Signal 2: uncoalesced flush pressure.
            flushes = wear.get("flushes", 0)
            induced = wear.get("induced_clean_copies", 0)
            peer_flushes = total_flushes - flushes
            peer_clean = total_clean - induced
            accesses = tstats.reads + tstats.writes
            own_wf = tstats.writes / accesses if accesses else 0.0
            signals["own_write_fraction"] = round(own_wf, 3)
            if flushes and total_flushes and tstats.writes:
                cost = induced / flushes
                peer_cost = (peer_clean / peer_flushes
                             if peer_flushes else 0.0)
                flush_share = flushes / total_flushes
                per_write = flushes / tstats.writes
                signals["clean_cost"] = round(cost, 3)
                signals["peer_clean_cost"] = round(peer_cost, 3)
                signals["flush_per_write"] = round(per_write, 3)
                signals["flush_share"] = round(flush_share, 3)
                if (tstats.writes >= self.min_writes
                        and own_wf > self.clean_write_fraction
                        and per_write > self.clean_flush_per_write
                        and flush_share > self.clean_min_flush_share):
                    flags.append("clean")

            # Signal 3: buffer residency vs write share.
            residency = wear.get("residency_ns", 0)
            mean_pages = residency / simulated_ns
            occupancy = mean_pages / max(1, capacity_pages)
            write_share = (tstats.writes / total_writes
                           if total_writes else 0.0)
            residency_share = (residency / total_residency
                               if total_residency else 0.0)
            occupancy_ratio = (residency_share / write_share
                               if write_share else 0.0)
            signals["occupancy_fraction"] = round(occupancy, 3)
            signals["residency_share"] = round(residency_share, 3)
            signals["write_share"] = round(write_share, 3)
            signals["occupancy_ratio"] = round(occupancy_ratio, 3)
            zscore = self._window_z(name, window_series)
            if zscore is not None:
                signals["residency_z"] = round(zscore, 3)
            if (occupancy > self.occupancy_threshold
                    and own_wf > self.squat_write_fraction
                    and zscore is not None
                    and zscore > self.occupancy_z):
                flags.append("squat")

            report_tenants[name] = {"flags": flags, "signals": signals}
            if flags:
                flagged.append(name)
                if service.events.active:
                    service.events.mark(
                        SECURITY_FLAG,
                        {"tenant": name, "signals": ",".join(flags)})

        return {
            "flagged": flagged,
            "tenants": report_tenants,
            "thresholds": {
                "concentration_margin": self.concentration_margin,
                "clean_write_fraction": self.clean_write_fraction,
                "clean_flush_per_write": self.clean_flush_per_write,
                "clean_min_flush_share": self.clean_min_flush_share,
                "occupancy_threshold": self.occupancy_threshold,
                "occupancy_z": self.occupancy_z,
                "squat_write_fraction": self.squat_write_fraction,
                "min_writes": self.min_writes,
            },
        }

    @staticmethod
    def _window_z(name: str,
                  window_series: Dict[str, List[int]]
                  ) -> Optional[float]:
        """Mean z-score of one tenant's residency windows against the
        cross-tenant population, window by window — evidence of
        *sustained* (not bursty) occupancy dominance."""
        series = window_series.get(name)
        if not series or len(window_series) < 2:
            return None
        zs = []
        for index, value in enumerate(series):
            population = [other[index]
                          for other in window_series.values()]
            mean = sum(population) / len(population)
            var = (sum((x - mean) ** 2 for x in population)
                   / len(population))
            if var > 0:
                zs.append((value - mean) / var ** 0.5)
        if not zs:
            return None
        return sum(zs) / len(zs)


def project_lifetime(service: EnvyService,
                     stats: Optional[ServiceStats] = None
                     ) -> LifetimeEstimate:
    """Section 5.5 lifetime projection for one service run, with the
    measured per-segment wear concentration folded in.

    Flush rate and cleaning cost come from the shard summaries;
    concentration from the attributed service-wide segment program
    counts (uniform when the run did not attribute wear).  The array
    is the union of every bank's flash.
    """
    stats = stats if stats is not None else service.last_stats
    if stats is None:
        raise ValueError("run the service before projecting lifetime")
    shard_config = service.config.shard_config()
    total_flushes = sum(s["flushes"] for s in stats.shards)
    total_clean = sum(s["clean_copies"] for s in stats.shards)
    seconds = max(stats.simulated_ns, 1) / 1e9
    concentration = 1.0
    if stats.segment_programs:
        total_segments = (service.config.num_shards
                          * service.config.num_segments)
        counts = list(stats.segment_programs.values())
        counts += [0] * (total_segments - len(counts))
        concentration = max(1.0, wear_concentration(counts))
    return LifetimeEstimate(
        array_pages=shard_config.total_pages * service.config.num_shards,
        endurance_cycles=shard_config.flash.endurance_cycles,
        page_flush_rate=total_flushes / seconds,
        cleaning_cost=(total_clean / total_flushes
                       if total_flushes else 0.0),
        concentration=concentration,
    )


def _honest_budget(stats: ServiceStats, honest: Sequence[str]) -> int:
    """A per-(tenant, page) write budget no honest tenant hits: twice
    the largest per-page write count any honest tenant produced."""
    peak = 0
    for name in honest:
        tstats = stats.tenants.get(name)
        if tstats is None or tstats.wear is None:
            continue
        for page, count in tstats.wear.get("page_writes", {}).items():
            if isinstance(page, int) and count > peak:
                peak = count
    return max(8, 2 * peak)


def _tenant_summary(stats: ServiceStats, names: Sequence[str]) -> dict:
    return {name: {
        "writes": stats.tenants[name].writes,
        "reads": stats.tenants[name].reads,
        "rejected": stats.tenants[name].rejected,
        "rejected_wear": stats.tenants[name].rejected_wear,
        "throttled": stats.tenants[name].throttled,
        "read_p99_ns": stats.tenants[name].read_latency.p99,
        "write_p99_ns": stats.tenants[name].write_latency.p99,
    } for name in names if name in stats.tenants}


def run_attack_scenario(config: ServiceConfig,
                        honest: Sequence[TenantSpec],
                        attack: TenantSpec,
                        duration_s: float,
                        jobs: Optional[int] = None,
                        detector_kwargs: Optional[dict] = None
                        ) -> dict:
    """Baseline -> attack -> mitigated, deterministically.

    1. **baseline** — honest tenants only; the no-attack p99/lifetime
       reference.
    2. **attack** — honest tenants plus the attacker, detection run on
       the attributed wear.
    3. **mitigated** — same population on a fresh service: every
       flagged tenant is quarantined, given a wear budget sized from
       the honest tenants' own per-page maxima, and has its hot pages
       scattered (using the *attack* run's wear ranking).

    Returns one JSON-friendly dict with per-phase tenant summaries,
    lifetime projections and the security reports — the raw material
    for ``bench_attack``'s gates.
    """
    detector_kwargs = detector_kwargs or {}
    honest = list(honest)
    honest_names = [spec.name for spec in honest]
    base_config = replace(config, attribute_wear=True)

    baseline_service = EnvyService(base_config, honest)
    baseline_stats = baseline_service.run(duration_s, jobs=jobs)
    baseline_detect = AttackDetector(
        baseline_service, **detector_kwargs).analyze(baseline_stats)
    baseline_life = project_lifetime(baseline_service, baseline_stats)

    attack_service = EnvyService(base_config, honest + [attack])
    attack_stats = attack_service.run(duration_s, jobs=jobs)
    attack_detect = AttackDetector(
        attack_service, **detector_kwargs).analyze(attack_stats)
    attack_life = project_lifetime(attack_service, attack_stats)
    flagged = list(attack_detect["flagged"])

    budget = _honest_budget(attack_stats, honest_names)
    mitigated_config = replace(base_config, remappable=True)
    mitigated_tenants = [
        replace(spec, wear_budget=budget)
        if spec.name in flagged else spec
        for spec in honest + [attack]]
    mitigated_service = EnvyService(mitigated_config, mitigated_tenants)
    scatters = {}
    for name in flagged:
        mitigated_service.quarantine(name)
        scattered = mitigated_service.scatter_hot_pages(
            name, stats=attack_stats)
        scatters[name] = len(scattered["swaps"])
    mitigated_stats = mitigated_service.run(duration_s, jobs=jobs)
    mitigated_detect = AttackDetector(
        mitigated_service, **detector_kwargs).analyze(mitigated_stats)
    mitigated_life = project_lifetime(mitigated_service,
                                      mitigated_stats)

    def phase(stats: ServiceStats, life: LifetimeEstimate,
              detect: dict, names: Sequence[str]) -> dict:
        return {
            "tenants": _tenant_summary(stats, names),
            "lifetime_days": round(life.days, 4),
            "wear_concentration": round(life.concentration, 3),
            "cleaning_cost": round(life.cleaning_cost, 4),
            "flagged": detect["flagged"],
        }

    return {
        "attacker": attack.name,
        "attack_workload": attack.workload,
        "honest": honest_names,
        "wear_budget": budget,
        "hot_pages_scattered": scatters,
        "baseline": phase(baseline_stats, baseline_life,
                          baseline_detect, honest_names),
        "attack": phase(attack_stats, attack_life, attack_detect,
                        honest_names + [attack.name]),
        "mitigated": phase(mitigated_stats, mitigated_life,
                           mitigated_detect,
                           honest_names + [attack.name]),
        "reports": {
            "baseline": baseline_detect,
            "attack": attack_detect,
            "mitigated": mitigated_detect,
        },
    }
