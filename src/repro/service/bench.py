"""Service benchmark: throughput and tails vs shard count and skew.

``benchmarks/bench_service.py`` and the CI ``service-smoke`` job land
here.  The harness runs the canonical multi-tenant scenarios against
the sharded service at increasing shard counts under **strong scaling**
— a fixed total Flash budget (``total_segments``) divided across the
shards — and reports two families of numbers:

* **Simulated throughput** (served accesses per *simulated* second) and
  per-tenant latency tails from the :mod:`repro.obs` histograms.  These
  are machine-independent, deterministic per seed, and carry the
  headline claim: the canonical zipf scenario must serve at least
  ``--min-scaling`` (default 2.5×) more simulated accesses/s at 4
  shards than at 1 — N independent banks really do behave as N servers,
  even with a zipf-skewed tenant, because the router stripes the hot
  head across shards.
* **Wall-clock throughput** (served accesses per host second), the perf
  trajectory number.  As in :mod:`repro.perf.bench` it is compared to a
  committed baseline only after normalizing by the calibration score,
  so CI runners of different speeds share one baseline; the seeded
  simulated outputs must match the baseline *exactly*.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Set

from ..perf.bench import calibrate
from .frontend import EnvyService, ServiceConfig
from .tenant import TenantSpec

__all__ = ["SCENARIOS", "scale_fleet", "run_bench", "check_gates",
           "compare_reports", "main"]

SCHEMA = "envy-bench-service/1"

#: Canonical service scenarios in (full, smoke) variants.  Each runs at
#: every shard count in ``shard_counts`` with ``total_segments`` divided
#: evenly, so the Flash budget — not the shard count — is held fixed.
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    # The headline scenario: one saturating zipf tenant plus a
    # rate-limited background tenant; carries the >=2.5x @ 4 shards gate.
    "zipf_canonical": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[1, 2, 4],
            duration_s=0.001, seed=1234,
            tenants=[
                dict(name="hot", rate_tps=4e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="limited", rate_tps=4e6, workload="uniform",
                     rate_limit_tps=1e6),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[1, 2, 4],
            duration_s=0.0002, seed=1234,
            tenants=[
                dict(name="hot", rate_tps=4e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="limited", rate_tps=4e6, workload="uniform",
                     rate_limit_tps=1e6),
            ]),
    },
    # Tenant-skew sensitivity: the same offered load at mild and heavy
    # zipf skew, fixed 4 shards — striping should keep the served
    # throughput close while the tails move.
    "skew_spread": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[4],
            duration_s=0.001, seed=99,
            tenants=[
                dict(name="mild", rate_tps=1.5e7, skew=0.6,
                     write_fraction=0.3),
                dict(name="heavy", rate_tps=1.5e7, skew=1.3,
                     write_fraction=0.3),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[4],
            duration_s=0.0002, seed=99,
            tenants=[
                dict(name="mild", rate_tps=1.5e7, skew=0.6,
                     write_fraction=0.3),
                dict(name="heavy", rate_tps=1.5e7, skew=1.3,
                     write_fraction=0.3),
            ]),
    },
    # The DRAM read-tier claim: the same saturating read-only zipf
    # tenant (skew 0.99) with the cache off and on.  Carries the >=2x
    # cached-read speedup gate (relaxed in smoke, where the short run
    # is dominated by cold-start misses).
    "cached_zipf": {
        "full": dict(
            kind="cached", total_segments=128, pages_per_segment=64,
            shard_counts=[4], duration_s=0.002, seed=4242,
            cache_pages=1024, min_read_speedup=2.0,
            tenants=[
                dict(name="reader", rate_tps=6e7, skew=0.99,
                     write_fraction=0.0),
            ]),
        "smoke": dict(
            kind="cached", total_segments=128, pages_per_segment=64,
            shard_counts=[4], duration_s=0.0005, seed=4242,
            cache_pages=1024, min_read_speedup=1.2,
            tenants=[
                dict(name="reader", rate_tps=6e7, skew=0.99,
                     write_fraction=0.0),
            ]),
    },
    # O(10^3)-tenant churn: a generated fleet with staggered arrivals
    # and departures, bursty and SLO-bearing cohorts, the DRAM tier and
    # closed-loop admission all enabled; two back-to-back runs so the
    # admission ladder acts on the first run's burn rates.  Gates on
    # aggregate simulated throughput and the fleet SLO-violation rate.
    "service_scale": {
        "full": dict(
            kind="scale", total_segments=128, pages_per_segment=64,
            shard_counts=[4], duration_s=0.01, seed=2026, runs=2,
            fleet=1000, cache_pages=512, cache_tenant_cap=0.25,
            admission=True,
            min_accesses_per_s=1e6, max_slo_violation_rate=0.05),
        "smoke": dict(
            kind="scale", total_segments=128, pages_per_segment=64,
            shard_counts=[4], duration_s=0.002, seed=2026, runs=2,
            fleet=1000, cache_pages=512, cache_tenant_cap=0.25,
            admission=True,
            min_accesses_per_s=1e6, max_slo_violation_rate=0.05),
    },
    # Transactional tenant mixed with a zipf tenant (rates are
    # transactions/s for tpca: one transaction is ~17 accesses).
    "tpca_mix": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[2, 4],
            duration_s=0.001, seed=7,
            tenants=[
                dict(name="zipf", rate_tps=1e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="tpca", rate_tps=1e6, workload="tpca"),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[2, 4],
            duration_s=0.0002, seed=7,
            tenants=[
                dict(name="zipf", rate_tps=1e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="tpca", rate_tps=1e6, workload="tpca"),
            ]),
    },
}


def _service_for(spec: Dict[str, Any], num_shards: int) -> EnvyService:
    if spec["total_segments"] % num_shards:
        raise ValueError(
            f"total_segments={spec['total_segments']} does not divide "
            f"across {num_shards} shards")
    config = ServiceConfig(
        num_shards=num_shards,
        num_segments=spec["total_segments"] // num_shards,
        pages_per_segment=spec["pages_per_segment"],
        seed=spec["seed"],
        redundancy=spec.get("redundancy", "none"),
        placement=spec.get("placement", "striped"),
        retry_limit=spec.get("retry_limit", 0),
        retry_backoff_ns=spec.get("retry_backoff_ns", 4000),
        cache_pages=spec.get("cache_pages", 0),
        cache_policy=spec.get("cache_policy", "clock"),
        cache_hit_ns=spec.get("cache_hit_ns"),
        cache_tenant_cap=spec.get("cache_tenant_cap", 1.0),
        admission=spec.get("admission", False))
    tenants = [TenantSpec.from_spec(kwargs) for kwargs in spec["tenants"]]
    return EnvyService(config, tenants)


def scale_fleet(count: int, duration_s: float) -> List[Dict[str, Any]]:
    """Deterministic O(10^3)-tenant fleet with churn, pure index math.

    Rates and skews cycle through small residue classes so the fleet
    mixes read-heavy and write-heavy tenants; fixed cohorts get churn
    (late arrival / early departure), periodic bursts, declared read
    SLOs (the admission controller's managed set) and cache pins or
    opt-outs.  No RNG is involved: the fleet is a pure function of
    ``(count, duration_s)``.
    """
    tenants: List[Dict[str, Any]] = []
    for i in range(count):
        tenant: Dict[str, Any] = {
            "name": f"t{i:04d}",
            "rate_tps": 2e3 * (1 + i % 7),
            "skew": 0.4 + 0.2 * (i % 4),
            "write_fraction": (0.0, 0.1, 0.3)[i % 3],
        }
        if i % 10 == 3:      # churn: arrives a quarter into the run
            tenant["arrive_s"] = duration_s * 0.25
        elif i % 10 == 6:    # churn: departs before the run ends
            tenant["depart_s"] = duration_s * 0.6
        elif i % 10 == 9:    # bursty: 4x spikes every half-run
            tenant["burst_every_s"] = duration_s * 0.5
            tenant["burst_s"] = duration_s * 0.125
            tenant["burst_x"] = 4.0
        if i % 10 == 0:      # SLO-bearing cohort (admission-managed)
            tenant["slo_read_p99_ns"] = 5000
            tenant["slo_target"] = 0.99
        if i % 25 == 5:      # pinned into the DRAM tier
            tenant["cache"] = True
        elif i % 25 == 15:   # opted out of the tier
            tenant["cache"] = False
        tenants.append(tenant)
    return tenants


def _measure(spec: Dict[str, Any], num_shards: int,
             jobs: Optional[int]) -> Dict[str, Any]:
    """One service run -> the standard (wall, served, fidelity) point."""
    service = _service_for(spec, num_shards)
    start = time.perf_counter()
    stats = service.run(spec["duration_s"], jobs=jobs)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "served": stats.accesses_served,
        "served_per_wall_s": round(stats.accesses_served / wall_s, 1),
        # Everything below is machine-independent (exact fidelity).
        "fidelity": {
            "requests_admitted": stats.requests_admitted,
            "requests_throttled": stats.requests_throttled,
            "requests_rejected_queue": stats.requests_rejected_queue,
            "requests_rejected_shed": stats.requests_rejected_shed,
            "accesses_served": stats.accesses_served,
            "simulated_ns": stats.simulated_ns,
            "accesses_per_simulated_s": round(
                stats.accesses_per_simulated_s, 1),
            "tenants": {name: tstats.as_dict()
                        for name, tstats in stats.tenants.items()},
        },
    }


def _run_scenario(spec: Dict[str, Any],
                  jobs: Optional[int]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"shard_counts": {}}
    sim_tput: Dict[int, float] = {}
    for num_shards in spec["shard_counts"]:
        point = _measure(spec, num_shards, jobs)
        sim_tput[num_shards] = point["fidelity"][
            "accesses_per_simulated_s"]
        entry["shard_counts"][str(num_shards)] = point
    if 1 in sim_tput and 4 in sim_tput and sim_tput[1]:
        entry["scaling_4x"] = round(sim_tput[4] / sim_tput[1], 3)
    return entry


def _run_cached_scenario(spec: Dict[str, Any],
                         jobs: Optional[int]) -> Dict[str, Any]:
    """The same read-only zipf load with the cache off and on.

    The speedup is the ratio of *simulated* read throughput (the
    workload is pure reads, so served accesses/simulated second is read
    throughput) — machine-independent and exact per seed.
    """
    num_shards = spec["shard_counts"][0]
    uncached = _measure(dict(spec, cache_pages=0), num_shards, jobs)
    cached = _measure(spec, num_shards, jobs)
    entry: Dict[str, Any] = {
        "variants": {"uncached": uncached, "cached": cached},
        "cache_pages_per_shard": spec["cache_pages"],
        "min_read_speedup": spec["min_read_speedup"],
    }
    base = uncached["fidelity"]["accesses_per_simulated_s"]
    tiered = cached["fidelity"]["accesses_per_simulated_s"]
    entry["read_speedup_cached"] = round(tiered / base, 3) if base else 0.0
    hits = sum(t["cache_hits"]
               for t in cached["fidelity"]["tenants"].values())
    misses = sum(t["cache_misses"]
                 for t in cached["fidelity"]["tenants"].values())
    probes = hits + misses
    entry["cache_hit_rate"] = round(hits / probes, 6) if probes else 0.0
    return entry


def _run_scale_scenario(spec: Dict[str, Any],
                        jobs: Optional[int]) -> Dict[str, Any]:
    """The O(10^3)-tenant churn fleet with cache + admission enabled.

    Runs the same service ``runs`` times back to back so the closed
    admission loop reacts to the first run's burn rates, then gates on
    the final run's aggregate simulated throughput and the fleet-wide
    SLO-violation rate.  Per-tenant stats are folded into a sha256
    digest (1000 tenants would bloat the committed baseline) — the
    digest still fails the exact-fidelity compare on any drift.
    """
    spec = dict(spec, tenants=scale_fleet(spec["fleet"],
                                          spec["duration_s"]))
    num_shards = spec["shard_counts"][0]
    service = _service_for(spec, num_shards)
    start = time.perf_counter()
    per_run: List[Dict[str, Any]] = []
    stats = None
    for _ in range(spec.get("runs", 2)):
        stats = service.run(spec["duration_s"], jobs=jobs)
        per_run.append({
            "requests_admitted": stats.requests_admitted,
            "requests_throttled": stats.requests_throttled,
            "requests_rejected_queue": stats.requests_rejected_queue,
            "requests_rejected_shed": stats.requests_rejected_shed,
            "accesses_served": stats.accesses_served,
            "simulated_ns": stats.simulated_ns,
            "accesses_per_simulated_s": round(
                stats.accesses_per_simulated_s, 1),
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        })
    wall_s = time.perf_counter() - start
    tenant_dicts = {name: tstats.as_dict()
                    for name, tstats in stats.tenants.items()}
    digest = hashlib.sha256(
        json.dumps(tenant_dicts, sort_keys=True).encode()).hexdigest()
    slo_report = service.slo.report()
    requests = sum(t.get("last_requests", 0)
                   for t in slo_report.values())
    violations = sum(t.get("last_violations", 0)
                     for t in slo_report.values())
    admission = service.admission.report() if service.admission else {}
    states: Dict[str, int] = {}
    for state in admission.get("states", {}).values():
        states[state] = states.get(state, 0) + 1
    served = sum(run["accesses_served"] for run in per_run)
    point = {
        "wall_s": round(wall_s, 4),
        "served": served,
        "served_per_wall_s": round(served / wall_s, 1),
        "fidelity": {
            "runs": per_run,
            "tenants_digest": digest,
            "slo_requests": requests,
            "slo_violations": violations,
            "admission_states": states,
        },
    }
    entry: Dict[str, Any] = {
        "shard_counts": {str(num_shards): point},
        "fleet": spec["fleet"],
        "accesses_per_simulated_s": per_run[-1][
            "accesses_per_simulated_s"],
        "slo_violation_rate": (round(violations / requests, 6)
                               if requests else 0.0),
        "min_accesses_per_s": spec["min_accesses_per_s"],
        "max_slo_violation_rate": spec["max_slo_violation_rate"],
    }
    return entry


_RUNNERS = {
    None: _run_scenario,
    "cached": _run_cached_scenario,
    "scale": _run_scale_scenario,
}


def run_bench(smoke: bool = False, jobs: Optional[int] = None,
              scenarios: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run every scenario (or just ``scenarios``) and build the report."""
    mode = "smoke" if smoke else "full"
    if scenarios:
        unknown = sorted(set(scenarios) - set(SCENARIOS))
        if unknown:
            raise ValueError(f"unknown scenario(s): {', '.join(unknown)} "
                             f"(known: {', '.join(sorted(SCENARIOS))})")
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "scenarios": {},
    }
    for name, variants in SCENARIOS.items():
        if scenarios and name not in scenarios:
            continue
        spec = variants[mode]
        runner = _RUNNERS[spec.get("kind")]
        report["scenarios"][name] = runner(spec, jobs)
    return report


def check_scaling(report: Dict[str, Any],
                  min_scaling: float = 2.5) -> List[str]:
    """The shard-scaling gate: 4 shards must beat 1 by ``min_scaling``."""
    failures = []
    for name, entry in report.get("scenarios", {}).items():
        scaling = entry.get("scaling_4x")
        if scaling is not None and scaling < min_scaling:
            failures.append(
                f"{name}: 4-shard simulated throughput is only "
                f"{scaling:.2f}x the 1-shard run (need {min_scaling}x)")
    return failures


def check_gates(report: Dict[str, Any]) -> List[str]:
    """Per-scenario gates the runners embed in their entries.

    * ``cached`` scenarios: the cached run must beat the cache-disabled
      run by ``min_read_speedup`` in simulated read throughput.
    * ``scale`` scenarios: the final churn run must sustain
      ``min_accesses_per_s`` aggregate simulated throughput and keep
      the fleet SLO-violation rate under ``max_slo_violation_rate``.
    """
    failures = []
    for name, entry in report.get("scenarios", {}).items():
        needed = entry.get("min_read_speedup")
        if needed is not None:
            speedup = entry.get("read_speedup_cached", 0.0)
            if speedup < needed:
                failures.append(
                    f"{name}: cached read throughput is only "
                    f"{speedup:.2f}x the cache-disabled run "
                    f"(need {needed}x)")
        floor = entry.get("min_accesses_per_s")
        if floor is not None:
            tput = entry.get("accesses_per_simulated_s", 0.0)
            if tput < floor:
                failures.append(
                    f"{name}: aggregate simulated throughput "
                    f"{tput:,.0f}/s is under the {floor:,.0f}/s floor")
        ceiling = entry.get("max_slo_violation_rate")
        if ceiling is not None:
            rate = entry.get("slo_violation_rate", 0.0)
            if rate > ceiling:
                failures.append(
                    f"{name}: fleet SLO-violation rate {rate:.4f} "
                    f"exceeds the {ceiling} ceiling")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25,
                    only: Optional[Set[str]] = None) -> List[str]:
    """Regression check vs a committed report; returns failures.

    Wall throughput is calibration-normalized (slow runners do not read
    as regressions); simulated outputs must match exactly — the service
    is deterministic per seed, so *any* drift is a correctness bug.
    ``only`` restricts the check to those baseline scenarios (the
    ``--scenario`` CI jobs compare a partial run against the full
    committed baseline).
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same --smoke "
            f"setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0

    def compare_point(label: str, base_point: Dict[str, Any],
                      cur_point: Optional[Dict[str, Any]]) -> None:
        if cur_point is None:
            failures.append(f"{label} missing")
            return
        cur_norm = cur_point["served_per_wall_s"] / cur_calib
        base_norm = base_point["served_per_wall_s"] / base_calib
        ratio = cur_norm / base_norm if base_norm else 0.0
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{label}: normalized throughput fell "
                f"to {ratio:.0%} of baseline "
                f"({cur_point['served_per_wall_s']:,.0f}/s vs "
                f"{base_point['served_per_wall_s']:,.0f}/s)")
        if cur_point["fidelity"] != base_point["fidelity"]:
            failures.append(
                f"{label}: seeded service outputs "
                f"changed — determinism break")

    for name, base_entry in baseline.get("scenarios", {}).items():
        if only is not None and name not in only:
            continue
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        for count, base_point in base_entry.get("shard_counts",
                                                {}).items():
            compare_point(f"{name}@{count} shards", base_point,
                          cur_entry.get("shard_counts", {}).get(count))
        for variant, base_point in base_entry.get("variants",
                                                  {}).items():
            compare_point(f"{name}/{variant}", base_point,
                          cur_entry.get("variants", {}).get(variant))
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"service bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    for name, entry in report["scenarios"].items():
        points = [(f"{count:>2} shard(s)", point)
                  for count, point in entry.get("shard_counts",
                                                {}).items()]
        points += [(f"{variant:>9}", point)
                   for variant, point in entry.get("variants",
                                                   {}).items()]
        for label, point in points:
            fid = point["fidelity"]
            if "tenants" in fid:
                detail = ", ".join(
                    f"{tn} p99 r{t['read_p99_ns']:,}"
                    f"/w{t['write_p99_ns']:,}ns"
                    for tn, t in fid["tenants"].items())
                sim = fid["accesses_per_simulated_s"]
            else:
                detail = (f"{entry.get('fleet', '?')} tenants, "
                          f"slo violation rate "
                          f"{entry.get('slo_violation_rate', 0.0):.4f}")
                sim = fid["runs"][-1]["accesses_per_simulated_s"]
            lines.append(
                f"  {name:<15} {label} "
                f"{sim:>14,.0f} acc/sim-s "
                f"{point['served_per_wall_s']:>12,.0f} acc/wall-s  "
                f"[{detail}]")
        if "scaling_4x" in entry:
            lines.append(f"  {name:<15} scaling 4 vs 1 shard: "
                         f"{entry['scaling_4x']:.2f}x")
        if "read_speedup_cached" in entry:
            lines.append(
                f"  {name:<15} cached vs uncached reads: "
                f"{entry['read_speedup_cached']:.2f}x "
                f"(hit rate {entry['cache_hit_rate']:.1%}, "
                f"need {entry['min_read_speedup']}x)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_service",
        description="eNVy sharded-service benchmark "
                    "(throughput/p99 vs shard count and tenant skew)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="shard fan-out workers (default: ENVY_JOBS "
                             "or CPU count); never changes results")
    parser.add_argument("--output", default="BENCH_SERVICE.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized-throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--min-scaling", type=float, default=2.5,
                        dest="min_scaling",
                        help="required 4-shard/1-shard simulated-"
                             "throughput ratio (default: %(default)s)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable; "
                             "--compare then checks just these against "
                             "the committed baseline)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, jobs=args.jobs,
                       scenarios=args.scenarios)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_scaling(report, args.min_scaling)
    failures += check_gates(report)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression,
                                    only=(set(args.scenarios)
                                          if args.scenarios else None))
    if failures:
        print("\nSERVICE BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
