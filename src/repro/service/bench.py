"""Service benchmark: throughput and tails vs shard count and skew.

``benchmarks/bench_service.py`` and the CI ``service-smoke`` job land
here.  The harness runs the canonical multi-tenant scenarios against
the sharded service at increasing shard counts under **strong scaling**
— a fixed total Flash budget (``total_segments``) divided across the
shards — and reports two families of numbers:

* **Simulated throughput** (served accesses per *simulated* second) and
  per-tenant latency tails from the :mod:`repro.obs` histograms.  These
  are machine-independent, deterministic per seed, and carry the
  headline claim: the canonical zipf scenario must serve at least
  ``--min-scaling`` (default 2.5×) more simulated accesses/s at 4
  shards than at 1 — N independent banks really do behave as N servers,
  even with a zipf-skewed tenant, because the router stripes the hot
  head across shards.
* **Wall-clock throughput** (served accesses per host second), the perf
  trajectory number.  As in :mod:`repro.perf.bench` it is compared to a
  committed baseline only after normalizing by the calibration score,
  so CI runners of different speeds share one baseline; the seeded
  simulated outputs must match the baseline *exactly*.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..perf.bench import calibrate
from .frontend import EnvyService, ServiceConfig
from .tenant import TenantSpec

__all__ = ["SCENARIOS", "run_bench", "compare_reports", "main"]

SCHEMA = "envy-bench-service/1"

#: Canonical service scenarios in (full, smoke) variants.  Each runs at
#: every shard count in ``shard_counts`` with ``total_segments`` divided
#: evenly, so the Flash budget — not the shard count — is held fixed.
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    # The headline scenario: one saturating zipf tenant plus a
    # rate-limited background tenant; carries the >=2.5x @ 4 shards gate.
    "zipf_canonical": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[1, 2, 4],
            duration_s=0.001, seed=1234,
            tenants=[
                dict(name="hot", rate_tps=4e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="limited", rate_tps=4e6, workload="uniform",
                     rate_limit_tps=1e6),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[1, 2, 4],
            duration_s=0.0002, seed=1234,
            tenants=[
                dict(name="hot", rate_tps=4e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="limited", rate_tps=4e6, workload="uniform",
                     rate_limit_tps=1e6),
            ]),
    },
    # Tenant-skew sensitivity: the same offered load at mild and heavy
    # zipf skew, fixed 4 shards — striping should keep the served
    # throughput close while the tails move.
    "skew_spread": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[4],
            duration_s=0.001, seed=99,
            tenants=[
                dict(name="mild", rate_tps=1.5e7, skew=0.6,
                     write_fraction=0.3),
                dict(name="heavy", rate_tps=1.5e7, skew=1.3,
                     write_fraction=0.3),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[4],
            duration_s=0.0002, seed=99,
            tenants=[
                dict(name="mild", rate_tps=1.5e7, skew=0.6,
                     write_fraction=0.3),
                dict(name="heavy", rate_tps=1.5e7, skew=1.3,
                     write_fraction=0.3),
            ]),
    },
    # Transactional tenant mixed with a zipf tenant (rates are
    # transactions/s for tpca: one transaction is ~17 accesses).
    "tpca_mix": {
        "full": dict(
            total_segments=64, pages_per_segment=128, shard_counts=[2, 4],
            duration_s=0.001, seed=7,
            tenants=[
                dict(name="zipf", rate_tps=1e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="tpca", rate_tps=1e6, workload="tpca"),
            ]),
        "smoke": dict(
            total_segments=32, pages_per_segment=64, shard_counts=[2, 4],
            duration_s=0.0002, seed=7,
            tenants=[
                dict(name="zipf", rate_tps=1e7, skew=1.0,
                     write_fraction=0.3),
                dict(name="tpca", rate_tps=1e6, workload="tpca"),
            ]),
    },
}


def _service_for(spec: Dict[str, Any], num_shards: int) -> EnvyService:
    if spec["total_segments"] % num_shards:
        raise ValueError(
            f"total_segments={spec['total_segments']} does not divide "
            f"across {num_shards} shards")
    config = ServiceConfig(
        num_shards=num_shards,
        num_segments=spec["total_segments"] // num_shards,
        pages_per_segment=spec["pages_per_segment"],
        seed=spec["seed"],
        redundancy=spec.get("redundancy", "none"),
        placement=spec.get("placement", "striped"),
        retry_limit=spec.get("retry_limit", 0),
        retry_backoff_ns=spec.get("retry_backoff_ns", 4000))
    tenants = [TenantSpec.from_spec(kwargs) for kwargs in spec["tenants"]]
    return EnvyService(config, tenants)


def _run_scenario(spec: Dict[str, Any],
                  jobs: Optional[int]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"shard_counts": {}}
    sim_tput: Dict[int, float] = {}
    for num_shards in spec["shard_counts"]:
        service = _service_for(spec, num_shards)
        start = time.perf_counter()
        stats = service.run(spec["duration_s"], jobs=jobs)
        wall_s = time.perf_counter() - start
        sim_tput[num_shards] = stats.accesses_per_simulated_s
        entry["shard_counts"][str(num_shards)] = {
            "wall_s": round(wall_s, 4),
            "served": stats.accesses_served,
            "served_per_wall_s": round(stats.accesses_served / wall_s, 1),
            # Everything below is machine-independent (exact fidelity).
            "fidelity": {
                "requests_admitted": stats.requests_admitted,
                "requests_throttled": stats.requests_throttled,
                "requests_rejected_queue": stats.requests_rejected_queue,
                "requests_rejected_shed": stats.requests_rejected_shed,
                "accesses_served": stats.accesses_served,
                "simulated_ns": stats.simulated_ns,
                "accesses_per_simulated_s": round(
                    stats.accesses_per_simulated_s, 1),
                "tenants": {name: tstats.as_dict()
                            for name, tstats in stats.tenants.items()},
            },
        }
    if 1 in sim_tput and 4 in sim_tput and sim_tput[1]:
        entry["scaling_4x"] = round(sim_tput[4] / sim_tput[1], 3)
    return entry


def run_bench(smoke: bool = False,
              jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run every scenario at every shard count and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "scenarios": {},
    }
    for name, variants in SCENARIOS.items():
        report["scenarios"][name] = _run_scenario(variants[mode], jobs)
    return report


def check_scaling(report: Dict[str, Any],
                  min_scaling: float = 2.5) -> List[str]:
    """The shard-scaling gate: 4 shards must beat 1 by ``min_scaling``."""
    failures = []
    for name, entry in report.get("scenarios", {}).items():
        scaling = entry.get("scaling_4x")
        if scaling is not None and scaling < min_scaling:
            failures.append(
                f"{name}: 4-shard simulated throughput is only "
                f"{scaling:.2f}x the 1-shard run (need {min_scaling}x)")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25) -> List[str]:
    """Regression check vs a committed report; returns failures.

    Wall throughput is calibration-normalized (slow runners do not read
    as regressions); simulated outputs must match exactly — the service
    is deterministic per seed, so *any* drift is a correctness bug.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same --smoke "
            f"setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        for count, base_point in base_entry["shard_counts"].items():
            cur_point = cur_entry["shard_counts"].get(count)
            if cur_point is None:
                failures.append(f"{name}@{count} shards missing")
                continue
            cur_norm = cur_point["served_per_wall_s"] / cur_calib
            base_norm = base_point["served_per_wall_s"] / base_calib
            ratio = cur_norm / base_norm if base_norm else 0.0
            if ratio < 1.0 - max_regression:
                failures.append(
                    f"{name}@{count} shards: normalized throughput fell "
                    f"to {ratio:.0%} of baseline "
                    f"({cur_point['served_per_wall_s']:,.0f}/s vs "
                    f"{base_point['served_per_wall_s']:,.0f}/s)")
            if cur_point["fidelity"] != base_point["fidelity"]:
                failures.append(
                    f"{name}@{count} shards: seeded service outputs "
                    f"changed — determinism break")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"service bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    for name, entry in report["scenarios"].items():
        for count, point in entry["shard_counts"].items():
            fid = point["fidelity"]
            p99s = ", ".join(
                f"{tn} p99 r{t['read_p99_ns']:,}/w{t['write_p99_ns']:,}ns"
                for tn, t in fid["tenants"].items())
            lines.append(
                f"  {name:<15} {count:>2} shard(s) "
                f"{fid['accesses_per_simulated_s']:>14,.0f} acc/sim-s "
                f"{point['served_per_wall_s']:>12,.0f} acc/wall-s  "
                f"[{p99s}]")
        if "scaling_4x" in entry:
            lines.append(f"  {name:<15} scaling 4 vs 1 shard: "
                         f"{entry['scaling_4x']:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_service",
        description="eNVy sharded-service benchmark "
                    "(throughput/p99 vs shard count and tenant skew)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="shard fan-out workers (default: ENVY_JOBS "
                             "or CPU count); never changes results")
    parser.add_argument("--output", default="BENCH_SERVICE.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized-throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--min-scaling", type=float, default=2.5,
                        dest="min_scaling",
                        help="required 4-shard/1-shard simulated-"
                             "throughput ratio (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, jobs=args.jobs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_scaling(report, args.min_scaling)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression)
    if failures:
        print("\nSERVICE BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
