"""Attack benchmark: wear attacks, detection accuracy, mitigation SLOs.

``benchmarks/bench_attack.py`` and the CI ``attack-smoke`` job land
here.  For each attack family (targeted wear-out, cleaning-pressure
amplification, buffer squatting) the harness runs the three-phase
:func:`~repro.service.adversary.run_attack_scenario` — honest baseline,
attack, mitigated — and gates on the adversarial-isolation claims:

* **detection** — the attacker is flagged by name in the attack phase,
  and *no honest tenant* (zipf, uniform or TPC-A) is ever flagged in
  any phase: zero false positives;
* **p99 containment** — with mitigation on, every honest tenant's read
  and write p99 stay within ``--max-p99-factor`` (default 2×) of the
  no-attack baseline;
* **lifetime containment** — the mitigated run's projected array
  lifetime (Section 5.5 with the measured wear concentration folded
  in) stays at least ``--min-lifetime-factor`` (default 0.5×) of the
  no-attack baseline;
* **determinism** — every simulated number in the report is a pure
  function of the scenario seed; ``--compare`` against the committed
  baseline fails on *any* drift, and wall-clock throughput is
  calibration-normalized exactly as in :mod:`repro.service.bench`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..perf.bench import calibrate
from .adversary import attack_tenant, run_attack_scenario
from .frontend import ServiceConfig
from .tenant import TenantSpec

__all__ = ["SCENARIOS", "run_bench", "check_gates", "compare_reports",
           "main"]

SCHEMA = "envy-bench-attack/1"

#: One scenario per attack family, in (full, smoke) variants.  Honest
#: mixes cover all three declared-honest shapes (zipf, uniform, tpca)
#: so the zero-false-positive gate means something.  Unlike the
#: throughput bench, honest tenants here run *below* saturation —
#: wear attribution and tail latencies are only meaningful when the
#: victims' writes actually get served; the attacker supplies the
#: pressure.
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    "targeted_wear": {
        "full": dict(
            num_shards=4, num_segments=12, pages_per_segment=32,
            duration_s=0.02, seed=4242, attack="targeted-wear",
            attack_rate_tps=3e5,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.1,
                     write_fraction=0.4),
                dict(name="uni", rate_tps=1e5, workload="uniform",
                     write_fraction=0.4),
            ]),
        "smoke": dict(
            num_shards=2, num_segments=12, pages_per_segment=16,
            duration_s=0.02, seed=4242, attack="targeted-wear",
            attack_rate_tps=1.5e5,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.1,
                     write_fraction=0.4),
                dict(name="uni", rate_tps=1e5, workload="uniform",
                     write_fraction=0.4),
            ]),
    },
    # The sweep attacker turns every admitted write into a flush, so
    # its lifetime damage scales directly with the quarantined rate —
    # throttle it harder than the default.
    "clean_amp": {
        "full": dict(
            num_shards=4, num_segments=12, pages_per_segment=32,
            duration_s=0.02, seed=97, attack="clean-amp",
            attack_rate_tps=3e5, quarantine_tps=2e4,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.0,
                     write_fraction=0.4),
                dict(name="txn", rate_tps=5e3, workload="tpca"),
            ]),
        "smoke": dict(
            num_shards=2, num_segments=12, pages_per_segment=16,
            duration_s=0.02, seed=97, attack="clean-amp",
            attack_rate_tps=1.5e5, quarantine_tps=2e4,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.0,
                     write_fraction=0.4),
                dict(name="txn", rate_tps=5e3, workload="tpca"),
            ]),
    },
    # The squatter's damage is buffer occupancy, so its quarantine is
    # tighter than the wear attacks': residual admitted writes keep
    # FIFO slots pinned even at modest rates.
    "squat": {
        "full": dict(
            num_shards=4, num_segments=12, pages_per_segment=32,
            duration_s=0.02, seed=555, attack="squat",
            attack_rate_tps=3e5, quarantine_tps=2e4,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.1,
                     write_fraction=0.4),
                dict(name="uni", rate_tps=1e5, workload="uniform",
                     write_fraction=0.4),
            ]),
        "smoke": dict(
            num_shards=2, num_segments=12, pages_per_segment=16,
            duration_s=0.02, seed=555, attack="squat",
            attack_rate_tps=1.5e5, quarantine_tps=2e4,
            tenants=[
                dict(name="zipfy", rate_tps=1.5e5, skew=1.1,
                     write_fraction=0.4),
                dict(name="uni", rate_tps=1e5, workload="uniform",
                     write_fraction=0.4),
            ]),
    },
}


def _run_scenario(spec: Dict[str, Any],
                  jobs: Optional[int]) -> Dict[str, Any]:
    config = ServiceConfig(
        num_shards=spec["num_shards"],
        num_segments=spec["num_segments"],
        pages_per_segment=spec["pages_per_segment"],
        quarantine_tps=spec.get("quarantine_tps", 50_000.0),
        seed=spec["seed"])
    honest = [TenantSpec.from_spec(kwargs) for kwargs in spec["tenants"]]
    attacker = attack_tenant(spec["attack"], config,
                             rate_tps=spec["attack_rate_tps"])
    start = time.perf_counter()
    scenario = run_attack_scenario(config, honest, attacker,
                                   spec["duration_s"], jobs=jobs)
    wall_s = time.perf_counter() - start
    served = sum(
        t["reads"] + t["writes"]
        for phase in ("baseline", "attack", "mitigated")
        for t in scenario[phase]["tenants"].values())
    return {
        "wall_s": round(wall_s, 4),
        "served_per_wall_s": round(served / wall_s, 1),
        # Everything under fidelity is simulated and seed-determined.
        "fidelity": scenario,
    }


def run_bench(smoke: bool = False,
              jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run every attack scenario and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "scenarios": {},
    }
    for name, variants in SCENARIOS.items():
        report["scenarios"][name] = _run_scenario(variants[mode], jobs)
    return report


#: Latency p99s come out of log-bucketed histograms, so a baseline in
#: the lowest microsecond reads a one-bucket shift as a 2x jump.  The
#: factor gate compares against ``max(baseline, floor)`` to measure
#: real degradation instead of bucket granularity.
_P99_FLOOR_NS = 2000


def check_gates(report: Dict[str, Any], max_p99_factor: float = 2.0,
                min_lifetime_factor: float = 0.5) -> List[str]:
    """The adversarial-isolation gates (see the module docstring)."""
    failures: List[str] = []
    for name, entry in report.get("scenarios", {}).items():
        scenario = entry["fidelity"]
        attacker = scenario["attacker"]
        honest = set(scenario["honest"])
        if attacker not in scenario["attack"]["flagged"]:
            failures.append(
                f"{name}: attacker {attacker!r} not flagged in the "
                f"attack phase (flagged: {scenario['attack']['flagged']})")
        for phase in ("baseline", "attack", "mitigated"):
            false_positives = honest & set(scenario[phase]["flagged"])
            if false_positives:
                failures.append(
                    f"{name}: honest tenants {sorted(false_positives)} "
                    f"flagged in the {phase} phase (zero false "
                    f"positives required)")
        baseline = scenario["baseline"]["tenants"]
        mitigated = scenario["mitigated"]["tenants"]
        for tenant in sorted(honest):
            for metric in ("read_p99_ns", "write_p99_ns"):
                base = baseline.get(tenant, {}).get(metric, 0)
                cur = mitigated.get(tenant, {}).get(metric, 0)
                allowed = max_p99_factor * max(base, _P99_FLOOR_NS)
                if base and cur > allowed:
                    failures.append(
                        f"{name}: {tenant} {metric} is {cur:,}ns "
                        f"mitigated vs {base:,}ns baseline "
                        f"(> {max_p99_factor}x)")
        base_life = scenario["baseline"]["lifetime_days"]
        mit_life = scenario["mitigated"]["lifetime_days"]
        if base_life and mit_life < min_lifetime_factor * base_life:
            failures.append(
                f"{name}: mitigated lifetime {mit_life} days fell "
                f"below {min_lifetime_factor}x the no-attack baseline "
                f"({base_life} days)")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25) -> List[str]:
    """Regression check vs a committed report; returns failures.

    Wall throughput is calibration-normalized; the fidelity block must
    match the baseline exactly — any drift is a determinism break.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same "
            f"--smoke setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0
    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        cur_norm = cur_entry["served_per_wall_s"] / cur_calib
        base_norm = base_entry["served_per_wall_s"] / base_calib
        ratio = cur_norm / base_norm if base_norm else 0.0
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: normalized throughput fell to {ratio:.0%} of "
                f"baseline ({cur_entry['served_per_wall_s']:,.0f}/s vs "
                f"{base_entry['served_per_wall_s']:,.0f}/s)")
        if cur_entry["fidelity"] != base_entry["fidelity"]:
            failures.append(
                f"{name}: seeded attack-scenario outputs changed — "
                f"determinism break")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"attack bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    for name, entry in report["scenarios"].items():
        scenario = entry["fidelity"]
        lines.append(
            f"  {name:<14} attacker={scenario['attacker']} "
            f"flagged={scenario['attack']['flagged']} "
            f"budget={scenario['wear_budget']} "
            f"scattered={scenario['hot_pages_scattered']}")
        for phase in ("baseline", "attack", "mitigated"):
            p = scenario[phase]
            p99s = ", ".join(
                f"{tn} w-p99 {t['write_p99_ns']:,}ns"
                for tn, t in p["tenants"].items()
                if tn in scenario["honest"])
            lines.append(
                f"    {phase:<10} lifetime {p['lifetime_days']:>10,.2f}d "
                f"conc {p['wear_concentration']:>7.3f}  [{p99s}]")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_attack",
        description="eNVy adversarial multi-tenancy benchmark "
                    "(wear attacks, detection, mitigation SLOs)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="shard fan-out workers (default: ENVY_JOBS "
                             "or CPU count); never changes results")
    parser.add_argument("--output", default="BENCH_ATTACK.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized-throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--max-p99-factor", type=float, default=2.0,
                        dest="max_p99_factor",
                        help="honest p99 allowance under mitigation vs "
                             "the no-attack baseline (default: "
                             "%(default)s)")
    parser.add_argument("--min-lifetime-factor", type=float, default=0.5,
                        dest="min_lifetime_factor",
                        help="required mitigated/baseline projected-"
                             "lifetime ratio (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, jobs=args.jobs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_gates(report, args.max_p99_factor,
                           args.min_lifetime_factor)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression)
    if failures:
        print("\nATTACK BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
