"""Redundancy benchmark: write-amp, degraded serving, rebuild, rebalance.

``benchmarks/bench_redundancy.py`` and the CI ``redundancy-chaos`` job
land here.  Four scenario families make the availability claims of the
redundancy layer (:mod:`repro.service.redundancy`) executable and
regression-gated, the same way :mod:`repro.service.bench` gates shard
scaling:

* **overhead** — the same tenant mix under ``none`` / ``mirror`` /
  ``parity``: the cost of protection as served throughput plus the
  replica/parity traffic charged to the overhead pseudo-tenant
  (mirroring doubles programs; parity turns every small write into the
  RAID read-modify-write).
* **degraded** — one :func:`~repro.service.chaos.run_redundancy_chaos`
  drill per policy: a whole bank dies mid-batch and **every** logical
  page must read its committed bytes from mirrors or parity
  reconstruction, the dead array must recover its committed prefix,
  and the online rebuild must converge to a peer-verified replacement
  while probe reads keep serving.  The gate is ``report.ok``.
* **rebuild** — a foreground tenant served while a replacement bank
  rebuilds at ``rebuild_rate_pps`` through the cost model; gates that
  the rebuild makes progress inside the run and that the foreground
  p99 stays within a bounded factor of the healthy run.
* **rebalance** — the pathological layout (ranged placement, one
  0.99-zipf tenant with a contiguous hot head pinned to one bank)
  repaired by :meth:`~repro.service.frontend.EnvyService.rebalance`;
  gates that the rebalanced throughput recovers at least
  ``--min-rebalance`` (default 0.8×) of the no-skew throughput.

As in the service bench, wall-clock numbers are calibration-normalized
against the committed baseline while every simulated number must match
it exactly — the scenarios are deterministic per seed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..perf.bench import calibrate
from .chaos import run_redundancy_chaos
from .frontend import EnvyService, ServiceConfig
from .tenant import TenantSpec

__all__ = ["SCENARIOS", "run_bench", "check_gates", "compare_reports",
           "main"]

SCHEMA = "envy-bench-redundancy/1"

#: Scenario specs in (full, smoke) variants.
SCENARIOS: Dict[str, Dict[str, Dict[str, Any]]] = {
    "overhead": {
        "full": dict(
            num_shards=4, num_segments=16, pages_per_segment=64,
            duration_s=0.0005, seed=21,
            policies=["none", "mirror", "parity"],
            tenants=[dict(name="mixed", rate_tps=2e7, skew=0.9,
                          write_fraction=0.5)]),
        "smoke": dict(
            num_shards=4, num_segments=8, pages_per_segment=32,
            duration_s=0.0002, seed=21,
            policies=["none", "mirror", "parity"],
            tenants=[dict(name="mixed", rate_tps=1e7, skew=0.9,
                          write_fraction=0.5)]),
    },
    "degraded": {
        "full": dict(
            num_shards=3, num_segments=4, pages_per_segment=16,
            duration_s=0.0004, seed=5, victim=1, kill_fraction=0.5,
            policies=["mirror", "parity"]),
        "smoke": dict(
            num_shards=3, num_segments=4, pages_per_segment=16,
            duration_s=0.0002, seed=5, victim=1, kill_fraction=0.5,
            policies=["mirror", "parity"]),
    },
    "rebuild": {
        "full": dict(
            num_shards=3, num_segments=8, pages_per_segment=32,
            duration_s=0.0005, seed=11, redundancy="mirror", victim=2,
            rebuild_rate_pps=2e5, max_p99_ratio=3.0,
            tenants=[dict(name="fg", rate_tps=1e7, skew=0.8,
                          write_fraction=0.3)]),
        "smoke": dict(
            num_shards=3, num_segments=4, pages_per_segment=32,
            duration_s=0.0002, seed=11, redundancy="mirror", victim=2,
            rebuild_rate_pps=2e5, max_p99_ratio=3.0,
            tenants=[dict(name="fg", rate_tps=1e7, skew=0.8,
                          write_fraction=0.3)]),
    },
    "rebalance": {
        "full": dict(
            num_shards=4, num_segments=8, pages_per_segment=64,
            duration_s=0.0005, seed=33, rate_tps=2e7,
            write_fraction=0.3, skew=0.99, max_moves=96,
            tolerance=1.05),
        "smoke": dict(
            num_shards=4, num_segments=4, pages_per_segment=32,
            duration_s=0.0002, seed=33, rate_tps=2e7,
            write_fraction=0.3, skew=0.99, max_moves=96,
            tolerance=1.05),
    },
}


def _config(spec: Dict[str, Any], **overrides: Any) -> ServiceConfig:
    return ServiceConfig(
        num_shards=spec["num_shards"],
        num_segments=spec["num_segments"],
        pages_per_segment=spec["pages_per_segment"],
        seed=spec["seed"], **overrides)


def _tenants(spec: Dict[str, Any]) -> List[TenantSpec]:
    return [TenantSpec.from_spec(kwargs) for kwargs in spec["tenants"]]


def _run_overhead(spec: Dict[str, Any],
                  jobs: Optional[int]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"policies": {}}
    start = time.perf_counter()
    served = 0
    for policy in spec["policies"]:
        service = EnvyService(_config(spec, redundancy=policy),
                              _tenants(spec))
        stats = service.run(spec["duration_s"], jobs=jobs)
        served += stats.accesses_served
        foreground_writes = sum(t.writes for t in stats.tenants.values())
        entry["policies"][policy] = {
            "fidelity": {
                "logical_pages": service.router.num_pages,
                "write_fanout": getattr(service.router, "policy",
                                        None).write_fanout
                if hasattr(service.router, "policy") else 1,
                "requests_admitted": stats.requests_admitted,
                "accesses_served": stats.accesses_served,
                "foreground_writes": foreground_writes,
                "replica_accesses": stats.replica_accesses,
                "simulated_ns": stats.simulated_ns,
                "accesses_per_simulated_s": round(
                    stats.accesses_per_simulated_s, 1),
                "tenants": {name: tstats.as_dict()
                            for name, tstats in stats.tenants.items()},
            },
        }
    wall_s = time.perf_counter() - start
    entry["wall_s"] = round(wall_s, 4)
    entry["served_per_wall_s"] = round(served / wall_s, 1)
    return entry


def _run_degraded(spec: Dict[str, Any]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"policies": {}}
    start = time.perf_counter()
    served = 0
    for policy in spec["policies"]:
        config = _config(spec, redundancy=policy)
        dry = run_redundancy_chaos(config, duration_s=spec["duration_s"],
                                   victim=spec["victim"], kill_at=None)
        kill_at = max(1, int(dry.ops_seen * spec["kill_fraction"]))
        report = run_redundancy_chaos(config,
                                      duration_s=spec["duration_s"],
                                      victim=spec["victim"],
                                      kill_at=kill_at)
        served += report.stamped_writes
        entry["policies"][policy] = {
            "fidelity": {
                "ops_seen_dry": dry.ops_seen,
                "kill_at": kill_at,
                "interrupted": report.interrupted,
                "stamped_writes": report.stamped_writes,
                "degraded_pages_checked": report.degraded_pages_checked,
                "degraded_mismatches": len(report.degraded_mismatches),
                "serving_mismatches": len(report.serving_mismatches),
                "recovery_mismatches": len(report.recovery_mismatches),
                "recovery": report.shards,
                "rebuilt_pages": report.rebuilt_pages,
                "rebuild_verified": report.rebuild_verified,
                "probe_mismatches": report.probe_mismatches,
                "final_mismatches": len(report.final_mismatches),
                "ok": report.ok,
            },
        }
    wall_s = time.perf_counter() - start
    entry["wall_s"] = round(wall_s, 4)
    entry["served_per_wall_s"] = round(served / wall_s, 1)
    return entry


def _p99(stats, name: str) -> int:
    tenant = stats.tenants[name]
    return max(tenant.read_latency.p99, tenant.write_latency.p99)


def _run_rebuild(spec: Dict[str, Any],
                 jobs: Optional[int]) -> Dict[str, Any]:
    start = time.perf_counter()
    config = _config(spec, redundancy=spec["redundancy"],
                     rebuild_rate_pps=spec["rebuild_rate_pps"])
    tenants = _tenants(spec)
    healthy = EnvyService(config, tenants)
    healthy_stats = healthy.run(spec["duration_s"], jobs=jobs)

    rebuilding = EnvyService(config, tenants)
    rebuilding.kill_bank(spec["victim"])
    scheduler = rebuilding.replace_bank(spec["victim"])
    stats = rebuilding.run(spec["duration_s"], jobs=jobs)
    status = rebuilding.rebuild_status()[spec["victim"]]
    wall_s = time.perf_counter() - start

    name = tenants[0].name
    healthy_p99 = _p99(healthy_stats, name)
    rebuild_p99 = _p99(stats, name)
    entry = {
        "wall_s": round(wall_s, 4),
        "served_per_wall_s": round(
            (healthy_stats.accesses_served + stats.accesses_served)
            / wall_s, 1),
        "max_p99_ratio": spec["max_p99_ratio"],
        "fidelity": {
            "healthy_p99_ns": healthy_p99,
            "rebuild_p99_ns": rebuild_p99,
            "p99_ratio": round(rebuild_p99 / max(1, healthy_p99), 3),
            "rebuild_accesses": stats.rebuild_accesses,
            "degraded_reads": stats.degraded_reads,
            "degraded_writes": stats.degraded_writes,
            "rebuild_pages_done": status["pages_done"],
            "rebuild_pages_total": status["pages_total"],
            "rebuild_progress": status["progress"],
            "scheduler_done": scheduler.done,
            "accesses_served": stats.accesses_served,
            "simulated_ns": stats.simulated_ns,
            "tenants": {tname: tstats.as_dict()
                        for tname, tstats in stats.tenants.items()},
        },
    }
    return entry


def _run_rebalance(spec: Dict[str, Any],
                   jobs: Optional[int]) -> Dict[str, Any]:
    start = time.perf_counter()
    base = dict(rate_tps=spec["rate_tps"],
                write_fraction=spec["write_fraction"])
    uniform = EnvyService(
        _config(spec, placement="ranged"),
        [TenantSpec("t", workload="uniform", **base)])
    uniform_stats = uniform.run(spec["duration_s"], jobs=jobs)

    # The pathological layout: ranged placement + a contiguous zipf hot
    # head (scatter off) pins the whole head onto bank 0.
    skewed = EnvyService(
        _config(spec, placement="ranged"),
        [TenantSpec("t", workload="zipf", skew=spec["skew"],
                    scatter=False, **base)])
    skew_stats = skewed.run(spec["duration_s"], jobs=jobs)
    plan = skewed.rebalance(spec["duration_s"],
                            max_moves=spec["max_moves"],
                            tolerance=spec["tolerance"])
    rebal_stats = skewed.run(spec["duration_s"], jobs=jobs)
    wall_s = time.perf_counter() - start

    tput_uniform = uniform_stats.accesses_per_simulated_s
    tput_skew = skew_stats.accesses_per_simulated_s
    tput_rebal = rebal_stats.accesses_per_simulated_s
    return {
        "wall_s": round(wall_s, 4),
        "served_per_wall_s": round(
            (uniform_stats.accesses_served + skew_stats.accesses_served
             + rebal_stats.accesses_served) / wall_s, 1),
        "fidelity": {
            "tput_uniform": round(tput_uniform, 1),
            "tput_skewed": round(tput_skew, 1),
            "tput_rebalanced": round(tput_rebal, 1),
            "skew_ratio": round(tput_skew / max(1.0, tput_uniform), 4),
            "recovered_ratio": round(
                tput_rebal / max(1.0, tput_uniform), 4),
            "swaps": plan["swaps"],
            "remapped_pages": plan["remapped_pages"],
            "imbalance_before": plan["imbalance_before"],
            "imbalance_after": plan["imbalance_after"],
            "bank_loads_before": plan["bank_loads_before"],
            "bank_loads_after": plan["bank_loads_after"],
        },
    }


def run_bench(smoke: bool = False,
              jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run every scenario and build the report."""
    mode = "smoke" if smoke else "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "timestamp": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_ops_per_s": round(calibrate(), 1),
        "scenarios": {
            "overhead": _run_overhead(SCENARIOS["overhead"][mode], jobs),
            "degraded": _run_degraded(SCENARIOS["degraded"][mode]),
            "rebuild": _run_rebuild(SCENARIOS["rebuild"][mode], jobs),
            "rebalance": _run_rebalance(SCENARIOS["rebalance"][mode],
                                        jobs),
        },
    }
    return report


def check_gates(report: Dict[str, Any],
                min_rebalance: float = 0.8) -> List[str]:
    """The availability gates; returns human-readable failures."""
    failures: List[str] = []
    scenarios = report.get("scenarios", {})

    for policy, point in scenarios.get("overhead", {}).get(
            "policies", {}).items():
        fid = point["fidelity"]
        if policy != "none" and fid["replica_accesses"] == 0:
            failures.append(
                f"overhead/{policy}: no replica traffic was charged — "
                f"redundancy writes are not flowing through the cost "
                f"model")

    for policy, point in scenarios.get("degraded", {}).get(
            "policies", {}).items():
        fid = point["fidelity"]
        if not fid["ok"]:
            failures.append(
                f"degraded/{policy}: whole-bank-loss drill failed "
                f"(degraded={fid['degraded_mismatches']}, "
                f"recovery={fid['recovery_mismatches']}, "
                f"final={fid['final_mismatches']}, "
                f"rebuild_verified={fid['rebuild_verified']})")

    rebuild = scenarios.get("rebuild")
    if rebuild:
        fid = rebuild["fidelity"]
        if fid["rebuild_pages_done"] == 0:
            failures.append(
                "rebuild: the in-run rebuild made no progress")
        if fid["p99_ratio"] > rebuild["max_p99_ratio"]:
            failures.append(
                f"rebuild: foreground p99 blew up {fid['p99_ratio']}x "
                f"under rebuild (limit {rebuild['max_p99_ratio']}x)")

    rebalance = scenarios.get("rebalance")
    if rebalance:
        fid = rebalance["fidelity"]
        if fid["recovered_ratio"] < min_rebalance:
            failures.append(
                f"rebalance: recovered only "
                f"{fid['recovered_ratio']:.0%} of the no-skew "
                f"throughput (need {min_rebalance:.0%})")
    return failures


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    max_regression: float = 0.25) -> List[str]:
    """Regression check vs a committed report; returns failures.

    Wall throughput is calibration-normalized; every ``fidelity`` block
    must match the baseline exactly (deterministic per seed).
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')} "
            f"baseline={baseline.get('mode')} (run with the same "
            f"--smoke setting as the committed baseline)")
        return failures
    cur_calib = current.get("calibration_ops_per_s") or 1.0
    base_calib = baseline.get("calibration_ops_per_s") or 1.0

    def points(entry: Dict[str, Any]):
        if "policies" in entry:
            for policy, point in entry["policies"].items():
                yield policy, point
        else:
            yield "", entry

    for name, base_entry in baseline.get("scenarios", {}).items():
        cur_entry = current.get("scenarios", {}).get(name)
        if cur_entry is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        cur_norm = cur_entry["served_per_wall_s"] / cur_calib
        base_norm = base_entry["served_per_wall_s"] / base_calib
        ratio = cur_norm / base_norm if base_norm else 0.0
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: normalized throughput fell to {ratio:.0%} of "
                f"baseline ({cur_entry['served_per_wall_s']:,.0f}/s vs "
                f"{base_entry['served_per_wall_s']:,.0f}/s)")
        base_points = dict(points(base_entry))
        cur_points = dict(points(cur_entry))
        for key, base_point in base_points.items():
            cur_point = cur_points.get(key)
            label = f"{name}/{key}" if key else name
            if cur_point is None:
                failures.append(f"{label} missing from current run")
                continue
            if cur_point["fidelity"] != base_point["fidelity"]:
                failures.append(
                    f"{label}: seeded outputs changed — determinism "
                    f"break")
    return failures


def _format_report(report: Dict[str, Any]) -> str:
    lines = [f"redundancy bench ({report['mode']}, python "
             f"{report['python']}, {report['cpu_count']} cpus, "
             f"calibration {report['calibration_ops_per_s']:,.0f} ops/s)"]
    scenarios = report["scenarios"]
    for policy, point in scenarios["overhead"]["policies"].items():
        fid = point["fidelity"]
        lines.append(
            f"  overhead   {policy:<8} "
            f"{fid['accesses_per_simulated_s']:>14,.0f} acc/sim-s  "
            f"{fid['replica_accesses']:>8,} replica accesses "
            f"(fanout {fid['write_fanout']})")
    for policy, point in scenarios["degraded"]["policies"].items():
        fid = point["fidelity"]
        lines.append(
            f"  degraded   {policy:<8} kill@{fid['kill_at']:<6} "
            f"{fid['degraded_pages_checked']} pages checked, "
            f"{fid['degraded_mismatches']} degraded mismatches, "
            f"rebuild {'ok' if fid['rebuild_verified'] else 'FAILED'}, "
            f"{'OK' if fid['ok'] else 'FAILED'}")
    fid = scenarios["rebuild"]["fidelity"]
    lines.append(
        f"  rebuild    mirror   p99 {fid['rebuild_p99_ns']:,}ns vs "
        f"{fid['healthy_p99_ns']:,}ns healthy ({fid['p99_ratio']}x), "
        f"{fid['rebuild_pages_done']}/{fid['rebuild_pages_total']} "
        f"pages rebuilt in-run")
    fid = scenarios["rebalance"]["fidelity"]
    lines.append(
        f"  rebalance  ranged   skew {fid['skew_ratio']:.0%} -> "
        f"rebalanced {fid['recovered_ratio']:.0%} of no-skew "
        f"throughput ({fid['swaps']} swaps, imbalance "
        f"{fid['imbalance_before']} -> {fid['imbalance_after']})")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_redundancy",
        description="eNVy redundancy benchmark (write-amp, degraded "
                    "serving, online rebuild, hot-page rebalancing)")
    parser.add_argument("--smoke", action="store_true",
                        help="small scenarios for CI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="shard fan-out workers (default: ENVY_JOBS "
                             "or CPU count); never changes results")
    parser.add_argument("--output", default="BENCH_REDUNDANCY.json",
                        help="write the JSON report here "
                             "(default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="fail on regression vs this committed report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated normalized-throughput drop "
                             "(default: %(default)s)")
    parser.add_argument("--min-rebalance", type=float, default=0.8,
                        dest="min_rebalance",
                        help="required rebalanced/no-skew throughput "
                             "ratio (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, jobs=args.jobs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(_format_report(report))
    print(f"report written to {args.output}")

    failures = check_gates(report, args.min_rebalance)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures += compare_reports(report, baseline,
                                    max_regression=args.max_regression)
    if failures:
        print("\nREDUNDANCY BENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.compare:
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
