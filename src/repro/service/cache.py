"""DRAM read-cache tier in front of the simulated Flash array.

eNVy's battery-backed SRAM buffer absorbs *writes*; every read still
pays the full memory-bus + Flash path (Section 5.1: 60 ns bus overhead
plus the Figure 1 Flash access).  The NVMM-survey framing (PAPERS.md)
puts a DRAM cache tier over the NVM in a hybrid hierarchy: hot pages
are served at DRAM speed (:data:`~repro.core.costmodel.DRAM_READ_NS`)
without crossing the eNVy bus at all.

:class:`PageCache` is that tier, as a deterministic data structure:

* **Pluggable policy** — ``"clock"`` (default; one reference bit per
  resident page, second-chance sweep with a persistent hand) or
  ``"lru"`` (exact recency order).  Both are pure functions of the
  access sequence, so cached runs stay bit-identical across reruns
  and ``--jobs``.
* **Per-owner occupancy caps** — an owner at its cap evicts its *own*
  oldest page instead of someone else's, so a ``squat``-style tenant
  cycling through a huge footprint cannot pin the shared cache
  (see repro.service.adversary).
* **Physical tagging** — entries are keyed by logical page but track
  the *Flash copy* of that page: a host write or a cleaner relocation
  invalidates the entry (the executor hooks
  ``SegmentStore.copy_listener`` for the latter).  This keeps the
  cache honest as a hardware model; semantic transparency is proved
  by the property tests in tests/test_cache_admission.py.
* **Optional payloads** — the shard executors only need presence (the
  timing model), while :class:`~repro.service.frontend.EnvyService`'s
  direct-access front door caches real page bytes.

Everything is counted (hits, misses, evictions, invalidations) for
``health_report()`` and the ``envy_cache_*`` Prometheus series.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional

from ..core.costmodel import DRAM_READ_NS

__all__ = ["PageCache", "CACHE_POLICIES", "DRAM_READ_NS"]

#: Supported replacement policies.
CACHE_POLICIES = ("clock", "lru")

# Entry layout: [owner, referenced_bit, payload].  A plain list keeps
# the hot lookup path allocation-free and fast to mutate.
_OWNER, _REF, _DATA = 0, 1, 2


class PageCache:
    """A deterministic CLOCK/LRU page cache with per-owner caps.

    ``capacity_pages`` bounds total residency; ``tenant_caps`` maps an
    owner id to the most pages that owner may hold at once (owners not
    in the map are uncapped).  ``capacity_pages == 0`` disables the
    cache: every lookup misses and admits are dropped.
    """

    __slots__ = ("capacity", "policy", "hits", "misses", "evictions",
                 "invalidations", "_entries", "_order", "_ring", "_hand",
                 "_owners", "_caps")

    def __init__(self, capacity_pages: int, policy: str = "clock",
                 tenant_caps: Optional[Mapping[int, int]] = None) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity cannot be negative")
        if policy not in CACHE_POLICIES:
            raise ValueError(f"unknown cache policy {policy!r}; "
                             f"choose from {CACHE_POLICIES}")
        self.capacity = capacity_pages
        self.policy = policy
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: page -> [owner, ref, data]
        self._entries: Dict[int, list] = {}
        #: LRU recency order (least recent first); unused under CLOCK.
        self._order: "OrderedDict[int, None]" = OrderedDict()
        #: CLOCK ring in admission order; invalidated pages leave
        #: tombstones that the sweep discards lazily.
        self._ring: List[int] = []
        self._hand = 0
        #: owner -> pages in admission/recency order (oldest first).
        self._owners: Dict[int, "OrderedDict[int, None]"] = {}
        self._caps: Dict[int, int] = dict(tenant_caps or {})

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def lookup(self, page: int) -> Optional[list]:
        """Probe for ``page``; returns its entry on a hit, else None.

        A hit sets the CLOCK reference bit (or refreshes LRU recency)
        and counts; a miss only counts.  The returned entry's payload
        is ``entry[2]`` (None for presence-only entries).
        """
        entry = self._entries.get(page)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.policy == "lru":
            self._order.move_to_end(page)
            self._owners[entry[_OWNER]].move_to_end(page)
        else:
            entry[_REF] = 1
        return entry

    def admit(self, page: int, owner: int = 0,
              data: Optional[bytes] = None) -> Optional[int]:
        """Insert ``page`` for ``owner``, evicting if needed.

        Returns the evicted page (None when nothing was displaced).
        An owner at its occupancy cap evicts its own oldest page; the
        shared policy only runs when the cache as a whole is full.
        Re-admitting a resident page just refreshes its payload.
        """
        if self.capacity == 0:
            return None
        entry = self._entries.get(page)
        if entry is not None:
            if data is not None:
                entry[_DATA] = data
            if self.policy == "lru":
                self._order.move_to_end(page)
                self._owners[entry[_OWNER]].move_to_end(page)
            else:
                entry[_REF] = 1
            return None
        evicted: Optional[int] = None
        owned = self._owners.get(owner)
        cap = self._caps.get(owner)
        if (cap is not None and owned is not None
                and len(owned) >= cap):
            if cap <= 0:
                return None
            evicted = next(iter(owned))
            self._drop(evicted)
            self.evictions += 1
        elif cap is not None and cap <= 0:
            return None
        elif len(self._entries) >= self.capacity:
            evicted = (self._evict_clock() if self.policy == "clock"
                       else self._evict_lru())
        # _drop may have unregistered the owner's (now-empty) map —
        # re-resolve instead of trusting the reference from above.
        owned = self._owners.get(owner)
        if owned is None:
            owned = self._owners[owner] = OrderedDict()
        self._entries[page] = [owner, 0, data]
        owned[page] = None
        if self.policy == "lru":
            self._order[page] = None
        else:
            self._ring.append(page)
        return evicted

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, page: int) -> bool:
        """Drop ``page`` (host write or cleaner copy moved its bytes)."""
        if page not in self._entries:
            return False
        self._drop(page)
        self.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        """Flush the whole tier (bank loss, rebuild, rebalance)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._order.clear()
        self._ring.clear()
        self._hand = 0
        self._owners.clear()
        self.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drop(self, page: int) -> None:
        entry = self._entries.pop(page)
        owned = self._owners[entry[_OWNER]]
        del owned[page]
        if not owned:
            del self._owners[entry[_OWNER]]
        if self.policy == "lru":
            del self._order[page]
        # CLOCK: the ring slot becomes a tombstone, reclaimed in-sweep.

    def _evict_lru(self) -> int:
        victim = next(iter(self._order))
        self._drop(victim)
        self.evictions += 1
        return victim

    def _evict_clock(self) -> int:
        ring = self._ring
        entries = self._entries
        while True:
            if self._hand >= len(ring):
                self._hand = 0
            page = ring[self._hand]
            entry = entries.get(page)
            if entry is None:
                # Tombstone left by invalidate()/owner-cap eviction.
                del ring[self._hand]
                continue
            if entry[_REF]:
                entry[_REF] = 0
                self._hand += 1
                continue
            del ring[self._hand]
            self._drop(page)
            self.evictions += 1
            return page

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def owner_occupancy(self, owner: int) -> int:
        owned = self._owners.get(owner)
        return len(owned) if owned is not None else 0

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for shard results / ``health_report()``."""
        return {
            "capacity_pages": self.capacity,
            "policy": self.policy,
            "occupancy": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)
