"""Service-level chaos: kill one bank mid-batch, recover every bank.

The core chaos harness (:mod:`repro.core.chaos`) proves the recovery
guarantee for a single controller.  The service raises the stakes: N
shards serve interleaved tenant batches, the power dies on *one* shard
in the middle of a coalesced write batch, and recovery must proceed
**per shard, independently** — each bank's Flash array alone rebuilds
that bank's committed state, with no cross-shard metadata to consult
(shards share nothing; that independence is the router's core
invariant).

The drill reuses the core harness's published pieces —
:class:`~repro.core.chaos.KillSwitch` to cut the power at a chosen
Flash operation, :func:`~repro.core.chaos.attach_commit_oracle` to log
every committed flush, :func:`~repro.core.recovery.recover_from_flash`
to rebuild each bank, and :func:`~repro.core.chaos.
recovered_page_bytes` to compare — and drives them through the real
service path: the multi-tenant :class:`~repro.service.loadgen.
LoadGenerator` schedule, partitioned by shard, executed by
:class:`~repro.service.executor.ShardExecutor` with stamped payloads so
every committed write is distinguishable.

:func:`service_chaos_sweep` is the property test: a dry run counts the
victim shard's Flash operations, then the same seeded service run is
killed at every ``stride``-th one.  Every report must satisfy
``report.ok`` — all shards (killed and survivors alike) recover exactly
their committed pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.chaos import (KillSwitch, attach_commit_oracle,
                          recovered_page_bytes)
from ..core.controller import EnvyController
from ..core.recovery import SimulatedPowerFailure, recover_from_flash
from .executor import ShardExecutor, prewarm_shard
from .frontend import ServiceConfig
from .loadgen import LoadGenerator
from .tenant import TenantSpec

__all__ = ["ServiceChaosReport", "run_service_chaos",
           "service_chaos_sweep"]


@dataclass
class ServiceChaosReport:
    """Outcome of one service chaos drill (kill + N recoveries)."""

    kill_shard: int
    kill_at: Optional[int]
    tear: bool
    #: Flash operations the victim shard issued (the kill-point space
    #: when the run was a dry run).
    ops_seen: int = 0
    #: Whether the kill fired (False = the victim outran it).
    interrupted: bool = False
    #: Per-shard recovery summaries, in shard order: ``shard``,
    #: ``mode`` (checkpoint / full-scan), ``committed_pages``,
    #: ``mismatches``.
    shards: List[Dict] = field(default_factory=list)
    #: Every (shard, logical_page) whose recovered bytes differ from
    #: that shard's commit oracle.
    mismatches: List[Tuple[int, int]] = field(default_factory=list)
    verified: bool = False

    @property
    def ok(self) -> bool:
        return self.verified and not self.mismatches


def _chaos_config(config: Optional[ServiceConfig]) -> ServiceConfig:
    """The drill variant of a service config: data-bearing shards,
    stampable payloads, no prewarm (committed state starts empty)."""
    base = config or ServiceConfig(num_shards=2, num_segments=4,
                                   pages_per_segment=16)
    return replace(base, store_data=True, prewarm_turnovers=0.0)


def run_service_chaos(config: Optional[ServiceConfig] = None,
                      tenants: Optional[Sequence[TenantSpec]] = None,
                      duration_s: float = 0.0005,
                      kill_shard: int = 0,
                      kill_at: Optional[int] = None,
                      tear: bool = False,
                      recover: bool = True) -> ServiceChaosReport:
    """One drill: service run, kill one shard, recover all shards.

    The schedule is the deterministic service schedule for
    ``(config.seed, tenants, duration_s)``; ``kill_at`` is 1-based over
    the victim shard's Flash operations (``None`` runs to completion —
    with ``recover=False`` that is the dry run sizing a sweep).  Every
    shard — interrupted or not — is then rebuilt from its array alone
    and byte-compared against its own commit oracle.
    """
    config = _chaos_config(config)
    config.validate()
    if not 0 <= kill_shard < config.num_shards:
        raise IndexError(f"no shard {kill_shard}")
    # The default tenant's rate leaves idle gaps between arrivals: the
    # flusher and cleaner need background time to issue the Flash
    # programs and erases that make up the kill-point space.
    specs = list(tenants) if tenants else [
        TenantSpec("writer", rate_tps=2e6, write_fraction=0.9, skew=0.8)]
    router = config.make_router()
    generator = LoadGenerator(specs, router.num_pages, config.page_bytes,
                              seed=config.seed)
    schedule, _ = generator.generate(duration_s)
    num_shards = config.num_shards
    slices: List[list] = [[] for _ in range(num_shards)]
    for arrival, tenant, seq, is_write, page in schedule:
        slices[page % num_shards].append(
            (arrival, tenant, seq, is_write, page // num_shards))

    report = ServiceChaosReport(kill_shard=kill_shard, kill_at=kill_at,
                                tear=tear)
    shard_config = config.shard_config()
    tenant_names = [spec.name for spec in specs]
    oracles: List[Dict[int, Optional[bytes]]] = []
    controllers: List[EnvyController] = []
    for index in range(num_shards):
        ctrl = EnvyController(shard_config, store_data=True)
        ctrl.store.preserve_flushed_copies = True
        if config.prewarm_turnovers > 0:
            prewarm_shard(ctrl, config.prewarm_turnovers)
        oracles.append(attach_commit_oracle(ctrl))
        controllers.append(ctrl)

    for index in range(num_shards):
        ctrl = controllers[index]
        executor = ShardExecutor(
            ctrl, index, tenant_names,
            queue_capacity=config.queue_capacity,
            batch_pages=config.batch_pages,
            soft_watermark=config.soft_watermark,
            hard_watermark=config.hard_watermark,
            throttle_penalty_ns=config.throttle_penalty_ns,
            stamp_payloads=True)
        switch = KillSwitch(
            ctrl.array,
            kill_at=kill_at if index == kill_shard else None,
            tear=tear, bus=ctrl.events)
        try:
            executor.run(slices[index])
        except SimulatedPowerFailure:
            report.interrupted = True
        switch.detach()
        if index == kill_shard:
            report.ops_seen = switch.ops
    if not recover:
        return report

    zeros = bytes(shard_config.page_bytes)
    for index in range(num_shards):
        # Independence is the point: each bank is rebuilt from its own
        # array with nothing but the shared (static) geometry.
        recovered, scan = recover_from_flash(controllers[index].array,
                                             shard_config)
        recovered.check_consistency()
        bad = 0
        for page in range(shard_config.logical_pages):
            want = oracles[index].get(page)
            if want is None:
                want = zeros
            if recovered_page_bytes(recovered, page) != want:
                bad += 1
                report.mismatches.append((index, page))
        report.shards.append({
            "shard": index,
            "mode": scan.mode,
            "committed_pages": len(oracles[index]),
            "mismatches": bad,
        })
    report.verified = True
    return report


def service_chaos_sweep(config: Optional[ServiceConfig] = None,
                        tenants: Optional[Sequence[TenantSpec]] = None,
                        duration_s: float = 0.0005,
                        kill_shard: int = 0, stride: int = 1,
                        tear: bool = False) -> List[ServiceChaosReport]:
    """Kill the same seeded service run at every ``stride``-th Flash
    operation of ``kill_shard``; every report should satisfy ``ok``."""
    dry = run_service_chaos(config, tenants, duration_s,
                            kill_shard=kill_shard, kill_at=None,
                            recover=False)
    reports = []
    for kill_at in range(1, dry.ops_seen + 1, max(1, stride)):
        reports.append(run_service_chaos(
            config, tenants, duration_s, kill_shard=kill_shard,
            kill_at=kill_at, tear=tear))
    return reports
